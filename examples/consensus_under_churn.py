#!/usr/bin/env python
"""Consensus under churn, with the decide/retract timeline made visible.

Runs the zero-knowledge stabilizing consensus on a churning network and
uses the trace recorder to show the *decision lifecycle*: nodes decide
tentatively after quiet windows, occasionally retract when late
information arrives, and all settle on the same value within a few
multiples of the dynamic diameter.

Run:  python examples/consensus_under_churn.py
"""

from collections import Counter

from repro import RngRegistry, Simulator, TraceRecorder
from repro.core import SublinearConsensus
from repro.dynamics import (
    EdgeChurnAdversary,
    dynamic_diameter,
    random_tree_graph,
)
import numpy as np

N, SEED = 100, 19


def main() -> None:
    rng = np.random.default_rng(SEED)
    backbone = random_tree_graph(N, rng)
    schedule = EdgeChurnAdversary(N, backbone, p_on=0.3, dwell=3, seed=SEED)
    d = dynamic_diameter(schedule)

    nodes = [SublinearConsensus(i, proposal=f"plan-{i}") for i in range(N)]
    trace = TraceRecorder(record_broadcasts=False)
    sim = Simulator(schedule, nodes, rng=RngRegistry(SEED), trace=trace)
    result = sim.run(max_rounds=10_000, until="quiescent",
                     quiescence_window=64)

    print(f"N={N}, churn backbone d={d}")
    print(f"consensus value: {result.unanimous_output()!r} "
          f"(the minimum-id node's proposal — validity holds)")

    events = Counter(e.kind for e in trace.events)
    print(f"decision lifecycle: {events['decide']} decides, "
          f"{events['retract']} retracts across {N} nodes")

    timeline = trace.decision_timeline()
    first_round = timeline[0][0]
    last_round = timeline[-1][0]
    print(f"final decisions span rounds {first_round}..{last_round} "
          f"(theory bound (1+growth)*d + O(1) = {3 * d + 2})")

    per_round = Counter(r for r, _, _ in timeline)
    print("\nfinal decisions per round:")
    for r in sorted(per_round):
        print(f"  round {r:>3}: {'#' * min(per_round[r], 60)} "
              f"({per_round[r]} nodes)")


if __name__ == "__main__":
    main()
