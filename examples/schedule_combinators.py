#!/usr/bin/env python
"""Schedule combinators: composing certified dynamics.

Shows how the combinators in ``repro.dynamics.combinators`` build new
adversaries whose T-interval promise follows from their parts — and
machine-checks each claim with the verifier:

* ``dilate`` turns a maximally churning 1-interval adversary into an
  s-interval one (the tool behind custom T-sweeps);
* ``union_schedules`` overlays dynamics (promises strengthen);
* ``concatenate`` splices regimes (a calm prefix, then heavy churn);
* ``relabel`` makes the isomorphism-invariance of the algorithms
  directly observable.

Run:  python examples/schedule_combinators.py
"""

import numpy as np

from repro import RngRegistry, Simulator
from repro.analysis import render_table
from repro.core import ExactCount
from repro.dynamics import (
    FreshSpanningAdversary,
    StaticAdversary,
    concatenate,
    dilate,
    dynamic_diameter,
    line_graph,
    relabel,
    union_schedules,
    verify_t_interval_connectivity,
)

N, SEED = 64, 9


def count_rounds(schedule):
    nodes = [ExactCount(i) for i in range(N)]
    result = Simulator(schedule, nodes, rng=RngRegistry(SEED)).run(
        max_rounds=20_000, until="quiescent", quiescence_window=64)
    assert result.unanimous_output() == N
    return result.metrics.last_decision_round


def main() -> None:
    fresh = FreshSpanningAdversary(N, seed=SEED)        # T = 1
    line = StaticAdversary(N, line_graph(N))            # T = all

    rows = []
    for name, schedule, T in [
        ("fresh (T=1)", fresh, 1),
        ("dilate(fresh, 4) (T=4)", dilate(fresh, 4), 4),
        ("union(line, fresh)", union_schedules(line, fresh), 1),
        ("concat(line 20r, fresh) (T=2 seam)",
         concatenate(line, 20, fresh, T=2), 1),
        ("relabel(line)", relabel(line, np.random.default_rng(0)
                                  .permutation(N)), 1),
    ]:
        ok, _ = verify_t_interval_connectivity(schedule, T, horizon=80)
        rows.append({
            "schedule": name,
            "promise_verified": ok,
            "dynamic_diameter": dynamic_diameter(schedule),
            "exact_count_rounds": count_rounds(schedule),
        })
    print(render_table(rows, title=f"composed schedules over N={N} nodes"))
    print("\nNote: union with the fresh adversary collapses the line's "
          "diameter (and the algorithm's rounds with it); dilation "
          "preserves the low diameter while granting a T=4 promise.")


if __name__ == "__main__":
    main()
