#!/usr/bin/env python
"""Adversary gallery: how topology dynamics shape information flow.

Floods a single token from node 0 under every adversary in the zoo,
reporting the measured flooding time next to the exact dynamic diameter,
and certifying each schedule's T-interval promise with the verifier.
The adaptive PathHider demonstrates the ``Ω(N)`` worst case: even though
the topology is "just" a path that changes every round, it throttles the
flood to exactly one new node per round.

Run:  python examples/adversary_gallery.py
"""

import numpy as np

from repro import RngRegistry, Simulator
from repro.analysis import render_table
from repro.baselines import FloodToken
from repro.dynamics import (
    AlternatingMatchingsAdversary,
    EdgeChurnAdversary,
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    PathHiderAdversary,
    RepairedMobilityAdversary,
    StaticAdversary,
    build_topology,
    dynamic_diameter,
    line_graph,
    random_tree_graph,
    verify_t_interval_connectivity,
)

N, SEED = 80, 3


def main() -> None:
    rng = np.random.default_rng(SEED)
    gallery = {
        "static line (T=all)": (StaticAdversary(N, line_graph(N)), None),
        "static expander (T=all)": (
            StaticAdversary(N, build_topology("expander", N, rng)), None),
        "fresh random path (T=1)": (FreshSpanningAdversary(N, seed=SEED), 1),
        "overlap handoff (T=4)": (
            OverlapHandoffAdversary(N, 4, seed=SEED), 4),
        "alternating ring (T=2)": (AlternatingMatchingsAdversary(N), 2),
        "edge churn (T=all)": (
            EdgeChurnAdversary(N, random_tree_graph(N, rng), seed=SEED),
            None),
        "repaired mobility (T=2)": (
            RepairedMobilityAdversary(N, T=2, seed=SEED), 2),
        "adaptive path hider (T=1)": (PathHiderAdversary(N), 1),
    }

    rows = []
    for name, (schedule, T) in gallery.items():
        nodes = [FloodToken(i, informed=(i == 0)) for i in range(N)]
        sim = Simulator(schedule, nodes, rng=RngRegistry(SEED))
        result = sim.run(max_rounds=4 * N, until="decided")
        flood_rounds = result.metrics.last_decision_round

        if isinstance(schedule, PathHiderAdversary):
            # Adaptive: certify the schedule it actually produced.
            realized = schedule.to_explicit()
            ok, _ = verify_t_interval_connectivity(
                realized, 1, horizon=result.rounds)
            d = None  # d is a property of the realised run, = flood time
        else:
            ok, _ = verify_t_interval_connectivity(
                schedule, T or 1, horizon=3 * N)
            d = dynamic_diameter(schedule)

        rows.append({
            "adversary": name,
            "promise_T": T if T is not None else "all",
            "promise_ok": ok,
            "dynamic_diameter_d": d,
            "flood_rounds_from_node0": flood_rounds,
        })

    print(render_table(rows, title=f"Flooding one token across {N} nodes"))
    print("\nNote how the adaptive path hider forces N-1 rounds while the "
          "equally 'dynamic' fresh-random adversary floods in O(log N): "
          "the dynamic diameter d, not N, is what governs information "
          "flow — the quantity the paper's bounds are parameterised by.")


if __name__ == "__main__":
    main()
