#!/usr/bin/env python
"""Bandwidth budgets: counting when messages are a few words wide.

The full exponential sketch needs ``Θ(ε⁻²)`` words per message; real
radios might fit only a handful.  This example runs the pipelined
variants (time-division multiplexing vs greedy recency scheduling) across
word budgets on a static line — the hardest pipelining topology — and
prints the rounds/bandwidth trade-off, alongside the analytic TDM bound
``d·⌈k/w⌉``.

Run:  python examples/bandwidth_budget.py
"""

from repro import RngRegistry, Simulator
from repro.analysis import render_table, tdm_rounds_bound
from repro.core import PipelinedApproxCount
from repro.dynamics import StaticAdversary, dynamic_diameter, line_graph

N, WIDTH, SEED = 64, 40, 11


def main() -> None:
    schedule = StaticAdversary(N, line_graph(N))
    d = dynamic_diameter(schedule)
    print(f"static line, N={N}, d={d}, sketch width k={WIDTH}\n")

    rows = []
    for words in [1, 2, 4, 8, 20, 40]:
        for strategy in ["tdm", "greedy"]:
            nodes = [
                PipelinedApproxCount(i, words_per_message=words,
                                     width=WIDTH, strategy=strategy)
                for i in range(N)
            ]
            sim = Simulator(schedule, nodes, rng=RngRegistry(SEED))
            result = sim.run(max_rounds=100_000, until="quiescent",
                             quiescence_window=4 * nodes[0].cycle)
            est = result.unanimous_output()
            rows.append({
                "words/msg": words,
                "strategy": strategy,
                "decision_rounds": result.metrics.last_decision_round,
                "tdm_bound": tdm_rounds_bound(d, WIDTH, words),
                "estimate": round(est, 1),
                "rel_err_%": round(abs(est / N - 1) * 100, 1),
            })
    print(render_table(rows, title="rounds vs per-message word budget"))
    print("\nGreedy pipelining rides improvements down the line like a "
          "wavefront, approaching d + k/w instead of TDM's d * k/w.")


if __name__ == "__main__":
    main()
