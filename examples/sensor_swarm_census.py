#!/usr/bin/env python
"""Domain scenario: census + health max over a mobile sensor swarm.

The motivating setting for T-interval dynamic networks: radio-equipped
sensors drift through an area, their unit-disk connectivity changing
continuously; a maintenance backbone guarantees T-interval connectivity.
The operators want every sensor to learn (a) approximately how many
sensors are still alive (census, without any pre-shared knowledge of the
fleet size) and (b) the maximum battery level in the swarm (so the best-
provisioned node can be elected for uplink duty) — both in time
proportional to the *information diameter* of the swarm, not its size.

Run:  python examples/sensor_swarm_census.py
"""

import numpy as np

from repro import RngRegistry, Simulator
from repro.core import ApproxCount, SublinearMax
from repro.dynamics import (
    RepairedMobilityAdversary,
    dynamic_diameter,
    verify_t_interval_connectivity,
)

N, T, SEED = 150, 3, 7


def main() -> None:
    swarm = RepairedMobilityAdversary(N, T=T, radius=0.22, seed=SEED)
    ok, _ = verify_t_interval_connectivity(swarm, T, horizon=120)
    d = dynamic_diameter(swarm)
    print(f"swarm of {N} sensors, T={T}: promise verified={ok}, d={d}")

    pos = swarm.positions(1)
    print(f"initial bounding box: x in [{pos[:,0].min():.2f}, "
          f"{pos[:,0].max():.2f}], y in [{pos[:,1].min():.2f}, "
          f"{pos[:,1].max():.2f}]")

    # --- census: approximate count, eps=25% with 95% confidence -----------
    nodes = [ApproxCount(i, eps=0.25, delta=0.05) for i in range(N)]
    result = Simulator(swarm, nodes, rng=RngRegistry(SEED)).run(
        max_rounds=20_000, until="quiescent", quiescence_window=64)
    est = result.unanimous_output()
    print(f"census: every sensor estimates fleet size ~= {est:.1f} "
          f"(true {N}, error {abs(est/N-1)*100:.1f}%), "
          f"decided by round {result.metrics.last_decision_round}; "
          f"messages were {nodes[0].sketch.width} floats "
          f"({nodes[0].sketch.message_bits()} bits) — independent of N")

    # --- uplink election: max battery --------------------------------------
    rng = np.random.default_rng(SEED)
    battery = rng.integers(10, 101, size=N)  # percent
    nodes = [SublinearMax(i, (int(battery[i]), i)) for i in range(N)]
    result = Simulator(swarm, nodes, rng=RngRegistry(SEED + 1)).run(
        max_rounds=20_000, until="quiescent", quiescence_window=64)
    level, owner = result.unanimous_output()
    print(f"uplink election: sensor {owner} wins with battery {level}% "
          f"(true max {battery.max()}%), decided by round "
          f"{result.metrics.last_decision_round} (~3d = {3*d})")


if __name__ == "__main__":
    main()
