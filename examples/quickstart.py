#!/usr/bin/env python
"""Quickstart: Count and Max in a T-interval dynamic network.

Builds a 128-node network whose topology is rewired by an adversary every
T=2 rounds (with the promise-preserving overlap handoff), runs the
paper's (reconstructed) zero-knowledge algorithms, and compares their
decision rounds against the classic known-N baselines and the network's
true dynamic diameter.

Run:  python examples/quickstart.py
"""

from repro import RngRegistry, Simulator
from repro.baselines import FloodMax, KCommitteeCount
from repro.core import ExactCount, SublinearMax
from repro.dynamics import (
    OverlapHandoffAdversary,
    dynamic_diameter,
    verify_t_interval_connectivity,
)

N, T, SEED = 128, 2, 42


def main() -> None:
    schedule = OverlapHandoffAdversary(N, T, noise_edges=N // 8, seed=SEED)

    # The adversary promises T-interval connectivity; check it.
    ok, _ = verify_t_interval_connectivity(schedule, T, horizon=200)
    d = dynamic_diameter(schedule)
    print(f"N={N}, T={T}; promise verified={ok}; dynamic diameter d={d}")

    # --- Max, zero knowledge (stabilizing): finishes in O(d) rounds -------
    values = {i: (i * 37) % 1009 for i in range(N)}
    nodes = [SublinearMax(i, values[i]) for i in range(N)]
    result = Simulator(schedule, nodes, rng=RngRegistry(SEED)).run(
        max_rounds=10_000, until="quiescent", quiescence_window=64)
    print(f"SublinearMax: output={result.unanimous_output()} "
          f"(true {max(values.values())}), last decision at round "
          f"{result.metrics.last_decision_round} (~{d} = d)")

    # --- Max, known-N baseline: Theta(N) rounds regardless of d -----------
    nodes = [FloodMax(i, values[i], rounds_bound=N - 1) for i in range(N)]
    result = Simulator(schedule, nodes).run(max_rounds=N)
    print(f"FloodMax(known N): output={result.unanimous_output()}, "
          f"rounds={result.rounds} (= N-1)")

    # --- Exact Count, zero knowledge: O(d) rounds --------------------------
    nodes = [ExactCount(i) for i in range(N)]
    result = Simulator(schedule, nodes, rng=RngRegistry(SEED)).run(
        max_rounds=10_000, until="quiescent", quiescence_window=64)
    print(f"ExactCount: output={result.unanimous_output()} (true {N}), "
          f"last decision at round {result.metrics.last_decision_round}")

    # --- Exact Count, KLO baseline: Theta(N^2) rounds ----------------------
    # (run a smaller instance so the quickstart stays quick)
    n_small = 24
    small = OverlapHandoffAdversary(n_small, T, seed=SEED)
    nodes = [KCommitteeCount(i) for i in range(n_small)]
    result = Simulator(small, nodes).run(max_rounds=50_000)
    print(f"KCommitteeCount (N={n_small}): output="
          f"{result.unanimous_output()}, rounds={result.rounds} (Theta(N^2))")


if __name__ == "__main__":
    main()
