"""Bench: regenerate T2 adversary-robustness table (experiment t2 of DESIGN.md §3).

Runs the harness experiment once under pytest-benchmark timing and
persists the table/figure artefacts to `results/t2/`.
"""

from repro.harness.experiments import run_t2


def test_t2_regenerate(benchmark, quick, persist):
    result = benchmark.pedantic(run_t2, kwargs={"quick": quick},
                                rounds=1, iterations=1)
    persist(result)
    assert result.rows, "experiment produced no rows"
