"""Bench: regenerate F2 rounds-vs-T figure (experiment f2 of DESIGN.md §3).

Runs the harness experiment once under pytest-benchmark timing and
persists the table/figure artefacts to `results/f2/`.
"""

from repro.harness.experiments import run_f2


def test_f2_regenerate(benchmark, quick, persist):
    result = benchmark.pedantic(run_f2, kwargs={"quick": quick},
                                rounds=1, iterations=1)
    persist(result)
    assert result.rows, "experiment produced no rows"
