"""Bench: regenerate F5 (crossover points) from the T1 measurements.

Asserts the reproduction's "who wins where": the calibrated core-Count
model crosses below both baselines at small N.
"""

from repro.harness.experiments import run_f5


def test_f5_regenerate(benchmark, quick, persist, exec_opts):
    result = benchmark.pedantic(
        run_f5, kwargs={"quick": quick, "exec_opts": exec_opts},
        rounds=1, iterations=1)
    persist(result)
    by_baseline = {r["baseline"]: r for r in result.rows}
    klo_x = by_baseline["klo_count"]["crossover_N_predicted"]
    flood_x = by_baseline["flooding_knownN"]["crossover_N_predicted"]
    assert klo_x is not None and klo_x <= 64, \
        "ours must beat Theta(N^2) KLO by N<=64"
    assert flood_x is not None and flood_x <= 1024, \
        "ours must beat Theta(N) flooding within the simulated range"
