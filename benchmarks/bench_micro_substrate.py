"""Microbenchmarks of the substrate hot paths.

Not tied to a paper table; these track the performance of the pieces
every experiment sits on (engine round throughput, flood-closure
diameter computation, promise verification, sketch merging), so
regressions in the substrate show up independently of the experiment
numbers.
"""

import numpy as np

from repro import RngRegistry, Simulator
from repro.core import ApproxCount, ExactCount
from repro.core.sketches import ExponentialCountSketch
from repro.dynamics import (
    OverlapHandoffAdversary,
    StaticAdversary,
    dynamic_diameter,
    random_regular_expander,
    verify_t_interval_connectivity,
)


def test_engine_round_throughput(benchmark):
    """Rounds/second of the bare engine at N=256 (ExactCount payloads)."""
    n = 256
    sched = StaticAdversary(
        n, random_regular_expander(n, 4, np.random.default_rng(0)))
    nodes = [ExactCount(i) for i in range(n)]
    sim = Simulator(sched, nodes, rng=RngRegistry(0))

    benchmark(sim.step)


def test_flood_closure_diameter(benchmark):
    """Bit-packed all-pairs flood closure at N=512."""
    n = 512
    sched = StaticAdversary(
        n, random_regular_expander(n, 4, np.random.default_rng(1)))
    result = benchmark(lambda: dynamic_diameter(sched))
    assert result < 16


def test_promise_verification(benchmark):
    """Sliding-window T-interval verification, 200 rounds at N=128."""
    adv = OverlapHandoffAdversary(128, 4, noise_edges=16, seed=3)
    ok = benchmark(
        lambda: verify_t_interval_connectivity(adv, 4, horizon=200))
    assert ok[0]


def test_sketch_aggregation_round(benchmark):
    """One simulated round of min-vector aggregation at N=128, k=64."""
    n = 128
    sched = OverlapHandoffAdversary(n, 2, seed=5)
    nodes = [ApproxCount(i, width=64) for i in range(n)]
    sim = Simulator(sched, nodes, rng=RngRegistry(5))
    benchmark(sim.step)


def test_sketch_estimator(benchmark):
    """Estimator evaluation cost (vectorised Gamma inverse)."""
    sk = ExponentialCountSketch(256)
    rng = np.random.default_rng(2)
    minima = rng.exponential(1.0 / 500, size=256)
    est = benchmark(lambda: sk.estimate(minima))
    assert 100 < est < 2500
