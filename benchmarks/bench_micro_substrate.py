"""Microbenchmarks of the substrate hot paths.

Not tied to a paper table; these track the performance of the pieces
every experiment sits on (engine round throughput, flood-closure
diameter computation, promise verification, sketch merging), so
regressions in the substrate show up independently of the experiment
numbers.

The engine fast-vs-reference comparison (see ``docs/PERFORMANCE.md``)
writes ``results/BENCH_engine.json`` when run under pytest, and the
module doubles as the CI smoke gate::

    python benchmarks/bench_micro_substrate.py --smoke

which writes ``results/bench_smoke.json`` and exits non-zero when the
fast-path speedup regresses more than 25% against the committed
``results/bench_smoke_baseline.json`` (speedup ratios, not absolute
timings, so the gate is machine-portable).
"""

import argparse
import json
import os
import sys
from time import perf_counter

import numpy as np

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # source checkout without `pip install -e .`
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import RngRegistry, Simulator
from repro.core import ApproxCount, ExactCount
from repro.core.sketches import ExponentialCountSketch
from repro.dynamics import (
    OverlapHandoffAdversary,
    StaticAdversary,
    dynamic_diameter,
    random_regular_expander,
    verify_t_interval_connectivity,
)
from repro.simnet.node import Algorithm

RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "results"),
)

#: Rounds timed per (engine, N) cell; the smoke gate uses the smaller
#: budget so a CI run stays under ~30 seconds.
FULL_ROUNDS = {64: 3000, 256: 1000, 1024: 300}
SMOKE_ROUNDS = {64: 600, 256: 300, 1024: 120}


class _NullBroadcast(Algorithm):
    """Minimal node: constant broadcast, no decisions.

    Measures the engine's own per-round overhead — compose/deliver are
    near-free, so rounds/sec differences are all substrate.
    """

    name = "null_broadcast"

    def compose(self, ctx):
        return 1

    def deliver(self, ctx, inbox):
        self.mark_changed(False)


def _measure_rounds_per_sec(engine: str, n: int, rounds: int,
                            warmup: int = 5, reps: int = 3) -> float:
    """Best-of-*reps* rounds/sec of *engine* on an N=n T=4 handoff schedule."""
    best = 0.0
    for _ in range(reps):
        sched = OverlapHandoffAdversary(n, 4, noise_edges=0, seed=0)
        nodes = [_NullBroadcast(i) for i in range(n)]
        sim = Simulator(sched, nodes, rng=RngRegistry(0), engine=engine)
        for _ in range(warmup):
            sim.step()
        start = perf_counter()
        for _ in range(rounds):
            sim.step()
        best = max(best, rounds / (perf_counter() - start))
    return best


def engine_comparison(ns=(64, 256, 1024), rounds_by_n=None):
    """Rounds/sec of both engines per N, with the fast/reference speedup."""
    rounds_by_n = rounds_by_n or FULL_ROUNDS
    rows = []
    for n in ns:
        rounds = rounds_by_n[n]
        fast = _measure_rounds_per_sec("fast", n, rounds)
        reference = _measure_rounds_per_sec("reference", n, rounds)
        rows.append({
            "n": n,
            "rounds_timed": rounds,
            "fast_rounds_per_sec": round(fast, 1),
            "reference_rounds_per_sec": round(reference, 1),
            "speedup": round(fast / reference, 3),
        })
    return rows


def test_engine_round_throughput(benchmark):
    """Rounds/second of the bare engine at N=256 (ExactCount payloads)."""
    n = 256
    sched = StaticAdversary(
        n, random_regular_expander(n, 4, np.random.default_rng(0)))
    nodes = [ExactCount(i) for i in range(n)]
    sim = Simulator(sched, nodes, rng=RngRegistry(0))

    benchmark(sim.step)


def test_flood_closure_diameter(benchmark):
    """Bit-packed all-pairs flood closure at N=512."""
    n = 512
    sched = StaticAdversary(
        n, random_regular_expander(n, 4, np.random.default_rng(1)))
    result = benchmark(lambda: dynamic_diameter(sched))
    assert result < 16


def test_promise_verification(benchmark):
    """Sliding-window T-interval verification, 200 rounds at N=128."""
    adv = OverlapHandoffAdversary(128, 4, noise_edges=16, seed=3)
    ok = benchmark(
        lambda: verify_t_interval_connectivity(adv, 4, horizon=200))
    assert ok[0]


def test_sketch_aggregation_round(benchmark):
    """One simulated round of min-vector aggregation at N=128, k=64."""
    n = 128
    sched = OverlapHandoffAdversary(n, 2, seed=5)
    nodes = [ApproxCount(i, width=64) for i in range(n)]
    sim = Simulator(sched, nodes, rng=RngRegistry(5))
    benchmark(sim.step)


def test_sketch_estimator(benchmark):
    """Estimator evaluation cost (vectorised Gamma inverse)."""
    sk = ExponentialCountSketch(256)
    rng = np.random.default_rng(2)
    minima = rng.exponential(1.0 / 500, size=256)
    est = benchmark(lambda: sk.estimate(minima))
    assert 100 < est < 2500


def test_engine_fast_vs_reference(benchmark, results_dir, quick):
    """Fast vs reference rounds/sec across N; persists BENCH_engine.json.

    The fast path must clear 3x on the N=1024 T-interval schedule (the
    tentpole acceptance bar; see docs/PERFORMANCE.md for the mechanism).
    """
    ns = (64, 256) if quick else (64, 256, 1024)
    rounds_by_n = SMOKE_ROUNDS if quick else FULL_ROUNDS
    rows = benchmark.pedantic(
        lambda: engine_comparison(ns=ns, rounds_by_n=rounds_by_n), rounds=1)
    path = os.path.join(results_dir, "BENCH_engine.json")
    with open(path, "w") as fh:
        json.dump({"bench": "engine_fast_vs_reference", "rows": rows}, fh,
                  indent=2)
        fh.write("\n")
    print(f"\n[engine bench] -> {path}")
    for row in rows:
        print(f"  N={row['n']}: fast {row['fast_rounds_per_sec']:.0f} r/s, "
              f"reference {row['reference_rounds_per_sec']:.0f} r/s "
              f"({row['speedup']:.2f}x)")
    if not quick:
        n1024 = next(r for r in rows if r["n"] == 1024)
        assert n1024["speedup"] >= 3.0, (
            f"fast path regressed: {n1024['speedup']:.2f}x at N=1024 "
            f"(acceptance bar is 3x)")


# --------------------------------------------------------------------------
# CI smoke gate (no pytest-benchmark dependency): --smoke compares the
# fast/reference speedup ratios against the committed baseline.
# --------------------------------------------------------------------------

def run_smoke(baseline_path=None, out_path=None,
              max_regression: float = 0.25) -> int:
    """Measure smoke-sized speedups, persist them, gate against baseline.

    Returns a process exit code: 0 when every N's speedup is within
    *max_regression* of the committed baseline's (or no baseline exists
    yet), 1 otherwise.  Ratios are compared, not absolute rounds/sec, so
    the gate holds across machines of different speeds.
    """
    baseline_path = baseline_path or os.path.join(
        RESULTS_DIR, "bench_smoke_baseline.json")
    out_path = out_path or os.path.join(RESULTS_DIR, "bench_smoke.json")
    rows = engine_comparison(rounds_by_n=SMOKE_ROUNDS)
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as fh:
        json.dump({"bench": "engine_smoke", "rows": rows}, fh, indent=2)
        fh.write("\n")
    print(f"[bench-smoke] -> {out_path}")
    for row in rows:
        print(f"  N={row['n']}: fast {row['fast_rounds_per_sec']:.0f} r/s, "
              f"reference {row['reference_rounds_per_sec']:.0f} r/s "
              f"({row['speedup']:.2f}x)")
    if not os.path.exists(baseline_path):
        print(f"[bench-smoke] no baseline at {baseline_path}; skipping gate")
        return 0
    with open(baseline_path) as fh:
        baseline = {row["n"]: row for row in json.load(fh)["rows"]}
    failed = False
    for row in rows:
        base = baseline.get(row["n"])
        if base is None:
            continue
        floor = (1.0 - max_regression) * base["speedup"]
        verdict = "ok" if row["speedup"] >= floor else "REGRESSED"
        print(f"  N={row['n']}: speedup {row['speedup']:.2f}x vs baseline "
              f"{base['speedup']:.2f}x (floor {floor:.2f}x) -> {verdict}")
        if row["speedup"] < floor:
            failed = True
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Engine fast-vs-reference benchmark / CI smoke gate")
    parser.add_argument("--smoke", action="store_true",
                        help="smoke-sized run gated against the committed "
                             "baseline (results/bench_smoke_baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the smoke measurements as the new "
                             "committed baseline instead of gating")
    args = parser.parse_args(argv)
    if args.write_baseline:
        baseline_path = os.path.join(RESULTS_DIR, "bench_smoke_baseline.json")
        rows = engine_comparison(rounds_by_n=SMOKE_ROUNDS)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(baseline_path, "w") as fh:
            json.dump({"bench": "engine_smoke", "rows": rows}, fh, indent=2)
            fh.write("\n")
        print(f"[bench-smoke] baseline -> {baseline_path}")
        for row in rows:
            print(f"  N={row['n']}: {row['speedup']:.2f}x")
        return 0
    if args.smoke:
        return run_smoke()
    rows = engine_comparison()
    print(json.dumps(rows, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
