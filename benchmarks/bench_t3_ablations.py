"""Bench: regenerate T3 ablation table (experiment t3 of DESIGN.md §3).

Runs the harness experiment once under pytest-benchmark timing and
persists the table/figure artefacts to `results/t3/`.
"""

from repro.harness.experiments import run_t3


def test_t3_regenerate(benchmark, quick, persist):
    result = benchmark.pedantic(run_t3, kwargs={"quick": quick},
                                rounds=1, iterations=1)
    persist(result)
    assert result.rows, "experiment produced no rows"
