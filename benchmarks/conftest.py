"""Benchmark fixtures.

Every experiment bench runs the corresponding harness experiment exactly
once under pytest-benchmark timing (``pedantic(rounds=1)``) and persists
the rendered report + raw rows under ``results/`` so the artefacts exist
even when pytest captures stdout.  Set ``REPRO_BENCH_QUICK=1`` to run the
shrunken experiment sizes.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.io import save_experiment

RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(__file__)), "results"),
)

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def quick() -> bool:
    return QUICK


@pytest.fixture
def persist(results_dir):
    """Save an ExperimentResult and echo a short summary line."""

    def _persist(result: ExperimentResult) -> ExperimentResult:
        path = save_experiment(result, results_dir)
        print(f"\n[{result.exp_id}] {result.title} -> {path}")
        for text in result.tables.values():
            print(text)
        return result

    return _persist
