"""Benchmark fixtures.

Every experiment bench runs the corresponding harness experiment exactly
once under pytest-benchmark timing (``pedantic(rounds=1)``) and persists
the rendered report + raw rows under ``results/`` so the artefacts exist
even when pytest captures stdout.  Set ``REPRO_BENCH_QUICK=1`` to run the
shrunken experiment sizes.

The grid-shaped benches (t1, f1, f3, f5, f6, x1) also honour
``REPRO_BENCH_WORKERS=N`` (fan the measurement cells across N worker
processes) and ``REPRO_BENCH_CACHE_DIR=DIR`` (content-addressed result
cache, so a re-bench executes only missing cells).  Rows are
byte-identical to serial either way — only wall-clock changes.
"""

from __future__ import annotations

import os

import pytest

from repro.exec.executor import ExecOptions
from repro.harness.experiments import ExperimentResult
from repro.harness.io import save_experiment

RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(__file__)), "results"),
)

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def quick() -> bool:
    return QUICK


@pytest.fixture(scope="session")
def exec_opts():
    """ExecOptions from the environment, or None for plain serial runs."""
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or None
    if workers <= 1 and cache_dir is None:
        return None
    journal_dir = os.path.join(cache_dir, "journals") if cache_dir else None
    return ExecOptions(workers=workers, cache_dir=cache_dir,
                       journal_dir=journal_dir)


@pytest.fixture
def persist(results_dir):
    """Save an ExperimentResult and echo a short summary line."""

    def _persist(result: ExperimentResult) -> ExperimentResult:
        path = save_experiment(result, results_dir)
        print(f"\n[{result.exp_id}] {result.title} -> {path}")
        for text in result.tables.values():
            print(text)
        return result

    return _persist
