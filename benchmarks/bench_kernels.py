"""Batch-kernel tier throughput: kernel vs fast vs reference.

The batch-kernel dispatch tier (see :mod:`repro.simnet.batch` and
``docs/PERFORMANCE.md``) replaces the per-node Python fold with
whole-population NumPy segment-reduces.  This benchmark measures
rounds/sec of all three engine tiers on the T=4 overlap-handoff
schedule with :class:`~repro.core.max_compute.SublinearMax` nodes
(int payloads, segment-max delivery) at N ∈ {256, 1024, 4096} and
writes ``results/BENCH_kernels.json``.

Doubles as the second CI smoke gate::

    python benchmarks/bench_kernels.py --smoke

which gates three things against the committed
``results/bench_kernels_baseline.json``:

* per-N kernel/fast speedup ratios must stay within 25% of baseline
  (ratios, not absolute timings — machine-portable);
* the kernel tier must clear an **absolute 3x** over the per-node fast
  path at N=1024 (the tentpole acceptance bar);
* under per-edge Bernoulli loss (``loss_rate=0.2``) the kernel tier
  must still beat the fast path outright at N=1024 — the loss-capable
  batch kernels must not regress to a slower-than-fast curiosity.

``--write-baseline`` refreshes the committed baseline.
"""

import argparse
import json
import os
import sys
from time import perf_counter

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # source checkout without `pip install -e .`
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import RngRegistry, Simulator
from repro.core.max_compute import SublinearMax
from repro.dynamics import OverlapHandoffAdversary

RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "results"),
)

#: The three dispatch tiers, as (column label, engine argument).
TIERS = (("kernel", "fast"),
         ("fast", "fast-nobatch"),
         ("reference", "reference"))

#: Rounds timed per (tier, N) cell.  The reference loop at N=4096 is the
#: pacing item; the smoke budget keeps one full gate run under ~60 s.
FULL_ROUNDS = {256: 600, 1024: 200, 4096: 60}
SMOKE_ROUNDS = {256: 240, 1024: 80, 4096: 24}


def _measure_rounds_per_sec(engine: str, n: int, rounds: int,
                            reps: int = 2, loss_rate: float = 0.0) -> float:
    """Best-of-*reps* rounds/sec of *engine* through ``Simulator.run``.

    ``run()`` (not bare ``step()``) so the batch tier activates; the
    SublinearMax population stabilises but never halts, so
    ``until="halted"`` executes exactly *rounds* rounds per rep.
    """
    best = 0.0
    for _ in range(reps):
        sched = OverlapHandoffAdversary(n, 4, noise_edges=0, seed=0)
        nodes = [SublinearMax(i, value=(i * 9176 + 37) % 100003)
                 for i in range(n)]
        sim = Simulator(sched, nodes, rng=RngRegistry(0), engine=engine,
                        loss_rate=loss_rate)
        start = perf_counter()
        result = sim.run(max_rounds=rounds, until="halted",
                         allow_timeout=True)
        elapsed = perf_counter() - start
        assert result.rounds == rounds
        if engine == "fast" and sim._tier_rounds["batch"] != rounds:
            raise AssertionError(
                f"batch tier did not engage: {sim._tier_rounds}")
        best = max(best, rounds / elapsed)
    return best


def kernel_comparison(ns=(256, 1024, 4096), rounds_by_n=None):
    """Rounds/sec per tier per N, with kernel/fast and fast/reference."""
    rounds_by_n = rounds_by_n or FULL_ROUNDS
    rows = []
    for n in ns:
        rounds = rounds_by_n[n]
        rates = {label: _measure_rounds_per_sec(engine, n, rounds)
                 for label, engine in TIERS}
        rows.append({
            "n": n,
            "rounds_timed": rounds,
            "kernel_rounds_per_sec": round(rates["kernel"], 1),
            "fast_rounds_per_sec": round(rates["fast"], 1),
            "reference_rounds_per_sec": round(rates["reference"], 1),
            "kernel_speedup": round(rates["kernel"] / rates["fast"], 3),
            "fast_speedup": round(rates["fast"] / rates["reference"], 3),
        })
    return rows


#: Per-edge Bernoulli loss probability for the lossy gate rows.
LOSSY_RATE = 0.2

#: N at which the lossy kernel-vs-fast comparison is measured and gated.
LOSSY_N = 1024


def lossy_comparison(n=LOSSY_N, rounds=None):
    """Kernel-vs-fast rounds/sec at *n* with per-edge Bernoulli loss.

    The batch backend serves lossy runs through vectorised per-edge
    loss masks (``lossy_delivery_view``); this row proves the masked
    kernels still beat the per-node fast path rather than merely
    matching its results.
    """
    rounds = rounds or SMOKE_ROUNDS[n]
    rates = {label: _measure_rounds_per_sec(engine, n, rounds,
                                            loss_rate=LOSSY_RATE)
             for label, engine in TIERS if label != "reference"}
    return {
        "n": n,
        "loss_rate": LOSSY_RATE,
        "rounds_timed": rounds,
        "kernel_rounds_per_sec": round(rates["kernel"], 1),
        "fast_rounds_per_sec": round(rates["fast"], 1),
        "kernel_speedup": round(rates["kernel"] / rates["fast"], 3),
    }


def _dump(rows, path, mode, lossy=None):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    payload = {"bench": "batch_kernels", "mode": mode,
               "nodes": "sublinear_max", "schedule": "overlap_handoff_T4",
               "rows": rows}
    if lossy is not None:
        payload["lossy"] = lossy
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def _print_rows(rows, lossy=None):
    for row in rows:
        print(f"  N={row['n']}: kernel {row['kernel_rounds_per_sec']:.0f} "
              f"r/s, fast {row['fast_rounds_per_sec']:.0f} r/s, reference "
              f"{row['reference_rounds_per_sec']:.0f} r/s "
              f"(kernel/fast {row['kernel_speedup']:.2f}x, "
              f"fast/reference {row['fast_speedup']:.2f}x)")
    if lossy is not None:
        print(f"  N={lossy['n']} loss={lossy['loss_rate']}: kernel "
              f"{lossy['kernel_rounds_per_sec']:.0f} r/s, fast "
              f"{lossy['fast_rounds_per_sec']:.0f} r/s "
              f"(kernel/fast {lossy['kernel_speedup']:.2f}x)")


#: Acceptance bar: kernel tier over per-node fast path at this N.
ABSOLUTE_BAR_N = 1024
ABSOLUTE_BAR = 3.0

#: Lossy acceptance bar: the loss-masked kernels must beat (not merely
#: match) the per-node fast path under loss at N=1024.
LOSSY_BAR = 1.0


def run_smoke(baseline_path=None, out_path=None,
              max_regression: float = 0.25) -> int:
    """Smoke-sized measurement, persisted and gated against the baseline.

    Exit code 0 when (a) every N's kernel/fast ratio is within
    *max_regression* of the committed baseline's, (b) the absolute
    kernel/fast speedup at N=1024 clears the 3x acceptance bar, and
    (c) the lossy kernel/fast ratio at N=1024 stays above 1.0 — the
    loss-masked kernels must beat the per-node fast path outright.
    """
    baseline_path = baseline_path or os.path.join(
        RESULTS_DIR, "bench_kernels_baseline.json")
    out_path = out_path or os.path.join(RESULTS_DIR, "BENCH_kernels.json")
    rows = kernel_comparison(rounds_by_n=SMOKE_ROUNDS)
    lossy = lossy_comparison()
    _dump(rows, out_path, mode="smoke", lossy=lossy)
    print(f"[bench-kernels] -> {out_path}")
    _print_rows(rows, lossy=lossy)
    failed = False
    bar_row = next(r for r in rows if r["n"] == ABSOLUTE_BAR_N)
    if bar_row["kernel_speedup"] < ABSOLUTE_BAR:
        print(f"  N={ABSOLUTE_BAR_N}: kernel/fast "
              f"{bar_row['kernel_speedup']:.2f}x is below the absolute "
              f"{ABSOLUTE_BAR:.1f}x acceptance bar -> REGRESSED")
        failed = True
    if lossy["kernel_speedup"] <= LOSSY_BAR:
        print(f"  N={LOSSY_N} loss={LOSSY_RATE}: kernel/fast "
              f"{lossy['kernel_speedup']:.2f}x does not clear the "
              f"{LOSSY_BAR:.1f}x lossy bar -> REGRESSED")
        failed = True
    if os.path.exists(baseline_path):
        with open(baseline_path) as fh:
            baseline = {row["n"]: row for row in json.load(fh)["rows"]}
        for row in rows:
            base = baseline.get(row["n"])
            if base is None:
                continue
            floor = (1.0 - max_regression) * base["kernel_speedup"]
            ok = row["kernel_speedup"] >= floor
            print(f"  N={row['n']}: kernel/fast {row['kernel_speedup']:.2f}x "
                  f"vs baseline {base['kernel_speedup']:.2f}x "
                  f"(floor {floor:.2f}x) -> {'ok' if ok else 'REGRESSED'}")
            failed = failed or not ok
    else:
        print(f"[bench-kernels] no baseline at {baseline_path}; "
              f"ratio gate skipped (absolute bar still enforced)")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Batch-kernel tier benchmark / CI smoke gate")
    parser.add_argument("--smoke", action="store_true",
                        help="smoke-sized run gated against the committed "
                             "baseline (results/bench_kernels_baseline.json) "
                             "and the absolute 3x bar at N=1024")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the smoke measurements as the new "
                             "committed baseline instead of gating")
    args = parser.parse_args(argv)
    if args.write_baseline:
        rows = kernel_comparison(rounds_by_n=SMOKE_ROUNDS)
        lossy = lossy_comparison()
        baseline_path = os.path.join(RESULTS_DIR,
                                     "bench_kernels_baseline.json")
        _dump(rows, baseline_path, mode="smoke", lossy=lossy)
        print(f"[bench-kernels] baseline -> {baseline_path}")
        _print_rows(rows, lossy=lossy)
        return 0
    if args.smoke:
        return run_smoke()
    rows = kernel_comparison()
    lossy = lossy_comparison(rounds=FULL_ROUNDS[LOSSY_N])
    _dump(rows, os.path.join(RESULTS_DIR, "BENCH_kernels.json"),
          mode="full", lossy=lossy)
    _print_rows(rows, lossy=lossy)
    return 0


if __name__ == "__main__":
    sys.exit(main())
