"""Bench: regenerate X1, the cost-of-halting ladder (extension, DESIGN S8).

Asserts the ladder ordering at the largest measured size: stabilizing
O(d) < halting-whp O(N) < halting-deterministic Theta(N^2).
"""

from repro.harness.experiments import run_x1


def test_x1_regenerate(benchmark, quick, persist, exec_opts):
    result = benchmark.pedantic(
        run_x1, kwargs={"quick": quick, "exec_opts": exec_opts},
        rounds=1, iterations=1)
    persist(result)
    n_max = max(r["n"] for r in result.rows)
    at_max = {r["algorithm"]: r["rounds"] for r in result.rows
              if r["n"] == n_max}
    assert (at_max["exact_count_stabilizing"]
            < at_max["hybrid_count_halting_whp"]
            < at_max["klo_halting_deterministic"])
