"""Bench: regenerate X2, robustness under message loss (extension, DESIGN S8).

Asserts the robustness contract: the stabilizing core stays exact at
every loss rate while its rounds grow smoothly; the halting known-bound
variant loses correctness at high loss.
"""

from repro.harness.experiments import run_x2


def test_x2_regenerate(benchmark, quick, persist):
    result = benchmark.pedantic(run_x2, kwargs={"quick": quick},
                                rounds=1, iterations=1)
    persist(result)
    assert all(r["stabilizing_correct"] for r in result.rows)
    rounds = [r["stabilizing_rounds"] for r in result.rows]
    assert rounds == sorted(rounds)  # smooth degradation
    high_loss = [r for r in result.rows if r["loss_rate"] >= 0.6]
    if not quick:
        assert any(not r["known_bound_2d_correct"] for r in high_loss), \
            "known-bound should break under heavy loss"
