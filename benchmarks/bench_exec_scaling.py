"""Bench: executor scaling — the same sweep serial vs workers in {1, 2, 4}.

Times a fixed 12-cell Count sweep through :class:`repro.exec.
ParallelExecutor` at each worker count (no cache, so every cell
executes), asserts the parallel rows are identical to the serial
reference, and persists the wall-clock ladder to
``results/exec_scaling.json``.  ``workers=1`` uses the in-process serial
loop; higher counts fan out over a process pool, so the delta is pure
pool overhead vs parallel speedup.
"""

import json
import os

import pytest

from repro.exec import ParallelExecutor, TrialSpec, canonical_json

_TIMINGS = {}


def _cells(n=48, seeds=range(12)):
    spec = TrialSpec(
        schedule="fresh_spanning", schedule_params={"n": n},
        nodes="exact_count", node_params={"n": n},
        max_rounds=4000, until="quiescent", quiescence_window=32,
        oracle="count_exact")
    return [(spec, s) for s in seeds]


@pytest.fixture(scope="module")
def serial_rows():
    return ParallelExecutor(workers=1).run(_cells()).rows


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_exec_scaling(benchmark, workers, serial_rows, results_dir):
    report = benchmark.pedantic(
        ParallelExecutor(workers=workers).run, args=(_cells(),),
        rounds=1, iterations=1)
    assert report.executed == len(_cells())
    assert canonical_json(report.rows) == canonical_json(serial_rows)
    _TIMINGS[workers] = report.elapsed
    path = os.path.join(results_dir, "exec_scaling.json")
    with open(path, "w") as fh:
        json.dump({"cells": len(_cells()),
                   "elapsed_by_workers": _TIMINGS}, fh, indent=2)
    print(f"\n[exec-scaling] workers={workers}: "
          f"{report.elapsed:.2f}s for {report.total} cells -> {path}")
