"""Bench: regenerate F6 bit-complexity figure (experiment f6 of DESIGN.md §3).

Runs the harness experiment once under pytest-benchmark timing and
persists the table/figure artefacts to `results/f6/`.
"""

from repro.harness.experiments import run_f6


def test_f6_regenerate(benchmark, quick, persist, exec_opts):
    result = benchmark.pedantic(
        run_f6, kwargs={"quick": quick, "exec_opts": exec_opts},
        rounds=1, iterations=1)
    persist(result)
    assert result.rows, "experiment produced no rows"
