"""Bench: regenerate F4 sketch accuracy figure (experiment f4 of DESIGN.md §3).

Runs the harness experiment once under pytest-benchmark timing and
persists the table/figure artefacts to `results/f4/`.
"""

from repro.harness.experiments import run_f4


def test_f4_regenerate(benchmark, quick, persist):
    result = benchmark.pedantic(run_f4, kwargs={"quick": quick},
                                rounds=1, iterations=1)
    persist(result)
    assert result.rows, "experiment produced no rows"
