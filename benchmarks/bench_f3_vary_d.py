"""Bench: regenerate F3 rounds-vs-diameter figure (experiment f3 of DESIGN.md §3).

Runs the harness experiment once under pytest-benchmark timing and
persists the table/figure artefacts to `results/f3/`.
"""

from repro.harness.experiments import run_f3


def test_f3_regenerate(benchmark, quick, persist, exec_opts):
    result = benchmark.pedantic(
        run_f3, kwargs={"quick": quick, "exec_opts": exec_opts},
        rounds=1, iterations=1)
    persist(result)
    assert result.rows, "experiment produced no rows"
