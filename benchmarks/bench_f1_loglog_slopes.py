"""Bench: regenerate F1 (log-log scaling exponents) from the T1 runs.

Shares the T1 measurement pass (the expensive part) and times the full
measure+fit pipeline; asserts the reproduction's headline shape — the
baselines carry an ``Ω(N)`` term (exponent ≳ 1) while the core
algorithms do not (exponent near 0).
"""

from repro.harness.experiments import run_f1


def test_f1_regenerate(benchmark, quick, persist, exec_opts):
    result = benchmark.pedantic(
        run_f1, kwargs={"quick": quick, "exec_opts": exec_opts},
        rounds=1, iterations=1)
    persist(result)
    slopes = {r["algorithm"]: r["exponent_b"] for r in result.rows}
    assert slopes["klo_count"] > 1.5, "KLO must scale ~quadratically"
    assert slopes["token_dissemination_knownN"] > 0.8, \
        "token dissemination must carry an Omega(N)-ish term"
    assert slopes["exact_count_ours"] < 0.6, \
        "core exact Count must have no Omega(N) term on low-d dynamics"
    assert slopes["approx_count_ours"] < 0.6, \
        "core approx Count must have no Omega(N) term on low-d dynamics"
