"""Bench: regenerate T1 headline Count-scaling table (experiment t1 of DESIGN.md §3).

Runs the harness experiment once under pytest-benchmark timing and
persists the table/figure artefacts to `results/t1/`.  The full grid now
tops out at N=512 (raised from 256 when the batch-kernel tier made the
large cells affordable; KLO is still simulated only up to N=64 and
extended by its exact closed-form prediction beyond).
"""

from repro.harness.experiments import run_t1


def test_t1_regenerate(benchmark, quick, persist, exec_opts):
    result = benchmark.pedantic(
        run_t1, kwargs={"quick": quick, "exec_opts": exec_opts},
        rounds=1, iterations=1)
    persist(result)
    assert result.rows, "experiment produced no rows"
