"""Large-scale validation (marked slow): the headline behaviour at N ≥ 1024.

The paper's claim is about large N; these runs confirm the O(d)
behaviour survives three orders of magnitude above the unit-test sizes.
"""

import pytest

from repro import RngRegistry, Simulator
from repro.analysis import quiescence_rounds_bound
from repro.core import ApproxCount, ExactCount, SublinearMax
from repro.dynamics import (
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    dynamic_diameter,
)

pytestmark = pytest.mark.slow


class TestThousandNodes:
    def test_exact_count_1024(self):
        n = 1024
        sched = OverlapHandoffAdversary(n, 2, noise_edges=n // 8, seed=1)
        d = dynamic_diameter(sched)
        nodes = [ExactCount(i) for i in range(n)]
        result = Simulator(sched, nodes, rng=RngRegistry(1)).run(
            max_rounds=4000, until="quiescent", quiescence_window=64)
        assert result.unanimous_output() == n
        assert result.metrics.last_decision_round <= quiescence_rounds_bound(d)
        assert result.metrics.last_decision_round < 40  # vs Theta(N)=1024

    def test_max_2048(self):
        n = 2048
        sched = FreshSpanningAdversary(n, seed=2)
        nodes = [SublinearMax(i, (i * 7919) % 104729) for i in range(n)]
        result = Simulator(sched, nodes, rng=RngRegistry(2)).run(
            max_rounds=4000, until="quiescent", quiescence_window=64)
        assert result.unanimous_output() == max(
            (i * 7919) % 104729 for i in range(n))
        assert result.metrics.last_decision_round < 48

    def test_approx_count_4096_small_messages(self):
        n = 4096
        sched = FreshSpanningAdversary(n, seed=3)
        nodes = [ApproxCount(i, eps=0.25, delta=0.05) for i in range(n)]
        result = Simulator(sched, nodes, rng=RngRegistry(3)).run(
            max_rounds=4000, until="quiescent", quiescence_window=64)
        est = result.unanimous_output()
        assert abs(est / n - 1) < 0.25
        assert result.metrics.last_decision_round < 48
