"""Tests for the cardinality sketches and their analytic guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sketches import (
    ExponentialCountSketch,
    GeometricCountSketch,
    estimate_from_minima,
    failure_probability,
    required_width,
)


class TestEstimator:
    def test_known_value(self):
        # minima summing to S with width k -> (k-1)/S
        est = estimate_from_minima(np.array([0.1, 0.2, 0.2]))
        assert est == pytest.approx(2 / 0.5)

    def test_width_one_rejected(self):
        with pytest.raises(ValueError, match="width >= 2"):
            estimate_from_minima(np.array([0.1]))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            estimate_from_minima(np.array([0.0, 0.1]))

    def test_unbiased_at_scale(self):
        rng = np.random.default_rng(7)
        N, k, trials = 500, 64, 400
        draws = rng.exponential(1.0, size=(trials, N, k))
        estimates = (k - 1) / draws.min(axis=1).sum(axis=1)
        assert abs(estimates.mean() / N - 1.0) < 0.02

    def test_error_shrinks_with_width(self):
        rng = np.random.default_rng(7)
        N, trials = 200, 300

        def mean_err(k):
            draws = rng.exponential(1.0, size=(trials, N, k))
            est = (k - 1) / draws.min(axis=1).sum(axis=1)
            return np.abs(est / N - 1).mean()

        assert mean_err(128) < mean_err(8)


class TestFailureProbability:
    def test_monotone_in_width(self):
        probs = [failure_probability(k, 0.25) for k in [4, 16, 64, 256]]
        assert probs == sorted(probs, reverse=True)

    def test_monotone_in_eps(self):
        assert (failure_probability(64, 0.1)
                > failure_probability(64, 0.25)
                > failure_probability(64, 0.5))

    def test_degenerate_cases(self):
        assert failure_probability(1, 0.25) == 1.0
        assert failure_probability(64, 0.0) == 1.0

    def test_matches_empirical(self):
        """The analytic Gamma tail equals the simulated failure rate."""
        rng = np.random.default_rng(3)
        k, eps, N, trials = 30, 0.3, 100, 4000
        draws = rng.exponential(1.0, size=(trials, N, k))
        est = (k - 1) / draws.min(axis=1).sum(axis=1)
        empirical = float((np.abs(est / N - 1) > eps).mean())
        analytic = failure_probability(k, eps)
        assert abs(empirical - analytic) < 0.02

    def test_independent_of_N(self):
        # the distribution of relative error is N-free; check at two N's
        rng = np.random.default_rng(5)
        k, eps, trials = 20, 0.4, 3000

        def emp(N):
            draws = rng.exponential(1.0, size=(trials, N, k))
            est = (k - 1) / draws.min(axis=1).sum(axis=1)
            return float((np.abs(est / N - 1) > eps).mean())

        assert abs(emp(10) - emp(300)) < 0.03


class TestRequiredWidth:
    def test_meets_target(self):
        k = required_width(0.25, 0.1)
        assert failure_probability(k, 0.25) <= 0.1
        assert failure_probability(k - 1, 0.25) > 0.1  # minimal

    def test_tighter_eps_needs_more(self):
        assert required_width(0.1, 0.1) > required_width(0.5, 0.1)

    def test_tighter_delta_needs_more(self):
        assert required_width(0.25, 0.01) > required_width(0.25, 0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_width(0.0, 0.1)
        with pytest.raises(ValueError):
            required_width(0.25, 0.0)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.1, max_value=0.9),
           st.floats(min_value=0.01, max_value=0.5))
    def test_property_guarantee(self, eps, delta):
        k = required_width(eps, delta)
        assert failure_probability(k, eps) <= delta


class TestExponentialSketchClass:
    def test_for_accuracy(self):
        sk = ExponentialCountSketch.for_accuracy(0.25, 0.1)
        assert sk.width == required_width(0.25, 0.1)

    def test_draw_shape_and_positivity(self, rng):
        sk = ExponentialCountSketch(16)
        draws = sk.draw(rng)
        assert draws.shape == (16,)
        assert (draws > 0).all()

    def test_message_bits(self):
        assert ExponentialCountSketch(10).message_bits() == 648

    def test_width_one_rejected(self):
        with pytest.raises(ValueError):
            ExponentialCountSketch(1)

    def test_end_to_end_estimate(self, rng):
        sk = ExponentialCountSketch(256)
        N = 64
        draws = np.stack([sk.draw(rng) for _ in range(N)])
        est = sk.estimate(draws.min(axis=0))
        assert abs(est / N - 1) < 0.3


class TestGeometricSketch:
    def test_levels_are_nonpositive_after_negation(self, rng):
        sk = GeometricCountSketch(32)
        draws = sk.draw(rng)
        assert (draws <= 0).all()

    def test_estimate_order_of_magnitude(self, rng):
        sk = GeometricCountSketch(256)
        N = 128
        draws = np.stack([sk.draw(rng) for _ in range(N)])
        est = sk.estimate(draws.min(axis=0))
        assert N / 4 < est < N * 4  # coarse by design

    def test_cheaper_messages_than_exponential(self):
        assert (GeometricCountSketch(64).message_bits()
                < ExponentialCountSketch(64).message_bits())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GeometricCountSketch(32).estimate(np.array([]))
