"""Integration tests for the core (reconstructed) algorithms.

The central claims under test:

* correctness of final decisions under every adversary (stabilizing
  semantics: the last decision of every node is the true answer);
* the O(d) stabilization bound: last final decision within
  ``quiescence_rounds_bound(d)`` rounds — with **no dependence on N**.
"""

import numpy as np
import pytest

from repro import RngRegistry, Simulator
from repro.analysis import quiescence_rounds_bound
from repro.core import (
    ApproxCount,
    ApproxCountKnownBound,
    ConsensusKnownBound,
    ExactCount,
    ExactCountKnownBound,
    MaxKnownBound,
    SublinearConsensus,
    SublinearMax,
)
from repro.dynamics import (
    AlternatingMatchingsAdversary,
    EdgeChurnAdversary,
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    RepairedMobilityAdversary,
    StaticAdversary,
    dynamic_diameter,
    line_graph,
    random_tree_graph,
    ring_of_cliques,
)
from tests.conftest import run_quiescent


def adversary_zoo(n, seed=5):
    rng = np.random.default_rng(seed)
    return {
        "line": StaticAdversary(n, line_graph(n)),
        "ring_of_cliques": StaticAdversary(n, ring_of_cliques(n, 4)),
        "fresh": FreshSpanningAdversary(n, seed=seed),
        "handoff_T2": OverlapHandoffAdversary(n, 2, seed=seed),
        "handoff_T5": OverlapHandoffAdversary(n, 5, seed=seed),
        "alternating": AlternatingMatchingsAdversary(n),
        "churn": EdgeChurnAdversary(n, random_tree_graph(n, rng), seed=seed),
        "mobility": RepairedMobilityAdversary(n, T=2, seed=seed),
    }


class TestSublinearMax:
    @pytest.mark.parametrize("adv_name", list(adversary_zoo(8)))
    def test_correct_on_all_adversaries(self, adv_name):
        n = 32
        sched = adversary_zoo(n)[adv_name]
        values = [(i * 13) % 101 for i in range(n)]
        nodes = [SublinearMax(i, values[i]) for i in range(n)]
        result = run_quiescent(sched, nodes, max_rounds=40 * n + 400)
        assert result.unanimous_output() == max(values)

    def test_stabilization_within_bound(self):
        n = 64
        for seed in [1, 2, 3]:
            sched = OverlapHandoffAdversary(n, 2, seed=seed)
            d = dynamic_diameter(sched)
            nodes = [SublinearMax(i, (i * 7) % 50) for i in range(n)]
            result = run_quiescent(sched, nodes, seed=seed)
            last = result.metrics.last_decision_round
            assert last <= quiescence_rounds_bound(d)

    def test_no_dependence_on_n(self):
        """Same d-ish dynamics, 8x the nodes: decision round barely moves."""
        rounds = {}
        for n in [64, 512]:
            sched = FreshSpanningAdversary(n, seed=2)
            nodes = [SublinearMax(i, i % 97) for i in range(n)]
            result = run_quiescent(sched, nodes, max_rounds=4000)
            rounds[n] = result.metrics.last_decision_round
        assert rounds[512] <= rounds[64] + 8  # polylog growth at most

    def test_tuple_values(self):
        n = 16
        sched = FreshSpanningAdversary(n, seed=1)
        nodes = [SublinearMax(i, ((i * 3) % 7, i)) for i in range(n)]
        result = run_quiescent(sched, nodes)
        assert result.unanimous_output() == max(((i * 3) % 7, i)
                                                for i in range(n))

    def test_single_node(self):
        sched = StaticAdversary(1, [])
        nodes = [SublinearMax(0, 42)]
        result = run_quiescent(sched, nodes, window=4, max_rounds=50)
        assert result.unanimous_output() == 42


class TestSublinearConsensus:
    @pytest.mark.parametrize("adv_name", ["fresh", "handoff_T2", "churn"])
    def test_agreement_validity(self, adv_name):
        n = 32
        sched = adversary_zoo(n)[adv_name]
        nodes = [SublinearConsensus(i + 100, proposal=f"p{i}")
                 for i in range(n)]
        result = run_quiescent(sched, nodes, max_rounds=40 * n + 400)
        assert result.unanimous_output() == "p0"  # min id wins

    def test_arbitrary_id_order(self):
        n = 16
        ids = [50 - i for i in range(n)]  # descending ids
        sched = FreshSpanningAdversary(n, seed=3)
        nodes = [SublinearConsensus(ids[i], proposal=ids[i])
                 for i in range(n)]
        result = run_quiescent(sched, nodes)
        assert result.unanimous_output() == min(ids)


class TestExactCount:
    @pytest.mark.parametrize("adv_name", list(adversary_zoo(8)))
    def test_exact_on_all_adversaries(self, adv_name):
        n = 32
        sched = adversary_zoo(n)[adv_name]
        nodes = [ExactCount(i * 3 + 1) for i in range(n)]
        result = run_quiescent(sched, nodes, max_rounds=40 * n + 400)
        assert result.unanimous_output() == n

    def test_stabilization_bound(self):
        n = 48
        sched = OverlapHandoffAdversary(n, 2, seed=7)
        d = dynamic_diameter(sched)
        nodes = [ExactCount(i) for i in range(n)]
        result = run_quiescent(sched, nodes, seed=7)
        assert result.metrics.last_decision_round <= quiescence_rounds_bound(d)

    def test_progress_attribute_for_adaptive_adversaries(self):
        node = ExactCount(3)
        assert node.progress == 0

    def test_retractions_happen_and_resolve(self):
        """Under fresh per-round rewiring some node sees a quiet round
        before convergence, decides early, then retracts when late
        information arrives; the final output is still exact — the
        stabilizing contract."""
        n = 24
        sched = FreshSpanningAdversary(n, seed=5)
        nodes = [ExactCount(i, initial_window=1) for i in range(n)]
        result = run_quiescent(sched, nodes, max_rounds=3000, window=64)
        assert result.unanimous_output() == n
        assert result.metrics.counters.get("retractions", 0) >= 1


class TestApproxCount:
    def test_estimate_within_eps_typically(self):
        n, eps = 64, 0.25
        hits = 0
        trials = 8
        for seed in range(trials):
            sched = OverlapHandoffAdversary(n, 2, seed=seed)
            nodes = [ApproxCount(i, eps=eps, delta=0.05) for i in range(n)]
            result = run_quiescent(sched, nodes, seed=seed + 50)
            if abs(result.unanimous_output() / n - 1) <= eps:
                hits += 1
        assert hits >= trials - 2  # delta=5%; allow slack for 8 trials

    def test_unanimity(self):
        n = 32
        sched = FreshSpanningAdversary(n, seed=4)
        nodes = [ApproxCount(i, width=16) for i in range(n)]
        result = run_quiescent(sched, nodes)
        result.unanimous_output()  # raises if nodes disagree

    def test_width_parameter(self):
        node = ApproxCount(0, width=8)
        assert node.sketch.width == 8

    def test_geometric_family(self):
        n = 32
        sched = FreshSpanningAdversary(n, seed=4)
        nodes = [ApproxCount(i, width=64, family="geometric")
                 for i in range(n)]
        result = run_quiescent(sched, nodes)
        est = result.unanimous_output()
        assert n / 5 < est < n * 5

    def test_bad_family_rejected(self):
        with pytest.raises(ValueError, match="unknown sketch family"):
            ApproxCount(0, width=8, family="quantum")

    def test_missing_params_rejected(self):
        with pytest.raises(ValueError, match="width or both"):
            ApproxCount(0)


class TestKnownBoundVariants:
    def test_halting_with_good_bound(self):
        n = 48
        sched = FreshSpanningAdversary(n, seed=6)
        d = dynamic_diameter(sched)
        cases = [
            ([ExactCountKnownBound(i, rounds_bound=d) for i in range(n)], n),
            ([MaxKnownBound(i, i % 19, rounds_bound=d) for i in range(n)],
             max(i % 19 for i in range(n))),
            ([ConsensusKnownBound(i, f"p{i}", rounds_bound=d)
              for i in range(n)], "p0"),
        ]
        for nodes, expected in cases:
            result = Simulator(sched, nodes, rng=RngRegistry(1)).run(
                max_rounds=d + 1)
            assert result.unanimous_output() == expected
            assert result.stop_reason == "halted"
            assert result.rounds == d

    def test_approx_known_bound(self):
        n = 64
        sched = FreshSpanningAdversary(n, seed=6)
        d = dynamic_diameter(sched)
        nodes = [ApproxCountKnownBound(i, rounds_bound=d + 1, width=256)
                 for i in range(n)]
        result = Simulator(sched, nodes, rng=RngRegistry(2)).run(
            max_rounds=d + 2)
        assert abs(result.unanimous_output() / n - 1) < 0.4

    def test_insufficient_bound_documented_failure(self):
        """bound < d can decide before convergence — nodes then disagree
        or report a subcount.  This is the price of halting without the
        knowledge assumption being true."""
        n = 24
        sched = StaticAdversary(n, line_graph(n))  # d = 23
        nodes = [ExactCountKnownBound(i, rounds_bound=3) for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=4)
        assert any(v != n for v in result.outputs.values())

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            ExactCountKnownBound(0, rounds_bound=0)
