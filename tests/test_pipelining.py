"""Tests for bandwidth-limited (pipelined) sketch aggregation."""

import pytest

from repro import RngRegistry, Simulator
from repro.analysis import tdm_rounds_bound
from repro.core import PipelinedApproxCount
from repro.dynamics import (
    FreshSpanningAdversary,
    StaticAdversary,
    dynamic_diameter,
    line_graph,
    star_graph,
)
from tests.conftest import run_quiescent


class TestConstruction:
    def test_width_or_accuracy_required(self):
        with pytest.raises(ValueError, match="width or both"):
            PipelinedApproxCount(0, words_per_message=2)

    def test_accuracy_target(self):
        node = PipelinedApproxCount(0, words_per_message=2, eps=0.5,
                                    delta=0.2)
        assert node.sketch.width >= 2

    def test_cycle_lengths(self):
        tdm = PipelinedApproxCount(0, words_per_message=5, width=20,
                                   strategy="tdm")
        assert tdm.cycle == 4
        greedy = PipelinedApproxCount(0, words_per_message=5, width=20,
                                      strategy="greedy")
        # greedy reserves 5//2=2 recency slots, leaving 3 round-robin
        # slots -> a coordinate is guaranteed on the wire every ceil(20/3)
        assert greedy.cycle == 7

    def test_bad_strategy(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            PipelinedApproxCount(0, words_per_message=2, width=8,
                                 strategy="psychic")


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["tdm", "greedy"])
    def test_unanimous_reasonable_estimate(self, strategy):
        n = 32
        sched = FreshSpanningAdversary(n, seed=3)
        nodes = [PipelinedApproxCount(i, words_per_message=3, width=24,
                                      strategy=strategy) for i in range(n)]
        result = run_quiescent(sched, nodes, max_rounds=20000,
                               window=4 * nodes[0].cycle)
        est = result.unanimous_output()
        assert n / 3 < est < n * 3

    def test_messages_respect_word_budget(self):
        n = 10
        sched = StaticAdversary(n, star_graph(n))
        w = 2
        nodes = [PipelinedApproxCount(i, words_per_message=w, width=8)
                 for i in range(n)]
        # (idx:int ~<=5 bits, value:float 64) * w + tuple framings
        budget = (64 + 16 + 8) * w + 8
        sim = Simulator(sched, nodes, rng=RngRegistry(1),
                        bandwidth_bits=budget, strict_bandwidth=True)
        result = sim.run(max_rounds=5000, until="quiescent",
                         quiescence_window=4 * nodes[0].cycle)
        result.unanimous_output()  # no BandwidthExceededError raised

    def test_tdm_respects_analytic_bound(self):
        n = 24
        sched = StaticAdversary(n, line_graph(n))
        d = dynamic_diameter(sched)
        width, w = 12, 3
        nodes = [PipelinedApproxCount(i, words_per_message=w, width=width,
                                      strategy="tdm") for i in range(n)]
        result = run_quiescent(sched, nodes, max_rounds=50000,
                               window=4 * nodes[0].cycle)
        assert (result.metrics.last_decision_round
                <= tdm_rounds_bound(d, width, w) + 4 * nodes[0].cycle)

    def test_greedy_beats_tdm_on_line(self):
        n = 32
        sched = StaticAdversary(n, line_graph(n))

        def run(strategy):
            nodes = [PipelinedApproxCount(i, words_per_message=4, width=32,
                                          strategy=strategy)
                     for i in range(n)]
            result = run_quiescent(sched, nodes, max_rounds=100000,
                                   window=4 * nodes[0].cycle)
            return result.metrics.last_decision_round

        assert run("greedy") < run("tdm")

    def test_full_budget_equals_plain_aggregation_speed(self):
        """With w = width the pipelined node behaves like ApproxCount."""
        n = 24
        sched = FreshSpanningAdversary(n, seed=2)
        d = dynamic_diameter(sched)
        nodes = [PipelinedApproxCount(i, words_per_message=16, width=16)
                 for i in range(n)]
        result = run_quiescent(sched, nodes, max_rounds=5000, window=16)
        assert result.metrics.last_decision_round <= 3 * d + 4
