"""Tests for schedule combinators: dilate / union / concatenate / relabel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import RngRegistry, Simulator
from repro.core import ExactCount
from repro.errors import ConfigurationError
from repro.dynamics import (
    FreshSpanningAdversary,
    StaticAdversary,
    concatenate,
    dilate,
    dynamic_diameter,
    line_graph,
    relabel,
    ring_graph,
    union_schedules,
    verify_t_interval_connectivity,
)


class TestDilate:
    @pytest.mark.parametrize("s", [1, 2, 3, 5])
    def test_promise_amplification(self, s):
        base = FreshSpanningAdversary(16, seed=2)  # 1-interval
        dilated = dilate(base, s)
        ok, bad = verify_t_interval_connectivity(
            dilated, s, horizon=6 * s + 4, raise_on_failure=False)
        assert ok, f"window {bad}"
        assert dilated.interval == s

    def test_blocks_hold_base_graphs(self):
        base = FreshSpanningAdversary(12, seed=1)
        dilated = dilate(base, 3)
        base_edges = {tuple(e) for e in base.edges(2)}
        # last round of block 2 carries exactly base graph 2
        held = {tuple(e) for e in dilated.edges(6)}
        assert base_edges == held

    def test_overlap_in_early_block_rounds(self):
        base = FreshSpanningAdversary(12, seed=1)
        dilated = dilate(base, 3)
        first_of_block2 = {tuple(e) for e in dilated.edges(4)}
        prev = {tuple(e) for e in base.edges(1)}
        assert prev <= first_of_block2

    def test_s1_identity(self):
        base = FreshSpanningAdversary(10, seed=4)
        same = dilate(base, 1)
        assert (same.edges(5) == base.edges(5)).all()

    @settings(max_examples=10, deadline=None)
    @given(s=st.integers(min_value=1, max_value=6),
           seed=st.integers(min_value=0, max_value=1000))
    def test_property_promise(self, s, seed):
        dilated = dilate(FreshSpanningAdversary(10, seed=seed), s)
        ok, _ = verify_t_interval_connectivity(
            dilated, s, horizon=4 * s + 4, raise_on_failure=False)
        assert ok

    def test_algorithms_run_on_dilation(self):
        n = 24
        dilated = dilate(FreshSpanningAdversary(n, seed=6), 4)
        nodes = [ExactCount(i) for i in range(n)]
        result = Simulator(dilated, nodes, rng=RngRegistry(1)).run(
            max_rounds=4000, until="quiescent", quiescence_window=32)
        assert result.unanimous_output() == n


class TestUnion:
    def test_contains_both_parts(self):
        a = StaticAdversary(10, line_graph(10))
        b = StaticAdversary(10, ring_graph(10))
        u = union_schedules(a, b)
        edges = {tuple(e) for e in u.edges(1)}
        assert {tuple(e) for e in a.edges(1)} <= edges
        assert {tuple(e) for e in b.edges(1)} <= edges

    def test_interval_takes_stronger(self):
        a = FreshSpanningAdversary(10, seed=1)      # T=1
        b = dilate(FreshSpanningAdversary(10, seed=2), 4)  # T=4
        assert union_schedules(a, b).interval == 1
        static = StaticAdversary(10, line_graph(10))  # None = every T
        assert union_schedules(a, static).interval is None

    def test_union_shrinks_diameter(self):
        line = StaticAdversary(20, line_graph(20))
        fresh = FreshSpanningAdversary(20, seed=3)
        assert (dynamic_diameter(union_schedules(line, fresh))
                <= dynamic_diameter(line))

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            union_schedules(StaticAdversary(4, line_graph(4)),
                            StaticAdversary(5, line_graph(5)))


class TestConcatenate:
    def test_prefix_then_suffix(self):
        a = StaticAdversary(8, line_graph(8))
        b = StaticAdversary(8, ring_graph(8))
        cat = concatenate(a, 5, b, T=1)
        assert (cat.edges(3) == a.edges(3)).all()
        assert {tuple(e) for e in b.edges(1)} <= {
            tuple(e) for e in cat.edges(6)}

    def test_seam_overlap(self):
        from repro.dynamics import star_graph

        a = StaticAdversary(8, star_graph(8))  # disjoint from the ring
        b = StaticAdversary(8, ring_graph(8))
        cat = concatenate(a, 5, b, T=3)
        # B's first T-1 rounds carry A's last graph
        for r in [6, 7]:
            assert {tuple(e) for e in a.edges(5)} <= {
                tuple(e) for e in cat.edges(r)}
        assert not ({tuple(e) for e in a.edges(5)} <= {
            tuple(e) for e in cat.edges(8)})

    def test_seam_promise_verified(self):
        a = StaticAdversary(8, line_graph(8))
        b = StaticAdversary(8, ring_graph(8))
        cat = concatenate(a, 5, b, T=3)
        ok, _ = verify_t_interval_connectivity(cat, 3, horizon=15)
        assert ok

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            concatenate(StaticAdversary(4, line_graph(4)), 3,
                        StaticAdversary(5, line_graph(5)))


class TestRelabel:
    def test_preserves_structure(self):
        base = StaticAdversary(12, line_graph(12))
        perm = np.roll(np.arange(12), 5)
        rl = relabel(base, perm)
        assert dynamic_diameter(rl) == dynamic_diameter(base)
        assert len(rl.edges(1)) == len(base.edges(1))

    def test_identity_permutation(self):
        base = StaticAdversary(6, ring_graph(6))
        rl = relabel(base, list(range(6)))
        assert (rl.edges(1) == base.edges(1)).all()

    def test_invalid_permutation(self):
        base = StaticAdversary(4, line_graph(4))
        with pytest.raises(ConfigurationError, match="bijection"):
            relabel(base, [0, 0, 1, 2])

    def test_algorithm_outputs_invariant_under_relabel(self):
        """Id-oblivious algorithms compute the same answer on isomorphic
        schedules (inputs relabelled consistently)."""
        n = 16
        base = FreshSpanningAdversary(n, seed=5)
        rng = np.random.default_rng(2)
        perm = rng.permutation(n)
        rl = relabel(base, perm)

        def count_on(schedule):
            nodes = [ExactCount(i) for i in range(n)]
            return Simulator(schedule, nodes, rng=RngRegistry(1)).run(
                max_rounds=2000, until="quiescent",
                quiescence_window=32).unanimous_output()

        assert count_on(base) == count_on(rl) == n
