"""Tests for the claims-certification module."""

import json
import os

import pytest

from repro.harness.claims import CLAIMS, Claim, check_claims, render_claims
from repro.harness.cli import main as cli_main


def write_rows(tmp_path, exp_id, rows, title="t"):
    exp_dir = tmp_path / exp_id
    exp_dir.mkdir(parents=True, exist_ok=True)
    with open(exp_dir / "rows.json", "w") as fh:
        json.dump({"exp_id": exp_id.upper(), "title": title,
                   "rows": rows}, fh)


class TestClaimChecks:
    def test_unknown_when_nothing_run(self, tmp_path):
        claims = check_claims(str(tmp_path))
        assert all(c.verdict == "UNKNOWN" for c in claims)
        assert len(claims) == len(CLAIMS)

    def test_c1_holds_on_small_slopes(self, tmp_path):
        write_rows(tmp_path, "f1", [
            {"algorithm": "exact_count_ours", "exponent_b": 0.1},
            {"algorithm": "approx_count_ours", "exponent_b": 0.2},
        ])
        c1 = CLAIMS["C1"](str(tmp_path))
        assert c1.verdict == "HOLDS"

    def test_c1_fails_on_linear_slope(self, tmp_path):
        write_rows(tmp_path, "f1", [
            {"algorithm": "exact_count_ours", "exponent_b": 1.1},
            {"algorithm": "approx_count_ours", "exponent_b": 0.2},
        ])
        assert CLAIMS["C1"](str(tmp_path)).verdict == "FAILS"

    def test_c5_detects_bound_violation(self, tmp_path):
        write_rows(tmp_path, "f3", [
            {"algorithm": "exact_count_ours", "d": 5, "rounds": 100},
        ])
        claim = CLAIMS["C5"](str(tmp_path))
        assert claim.verdict == "FAILS"
        assert "violations" in claim.evidence

    def test_c7_reports_incorrect_cells(self, tmp_path):
        write_rows(tmp_path, "t2", [
            {"adversary": "fresh", "problem": "max_ours", "correct": True},
            {"adversary": "line", "problem": "count_ours", "correct": False},
        ])
        claim = CLAIMS["C7"](str(tmp_path))
        assert claim.verdict == "FAILS"
        assert "line" in claim.evidence

    def test_c9_requires_flat_sketch_and_growing_exact(self, tmp_path):
        write_rows(tmp_path, "f6", [
            {"algorithm": "approx_count_ours", "n": 32,
             "max_message_bits": 100},
            {"algorithm": "approx_count_ours", "n": 64,
             "max_message_bits": 100},
            {"algorithm": "exact_count_ours", "n": 32,
             "max_message_bits": 500},
            {"algorithm": "exact_count_ours", "n": 64,
             "max_message_bits": 1000},
        ])
        assert CLAIMS["C9"](str(tmp_path)).verdict == "HOLDS"


class TestRendering:
    def test_render_table_includes_verdicts(self):
        claims = [Claim("C1", "s", "HOLDS", "e"),
                  Claim("C2", "t", "FAILS", "f")]
        text = render_claims(claims)
        assert "HOLDS" in text and "FAILS" in text


class TestCliIntegration:
    def test_claims_flag_unknown_results_exits_zero(self, tmp_path, capsys):
        code = cli_main(["--claims", "--out", str(tmp_path)])
        assert code == 0  # UNKNOWN is not failure
        assert "UNKNOWN" in capsys.readouterr().out

    def test_claims_flag_failure_exits_one(self, tmp_path, capsys):
        write_rows(tmp_path, "f1", [
            {"algorithm": "exact_count_ours", "exponent_b": 1.5},
            {"algorithm": "approx_count_ours", "exponent_b": 1.5},
        ])
        code = cli_main(["--claims", "--out", str(tmp_path)])
        assert code == 1

    def test_claims_against_repo_results_if_present(self, capsys):
        """When the repo's results/ exists (benches have run), all claims
        must certify."""
        if not os.path.exists("results/f1/rows.json"):
            pytest.skip("full results not generated in this checkout")
        code = cli_main(["--claims", "--out", "results"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "FAILS" not in out
