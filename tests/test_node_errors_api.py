"""Tests for the Algorithm node lifecycle, the error hierarchy, and the
public API surface."""

import pytest

import repro
from repro.errors import (
    AlgorithmViolation,
    BandwidthExceededError,
    ConfigurationError,
    IncorrectOutputError,
    IntervalConnectivityError,
    NotTerminatedError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from repro.simnet.node import Algorithm, FunctionalNode, RoundContext


class TestAlgorithmLifecycle:
    def test_initial_state(self):
        node = FunctionalNode(3, lambda s, c: None, lambda s, c, i: None)
        assert not node.decided
        assert node.output is None
        assert not node.halted
        assert node.state_changed  # conservative default

    def test_decide_sets_output_and_queues_event(self):
        node = FunctionalNode(3, lambda s, c: None, lambda s, c, i: None)
        node.decide("v")
        assert node.decided and node.output == "v"
        assert node._drain_events() == [("decide", "v")]
        assert node._drain_events() == []  # drained

    def test_retract_clears(self):
        node = FunctionalNode(3, lambda s, c: None, lambda s, c, i: None)
        node.decide("v")
        node._drain_events()
        node.retract()
        assert not node.decided and node.output is None
        assert node._drain_events() == [("retract",)]

    def test_retract_without_decision_is_noop(self):
        node = FunctionalNode(3, lambda s, c: None, lambda s, c, i: None)
        node.retract()
        assert node._drain_events() == []

    def test_halt(self):
        node = FunctionalNode(3, lambda s, c: None, lambda s, c, i: None)
        node.decide(1)
        node.halt()
        assert node.halted and node.decided
        assert [e[0] for e in node._drain_events()] == ["decide", "halt"]

    def test_mark_changed(self):
        node = FunctionalNode(3, lambda s, c: None, lambda s, c, i: None)
        node.mark_changed(False)
        assert not node.state_changed
        node.mark_changed()
        assert node.state_changed

    def test_abstract_methods(self):
        node = Algorithm(0)
        with pytest.raises(NotImplementedError):
            node.compose(None)
        with pytest.raises(NotImplementedError):
            node.deliver(None, [])

    def test_functional_node_state(self):
        log = []
        node = FunctionalNode(
            1,
            compose=lambda s, c: s["x"],
            deliver=lambda s, c, inbox: log.append(inbox),
            state={"x": 42},
        )
        assert node.compose(None) == 42
        node.deliver(None, ["m"])
        assert log == [["m"]]


class TestRoundContext:
    def test_incr_delegates(self):
        calls = []
        ctx = RoundContext(3, None, lambda name, amount: calls.append(
            (name, amount)))
        ctx.incr("x")
        ctx.incr("y", 5)
        assert calls == [("x", 1), ("y", 5)]
        assert ctx.round_index == 3


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in [ConfigurationError, ScheduleError,
                    IntervalConnectivityError, SimulationError,
                    BandwidthExceededError, AlgorithmViolation,
                    NotTerminatedError, IncorrectOutputError]:
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_interval_error_is_schedule_error(self):
        assert issubclass(IntervalConnectivityError, ScheduleError)

    def test_payload_attributes(self):
        e = IntervalConnectivityError("x", window_start=3, window_length=2)
        assert e.window_start == 3 and e.window_length == 2
        e2 = BandwidthExceededError("x", node_id=1, bits=99, limit=10)
        assert (e2.node_id, e2.bits, e2.limit) == (1, 99, 10)
        e3 = NotTerminatedError("x", rounds_executed=5, undecided=(1, 2))
        assert e3.rounds_executed == 5 and e3.undecided == (1, 2)


class TestPublicApi:
    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_exports(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.dynamics
        import repro.harness
        import repro.simnet

        for module in [repro.analysis, repro.baselines, repro.core,
                       repro.dynamics, repro.harness, repro.simnet]:
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_readme_quickstart_snippet_runs(self):
        """The README's quickstart must stay executable."""
        from repro import Simulator, RngRegistry
        from repro.core import ExactCount
        from repro.dynamics import OverlapHandoffAdversary, dynamic_diameter

        N, T = 32, 2
        net = OverlapHandoffAdversary(N, T, noise_edges=4, seed=42)
        assert dynamic_diameter(net) < N
        nodes = [ExactCount(i) for i in range(N)]
        res = Simulator(net, nodes, rng=RngRegistry(42)).run(
            max_rounds=10_000, until="quiescent", quiescence_window=64)
        assert res.unanimous_output() == N
