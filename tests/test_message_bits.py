"""Unit + property tests for CONGEST message costing."""

import pytest
from hypothesis import given, strategies as st

from repro.simnet.message import NodeId, bit_size


class TestScalars:
    def test_none_is_one_bit(self):
        assert bit_size(None) == 1

    def test_bool_is_one_bit(self):
        assert bit_size(True) == 1
        assert bit_size(False) == 1

    def test_int_uses_bit_length(self):
        assert bit_size(0) == 2          # max(1, 0) + 1
        assert bit_size(1) == 2
        assert bit_size(255) == 9
        assert bit_size(-255) == 9

    def test_float_is_64(self):
        assert bit_size(3.14) == 64

    def test_node_id_charged_fixed_width(self):
        assert bit_size(NodeId(3), id_bits=20) == 20
        assert bit_size(NodeId(10**9), id_bits=20) == 20

    def test_node_id_default_width(self):
        assert bit_size(NodeId(3)) == 32


class TestContainers:
    def test_tuple_sums_plus_framing(self):
        assert bit_size((True, True)) == 8 + 1 + 1

    def test_nested(self):
        inner = bit_size((NodeId(1),), id_bits=16)
        assert inner == 8 + 16
        assert bit_size(((NodeId(1),),), id_bits=16) == 8 + inner

    def test_dict_counts_keys_and_values(self):
        assert bit_size({True: False}) == 8 + 1 + 1

    def test_bytes_and_str(self):
        assert bit_size(b"ab") == 16 + 8
        assert bit_size("ab") == 16 + 8

    def test_set_and_frozenset(self):
        assert bit_size(frozenset([True])) == 8 + 1


class TestCustom:
    def test_msg_bits_hook(self):
        class Msg:
            def __msg_bits__(self):
                return 17

        assert bit_size(Msg()) == 17

    def test_msg_bits_must_be_nonneg_int(self):
        class Bad:
            def __msg_bits__(self):
                return -1

        with pytest.raises(TypeError):
            bit_size(Bad())

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="unsupported message type"):
            bit_size(object())


class TestProperties:
    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_int_cost_positive_and_monotone_in_magnitude(self, x):
        cost = bit_size(x)
        assert cost >= 2
        assert bit_size(x * 2) >= cost - 1  # doubling can't shrink much

    @given(st.lists(st.integers(min_value=0, max_value=2**30), max_size=20))
    def test_container_cost_exceeds_content(self, xs):
        total = bit_size(tuple(xs))
        assert total == 8 + sum(bit_size(x) for x in xs)

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=2**40))
    def test_node_id_always_charged_id_bits(self, width, value):
        assert bit_size(NodeId(value), id_bits=width) == width
