"""Tests for the generalized aggregates (Sum/Mean/Top-k/leader election)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import RngRegistry, Simulator
from repro.core import ApproxMean, ApproxSum, LeaderElect, TopK
from repro.core.generalized import TopKAggregate, _weighted_draws
from repro.dynamics import (
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    StaticAdversary,
    line_graph,
)
from tests.conftest import run_quiescent


class TestWeightedDraws:
    def test_zero_weight_is_infinite(self, rng):
        draws = _weighted_draws(8, 0.0, rng)
        assert np.isinf(draws).all()

    def test_negative_weight_rejected(self, rng):
        with pytest.raises(ValueError):
            _weighted_draws(8, -1.0, rng)

    def test_scaling(self, rng):
        """Exp(w) minima concentrate at 1/(N*w): doubling the weight
        halves the draws in distribution."""
        light = _weighted_draws(4000, 1.0, rng).mean()
        heavy = _weighted_draws(4000, 4.0, rng).mean()
        assert light / heavy == pytest.approx(4.0, rel=0.2)


class TestApproxSum:
    def test_estimates_weighted_sum(self):
        n = 80
        sched = OverlapHandoffAdversary(n, 2, seed=4)
        weights = [(i % 5) + 0.5 for i in range(n)]
        nodes = [ApproxSum(i, weights[i], eps=0.2, delta=0.05)
                 for i in range(n)]
        result = run_quiescent(sched, nodes, seed=2)
        est = result.unanimous_output()
        assert abs(est / sum(weights) - 1) < 0.35

    def test_zero_weights_ignored(self):
        n = 40
        sched = FreshSpanningAdversary(n, seed=2)
        # only node 0 has weight; sum should be ~its weight
        nodes = [ApproxSum(i, 100.0 if i == 0 else 0.0, width=512)
                 for i in range(n)]
        result = run_quiescent(sched, nodes)
        assert abs(result.unanimous_output() / 100.0 - 1) < 0.25

    def test_all_zero_weights_report_zero(self):
        n = 8
        sched = FreshSpanningAdversary(n, seed=2)
        nodes = [ApproxSum(i, 0.0, width=16) for i in range(n)]
        result = run_quiescent(sched, nodes, window=8)
        assert result.unanimous_output() == 0.0

    def test_count_is_special_case(self):
        """All weights 1 -> the Count estimator."""
        n = 64
        sched = FreshSpanningAdversary(n, seed=3)
        nodes = [ApproxSum(i, 1.0, width=256) for i in range(n)]
        result = run_quiescent(sched, nodes)
        assert abs(result.unanimous_output() / n - 1) < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproxSum(0, -1.0, width=8)
        with pytest.raises(ValueError, match="width or both"):
            ApproxSum(0, 1.0)


class TestApproxMean:
    def test_estimates_mean(self):
        n = 80
        sched = OverlapHandoffAdversary(n, 2, seed=9)
        values = [float(i % 7) for i in range(n)]
        nodes = [ApproxMean(i, values[i], eps=0.2, delta=0.05)
                 for i in range(n)]
        result = run_quiescent(sched, nodes, seed=4)
        true_mean = sum(values) / n
        assert abs(result.unanimous_output() / true_mean - 1) < 0.4

    def test_all_zero_values(self):
        n = 8
        sched = FreshSpanningAdversary(n, seed=2)
        nodes = [ApproxMean(i, 0.0, width=16) for i in range(n)]
        result = run_quiescent(sched, nodes, window=8)
        assert result.unanimous_output() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ApproxMean(0, -2.0, width=8)


class TestTopKAggregateLaws:
    values = st.tuples(st.integers(min_value=0, max_value=50),
                       st.integers(min_value=0, max_value=30))
    states = st.lists(values, max_size=6).map(
        lambda xs: tuple(sorted(set(xs), reverse=True)[:3]))

    @settings(max_examples=60, deadline=None)
    @given(a=states, b=states, c=states)
    def test_laws(self, a, b, c):
        agg = TopKAggregate(3)
        assert agg.merge(a, b) == agg.merge(b, a)
        assert agg.merge(a, a) == a
        assert agg.merge(agg.merge(a, b), c) == agg.merge(a, agg.merge(b, c))

    def test_encode_decode(self):
        agg = TopKAggregate(2)
        state = ((5, 1), (3, 2))
        assert agg.decode(agg.encode(state)) == state


class TestTopK:
    def test_finds_k_largest_with_owners(self):
        n = 50
        sched = FreshSpanningAdversary(n, seed=6)
        values = [(i * 11) % 71 for i in range(n)]
        nodes = [TopK(i, values[i], k=4) for i in range(n)]
        result = run_quiescent(sched, nodes)
        expected = tuple(sorted(((values[i], i) for i in range(n)),
                                reverse=True)[:4])
        assert result.unanimous_output() == expected

    def test_k_one_is_max_with_witness(self):
        n = 20
        sched = StaticAdversary(n, line_graph(n))
        nodes = [TopK(i, i % 9, k=1) for i in range(n)]
        result = run_quiescent(sched, nodes, max_rounds=3000, window=64)
        (value, owner), = result.unanimous_output()
        assert value == 8 and owner % 9 == 8

    def test_k_exceeding_n_returns_all(self):
        n = 5
        sched = FreshSpanningAdversary(n, seed=1)
        nodes = [TopK(i, i, k=10) for i in range(n)]
        result = run_quiescent(sched, nodes, window=8)
        assert len(result.unanimous_output()) == n


class TestLeaderElect:
    def test_min_id_wins(self):
        n = 30
        ids = [i * 3 + 7 for i in range(n)]
        sched = FreshSpanningAdversary(n, seed=8)
        nodes = [LeaderElect(ids[i]) for i in range(n)]
        result = run_quiescent(sched, nodes)
        assert result.unanimous_output() == min(ids)
        leaders = [node for node in nodes if node.is_leader]
        assert len(leaders) == 1
        assert leaders[0].node_id == min(ids)

    def test_is_leader_false_before_decision(self):
        node = LeaderElect(3)
        assert not node.is_leader
