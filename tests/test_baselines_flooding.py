"""Tests for flooding baselines: FloodToken, FloodMax, FloodBroadcast,
FloodConsensus, RandomTokenDissemination."""

import pytest

from repro import RngRegistry, Simulator
from repro.baselines import (
    FloodBroadcast,
    FloodConsensus,
    FloodMax,
    FloodToken,
    RandomTokenDissemination,
)
from repro.baselines.token import dissemination_complete
from repro.errors import ConfigurationError
from repro.dynamics import (
    FreshSpanningAdversary,
    StaticAdversary,
    line_graph,
    star_graph,
)


class TestFloodToken:
    def test_spreads_on_line(self):
        n = 12
        sched = StaticAdversary(n, line_graph(n))
        nodes = [FloodToken(i, informed=(i == 0)) for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=n, until="decided")
        assert all(result.outputs[i] is True for i in range(n))
        assert result.metrics.decision_rounds[n - 1] == n - 1

    def test_seed_decides_immediately(self):
        node = FloodToken(0, informed=True)
        assert node.decided and node.output is True

    def test_multiple_seeds(self):
        n = 9
        sched = StaticAdversary(n, line_graph(n))
        nodes = [FloodToken(i, informed=(i in (0, n - 1))) for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=n, until="decided")
        # two wavefronts meet in the middle
        assert result.metrics.last_decision_round == (n - 1) // 2


class TestFloodMax:
    def test_known_n_bound_correct(self):
        n = 20
        sched = StaticAdversary(n, line_graph(n))
        nodes = [FloodMax(i, value=i % 7, rounds_bound=n - 1)
                 for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=n)
        assert result.unanimous_output() == 6
        assert result.rounds == n - 1

    def test_diameter_bound_variant(self):
        n = 20
        sched = StaticAdversary(n, star_graph(n))
        nodes = [FloodMax(i, value=i, rounds_bound=2) for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=3)
        assert result.unanimous_output() == n - 1
        assert result.rounds == 2

    def test_insufficient_bound_can_be_wrong(self):
        n = 10
        sched = StaticAdversary(n, line_graph(n))
        # Max sits at node n-1; a 2-round bound cannot reach node 0.
        nodes = [FloodMax(i, value=i, rounds_bound=2) for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=3)
        assert result.outputs[0] != n - 1  # documented failure mode

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FloodMax(0, value=1, rounds_bound=0)


class TestFloodBroadcast:
    def test_single_source_payload(self):
        n = 8
        sched = StaticAdversary(n, line_graph(n))
        nodes = [FloodBroadcast(i, rounds_bound=n - 1,
                                payload=("cfg" if i == 3 else None))
                 for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=n)
        assert result.unanimous_output() == "cfg"

    def test_smallest_source_wins(self):
        n = 8
        sched = StaticAdversary(n, star_graph(n))
        nodes = [FloodBroadcast(i, rounds_bound=4,
                                payload=f"from{i}" if i in (2, 5) else None)
                 for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=5)
        assert result.unanimous_output() == "from2"

    def test_no_source_yields_none(self):
        n = 4
        sched = StaticAdversary(n, line_graph(n))
        nodes = [FloodBroadcast(i, rounds_bound=3) for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=4)
        assert result.unanimous_output() is None


class TestFloodConsensus:
    def test_agreement_and_validity(self):
        n = 16
        sched = FreshSpanningAdversary(n, seed=2)
        nodes = [FloodConsensus(i + 10, proposal=f"v{i}", rounds_bound=n)
                 for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=n + 1)
        assert result.unanimous_output() == "v0"  # min id 10 proposes v0

    def test_halts_exactly_at_bound(self):
        n = 6
        sched = StaticAdversary(n, line_graph(n))
        nodes = [FloodConsensus(i, proposal=i, rounds_bound=9)
                 for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=20)
        assert result.rounds == 9


class TestRandomTokenDissemination:
    def test_known_n_decides_count(self):
        n = 20
        sched = FreshSpanningAdversary(n, seed=1)
        nodes = [RandomTokenDissemination(i, target_count=n)
                 for i in range(n)]
        sim = Simulator(sched, nodes, rng=RngRegistry(5))
        result = sim.run(max_rounds=5000, until="decided")
        assert result.unanimous_output() == n

    def test_oracle_predicate(self):
        n = 10
        sched = FreshSpanningAdversary(n, seed=1)
        nodes = [RandomTokenDissemination(i) for i in range(n)]
        sim = Simulator(sched, nodes, rng=RngRegistry(5))
        result = sim.run(max_rounds=5000,
                         stop_when=lambda s: dissemination_complete(s.nodes, n),
                         allow_timeout=True)
        assert result.stop_reason == "predicate"
        assert all(len(node.tokens) == n for node in nodes)

    def test_progress_property(self):
        node = RandomTokenDissemination(3)
        assert node.progress == 1
        node.tokens.update({7, 9})
        assert node.progress == 3

    def test_messages_are_single_tokens(self):
        n = 6
        sched = StaticAdversary(n, star_graph(n))
        nodes = [RandomTokenDissemination(i, target_count=n)
                 for i in range(n)]
        sim = Simulator(sched, nodes, rng=RngRegistry(5),
                        bandwidth_bits=32, strict_bandwidth=True)
        result = sim.run(max_rounds=1000, until="decided")
        assert result.unanimous_output() == n  # never exceeded 32 bits
