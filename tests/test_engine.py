"""Unit/integration tests for the round engine."""

import pytest

from repro import RngRegistry, Simulator, TraceRecorder
from repro.errors import (
    BandwidthExceededError,
    ConfigurationError,
    NotTerminatedError,
)
from repro.simnet.node import Algorithm, FunctionalNode
from repro.dynamics import ExplicitSchedule, StaticAdversary, line_graph


class EchoOnce(Algorithm):
    """Broadcasts its id in round 1, decides on the inbox, halts."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen = []

    def compose(self, ctx):
        return self.node_id if ctx.round_index == 1 else None

    def deliver(self, ctx, inbox):
        self.seen.extend(inbox)
        self.decide(tuple(sorted(self.seen)))
        self.halt()


def make_pair_schedule():
    return ExplicitSchedule(2, [[(0, 1)]], cycle=True)


class TestEngineBasics:
    def test_delivery_between_neighbors(self):
        nodes = [EchoOnce(0), EchoOnce(1)]
        result = Simulator(make_pair_schedule(), nodes).run(max_rounds=5)
        assert result.outputs == {0: (1,), 1: (0,)}
        assert result.stop_reason == "halted"
        assert result.rounds == 1

    def test_node_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="2 nodes"):
            Simulator(make_pair_schedule(), [EchoOnce(0)])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError, match="distinct"):
            Simulator(make_pair_schedule(), [EchoOnce(0), EchoOnce(0)])

    def test_silent_nodes_send_nothing(self):
        sent = []

        def compose(state, ctx):
            return None

        def deliver(state, ctx, inbox):
            sent.extend(inbox)

        nodes = [FunctionalNode(i, compose, deliver) for i in range(2)]
        sim = Simulator(make_pair_schedule(), nodes)
        sim.step()
        assert sent == []
        assert sim.metrics.snapshot().broadcasts == 0

    def test_timeout_raises_with_undecided_ids(self):
        def compose(state, ctx):
            return None

        def deliver(state, ctx, inbox):
            pass

        nodes = [FunctionalNode(i, compose, deliver) for i in range(2)]
        with pytest.raises(NotTerminatedError) as exc:
            Simulator(make_pair_schedule(), nodes).run(max_rounds=3)
        assert exc.value.undecided == (0, 1)
        assert exc.value.rounds_executed == 3

    def test_allow_timeout_returns_result(self):
        def compose(state, ctx):
            return None

        def deliver(state, ctx, inbox):
            pass

        nodes = [FunctionalNode(i, compose, deliver) for i in range(2)]
        result = Simulator(make_pair_schedule(), nodes).run(
            max_rounds=3, allow_timeout=True)
        assert result.stop_reason == "max_rounds"
        assert result.rounds == 3


class TestStopConditions:
    def test_until_decided_does_not_require_halt(self):
        class DecideKeepRunning(Algorithm):
            def compose(self, ctx):
                return 1

            def deliver(self, ctx, inbox):
                self.decide("ok")

        nodes = [DecideKeepRunning(i) for i in range(2)]
        result = Simulator(make_pair_schedule(), nodes).run(
            max_rounds=10, until="decided")
        assert result.stop_reason == "decided"
        assert result.rounds == 1

    def test_until_quiescent_waits_for_window(self):
        class QuietAfter3(Algorithm):
            def compose(self, ctx):
                return 1

            def deliver(self, ctx, inbox):
                self.mark_changed(ctx.round_index <= 3)
                if not self.decided:
                    self.decide("ok")

        nodes = [QuietAfter3(i) for i in range(2)]
        result = Simulator(make_pair_schedule(), nodes).run(
            max_rounds=50, until="quiescent", quiescence_window=5)
        assert result.stop_reason == "quiescent"
        assert result.rounds == 8  # 3 noisy + 5 quiet

    def test_stop_when_predicate(self):
        class Forever(Algorithm):
            def compose(self, ctx):
                return 1

            def deliver(self, ctx, inbox):
                pass

        nodes = [Forever(i) for i in range(2)]
        result = Simulator(make_pair_schedule(), nodes).run(
            max_rounds=100, stop_when=lambda sim: sim.round_index >= 7,
            allow_timeout=True)
        assert result.stop_reason == "predicate"
        assert result.rounds == 7

    def test_invalid_until_rejected(self):
        nodes = [EchoOnce(0), EchoOnce(1)]
        with pytest.raises(ConfigurationError):
            Simulator(make_pair_schedule(), nodes).run(
                max_rounds=1, until="whenever")


class TestBandwidth:
    def _big_sender(self):
        class Big(Algorithm):
            def compose(self, ctx):
                return tuple(range(100))  # large message

            def deliver(self, ctx, inbox):
                self.decide(True)
                self.halt()

        return [Big(0), Big(1)]

    def test_strict_bandwidth_raises(self):
        sim = Simulator(make_pair_schedule(), self._big_sender(),
                        bandwidth_bits=32, strict_bandwidth=True)
        with pytest.raises(BandwidthExceededError) as exc:
            sim.run(max_rounds=2)
        assert exc.value.limit == 32
        assert exc.value.bits > 32

    def test_loose_bandwidth_counts_overflows(self):
        sim = Simulator(make_pair_schedule(), self._big_sender(),
                        bandwidth_bits=32)
        result = sim.run(max_rounds=2)
        assert result.metrics.counters["bandwidth_overflows"] == 2


class TestHaltedNodes:
    def test_halted_nodes_neither_send_nor_receive(self):
        class HaltRound1(Algorithm):
            def compose(self, ctx):
                return "x"

            def deliver(self, ctx, inbox):
                self.decide("done")
                self.halt()

        class Listener(Algorithm):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.heard = []

            def compose(self, ctx):
                return "y"

            def deliver(self, ctx, inbox):
                self.heard.append(list(inbox))
                if ctx.round_index >= 3:
                    self.decide(self.heard)
                    self.halt()

        nodes = [HaltRound1(0), Listener(1)]
        result = Simulator(make_pair_schedule(), nodes).run(max_rounds=5)
        heard = result.outputs[1]
        assert heard[0] == ["x"]   # round 1: node 0 still alive
        assert heard[1] == []      # rounds 2+: node 0 halted
        assert heard[2] == []

    def test_halted_decision_still_in_outputs(self):
        nodes = [EchoOnce(0), EchoOnce(1)]
        result = Simulator(make_pair_schedule(), nodes).run(max_rounds=2)
        assert set(result.outputs) == {0, 1}


class TestRunResult:
    def test_unanimous_output(self):
        nodes = [EchoOnce(0), EchoOnce(1)]
        result = Simulator(make_pair_schedule(), nodes).run(max_rounds=2)
        with pytest.raises(AssertionError, match="disagree"):
            result.unanimous_output()

    def test_metrics_bits_counted(self):
        nodes = [EchoOnce(0), EchoOnce(1)]
        result = Simulator(make_pair_schedule(), nodes).run(max_rounds=2)
        assert result.metrics.broadcasts == 2
        assert result.metrics.broadcast_bits > 0

    def test_trace_integration(self):
        trace = TraceRecorder()
        nodes = [EchoOnce(0), EchoOnce(1)]
        Simulator(make_pair_schedule(), nodes, trace=trace).run(max_rounds=2)
        kinds = {e.kind for e in trace.events}
        assert {"round", "broadcast", "decide", "halt"} <= kinds


class TestDeterminism:
    def test_same_seed_same_run(self):
        from repro.core import ApproxCount
        from repro.dynamics import OverlapHandoffAdversary

        def run(seed):
            sched = OverlapHandoffAdversary(16, 2, seed=5)
            nodes = [ApproxCount(i, width=8) for i in range(16)]
            sim = Simulator(sched, nodes, rng=RngRegistry(seed))
            return sim.run(max_rounds=2000, until="quiescent",
                           quiescence_window=16)

        a, b = run(3), run(3)
        assert a.outputs == b.outputs
        assert a.rounds == b.rounds

    def test_different_seed_different_estimates(self):
        from repro.core import ApproxCount
        from repro.dynamics import OverlapHandoffAdversary

        def run(seed):
            sched = OverlapHandoffAdversary(16, 2, seed=5)
            nodes = [ApproxCount(i, width=8) for i in range(16)]
            sim = Simulator(sched, nodes, rng=RngRegistry(seed))
            return sim.run(max_rounds=2000, until="quiescent",
                           quiescence_window=16).unanimous_output()

        assert run(3) != run(4)
