"""Tests for PipelinedExactCount (exact Count under an id budget)."""

import pytest

from repro import RngRegistry, Simulator
from repro.core import PipelinedExactCount
from repro.dynamics import (
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    StaticAdversary,
    line_graph,
)


def run(sched, w, seed=1, window=96, max_rounds=60_000, **kwargs):
    n = sched.num_nodes
    nodes = [PipelinedExactCount(i, ids_per_message=w, **kwargs)
             for i in range(n)]
    return Simulator(sched, nodes, rng=RngRegistry(seed)).run(
        max_rounds=max_rounds, until="quiescent", quiescence_window=window)


class TestCorrectness:
    @pytest.mark.parametrize("w", [1, 3, 8])
    def test_exact_on_handoff(self, w):
        n = 40
        result = run(OverlapHandoffAdversary(n, 2, seed=2), w)
        assert result.unanimous_output() == n

    def test_exact_on_line(self):
        n = 24
        result = run(StaticAdversary(n, line_graph(n)), 2, window=64)
        assert result.unanimous_output() == n

    def test_exact_on_fresh(self):
        n = 32
        result = run(FreshSpanningAdversary(n, seed=3), 4)
        assert result.unanimous_output() == n

    def test_premature_decisions_get_retracted(self):
        """Tiny initial window forces early decisions; final output is
        still exact (stabilizing contract under a budget)."""
        n = 48
        result = run(OverlapHandoffAdversary(n, 2, seed=4), 1,
                     initial_window=1)
        assert result.unanimous_output() == n
        assert result.metrics.counters.get("retractions", 0) >= 1


class TestComplexity:
    def test_rounds_scale_inversely_with_budget(self):
        n = 96
        sched = OverlapHandoffAdversary(n, 2, seed=1)
        rounds = {w: run(sched, w).metrics.last_decision_round
                  for w in [1, 4, 16]}
        assert rounds[1] > rounds[4] > rounds[16]
        assert rounds[1] > n  # N/w with w=1 is at least N-ish

    def test_messages_respect_budget(self):
        """With a strict bit budget sized for w ids, no message overflows."""
        n = 20
        w = 3
        sched = FreshSpanningAdversary(n, seed=1)
        nodes = [PipelinedExactCount(i, ids_per_message=w)
                 for i in range(n)]
        budget = 32 * w + 8  # w NodeIds + tuple framing
        sim = Simulator(sched, nodes, rng=RngRegistry(1),
                        bandwidth_bits=budget, strict_bandwidth=True)
        result = sim.run(max_rounds=20_000, until="quiescent",
                         quiescence_window=64)
        assert result.unanimous_output() == n

    def test_large_budget_behaves_like_unbounded(self):
        n = 32
        sched = FreshSpanningAdversary(n, seed=5)
        result = run(sched, w=n, window=32)
        # with w >= N everything ships at once: O(d) + window behaviour
        assert result.metrics.last_decision_round <= 32


class TestValidation:
    def test_budget_positive(self):
        with pytest.raises(Exception):
            PipelinedExactCount(0, ids_per_message=0)

    def test_progress_property(self):
        node = PipelinedExactCount(3, ids_per_message=2)
        assert node.progress == 1.0
