"""Property-based tests of the engine's delivery semantics.

The fundamental contract: in every round, every non-halted node's inbox
contains exactly the payloads of its current non-halted neighbours that
transmitted — no losses, no duplicates, no leakage across rounds.  A
transcript-recording protocol cross-checks the engine against a direct
recomputation from the schedule.
"""

from typing import Any, List

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Simulator
from repro.dynamics import ExplicitSchedule
from repro.simnet.node import Algorithm, RoundContext


class Transcriber(Algorithm):
    """Broadcasts (round, id); records every inbox."""

    def __init__(self, node_id: int, silent_rounds: frozenset) -> None:
        super().__init__(node_id)
        self.silent_rounds = silent_rounds
        self.inboxes: List[List[Any]] = []

    def compose(self, ctx: RoundContext):
        if ctx.round_index in self.silent_rounds:
            return None
        return (ctx.round_index, self.node_id)

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        self.inboxes.append(sorted(inbox))


def random_schedule(draw, n, horizon):
    rounds = []
    for _ in range(horizon):
        m = draw(st.integers(min_value=0, max_value=n * 2))
        edges = []
        for _ in range(m):
            u = draw(st.integers(min_value=0, max_value=n - 1))
            v = draw(st.integers(min_value=0, max_value=n - 1))
            if u != v:
                edges.append((u, v))
        rounds.append(edges)
    return rounds


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_inbox_equals_neighbor_payloads(data):
    n = data.draw(st.integers(min_value=2, max_value=8))
    horizon = data.draw(st.integers(min_value=1, max_value=6))
    rounds = random_schedule(data.draw, n, horizon)
    silent = {
        i: frozenset(data.draw(st.sets(
            st.integers(min_value=1, max_value=horizon), max_size=3)))
        for i in range(n)
    }
    schedule = ExplicitSchedule(n, rounds)
    nodes = [Transcriber(i, silent[i]) for i in range(n)]
    sim = Simulator(schedule, nodes)
    for _ in range(horizon):
        sim.step()

    # Recompute expected inboxes directly from the schedule definition.
    for r in range(1, horizon + 1):
        neighbors = {i: set() for i in range(n)}
        for u, v in schedule.edges(r):
            neighbors[int(u)].add(int(v))
            neighbors[int(v)].add(int(u))
        for i in range(n):
            expected = sorted(
                (r, j) for j in neighbors[i] if r not in silent[j])
            assert nodes[i].inboxes[r - 1] == expected, (r, i)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_metrics_consistent_with_transcript(data):
    n = data.draw(st.integers(min_value=2, max_value=6))
    horizon = data.draw(st.integers(min_value=1, max_value=5))
    rounds = random_schedule(data.draw, n, horizon)
    schedule = ExplicitSchedule(n, rounds)
    nodes = [Transcriber(i, frozenset()) for i in range(n)]
    sim = Simulator(schedule, nodes)
    for _ in range(horizon):
        sim.step()
    snap = sim.metrics.snapshot()
    assert snap.rounds == horizon
    assert snap.broadcasts == n * horizon
    # every delivered message appears in exactly one inbox
    delivered = sum(len(ib) for node in nodes for ib in node.inboxes)
    assert snap.delivered_messages == delivered
