"""Tests for the observability layer (:mod:`repro.obs`).

Four contracts, in increasing integration order:

1. **Schema round-trip** — every event kind serializes to one JSON line
   and parses back to an equal dataclass; malformed lines (unknown
   kind, wrong version, missing/unknown fields, bool-typed counters)
   are rejected with :class:`EventSchemaError`.
2. **Zero overhead when disabled** — an unrecorded simulation run
   constructs *no* event objects: every event class is monkeypatched
   to raise, and the run must still succeed.
3. **Recording changes nothing** — a recorded trial's ``TrialResult``
   equals the unrecorded one, on the batch-kernel tier and on the
   reference engine.
4. **Stream pipeline** — the runner writes schema-valid per-trial
   JSONL (with engine-tier and cache events present), and the merge
   folds parallel streams into one deterministic artifact with trial
   provenance.
"""

import json
import os

import pytest

import repro.obs.events as obs_events
from repro.core.max_compute import SublinearMax
from repro.dynamics import OverlapHandoffAdversary
from repro.exec.specs import TrialSpec
from repro.harness.runner import run_trial
from repro.obs import (
    SCHEMA_VERSION,
    CacheEvent,
    CsvSink,
    DecisionEvent,
    DeliveryEvent,
    EngineTierEvent,
    EventSchemaError,
    Recorder,
    RoundEvent,
    SummaryEvent,
    TrialEvent,
    event_from_json,
    event_to_json,
    iter_stream,
    merge_event_streams,
    set_events_dir,
    summarize_streams,
)
from repro.simnet import RngRegistry, Simulator

SAMPLES = [
    TrialEvent(seed=7, label="exact_count/static[n=8]", spec="ab12" * 16,
               engine="fast", until="quiescent", max_rounds=100),
    RoundEvent(round=3, tier="batch", broadcasts=8, broadcast_bits=640,
               max_broadcast_bits=80),
    DeliveryEvent(round=3, messages=24, bits=1920),
    DecisionEvent(round=4, node_id=2, action="decide", value=8),
    DecisionEvent(round=5, node_id=2, action="retract"),
    EngineTierEvent(round=0, tier="fast", action="select",
                    reason="population has no batch kernel"),
    CacheEvent(round=9, cache="adjacency", hits=7, misses=2,
               detail="span_hits=7 fingerprint_hits=0 evictions=0"),
    SummaryEvent(rounds=10, stop_reason="quiescent", broadcast_bits=6400,
                 delivered_messages=240, batch_rounds=10),
]


# --------------------------------------------------------------------------
# 1. schema round-trip
# --------------------------------------------------------------------------

@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
def test_round_trip_every_kind(event):
    line = event_to_json(event)
    parsed = event_from_json(line)
    assert parsed == event
    assert type(parsed) is type(event)
    # the line itself is canonical: re-serializing is byte-identical
    assert event_to_json(parsed) == line
    assert json.loads(line)["v"] == SCHEMA_VERSION


def test_rejects_unknown_kind():
    with pytest.raises(EventSchemaError, match="unknown event kind"):
        event_from_json('{"kind":"frobnicate","v":1}')


def test_rejects_wrong_version():
    bad = dict(SAMPLES[1].to_dict(), v=SCHEMA_VERSION + 1)
    with pytest.raises(EventSchemaError, match="schema version"):
        event_from_json(json.dumps(bad))


def test_rejects_missing_required_field():
    bad = SAMPLES[1].to_dict()
    del bad["tier"]
    with pytest.raises(EventSchemaError, match="missing required field"):
        event_from_json(json.dumps(bad))


def test_rejects_unknown_field():
    bad = dict(SAMPLES[2].to_dict(), surprise=1)
    with pytest.raises(EventSchemaError, match="unknown fields"):
        event_from_json(json.dumps(bad))


def test_rejects_bool_counter():
    bad = dict(SAMPLES[2].to_dict(), messages=True)
    with pytest.raises(EventSchemaError, match="bool"):
        event_from_json(json.dumps(bad))


def test_rejects_malformed_json():
    with pytest.raises(EventSchemaError, match="malformed"):
        event_from_json("{not json")
    with pytest.raises(EventSchemaError, match="JSON object"):
        event_from_json("[1, 2]")


def test_optional_fields_default_on_parse():
    line = '{"kind":"decision","v":1,"round":1,"node_id":0,"action":"halt"}'
    event = event_from_json(line)
    assert event.value is None


# --------------------------------------------------------------------------
# 2. disabled recorder = zero event construction
# --------------------------------------------------------------------------

def _sim(recorder=None, engine=None, n=16, seed=3, T=2):
    sched = OverlapHandoffAdversary(n, T=T, seed=seed)
    nodes = [SublinearMax(i, value=(i * 17) % 101) for i in range(n)]
    return Simulator(sched, nodes, rng=RngRegistry(seed),
                     recorder=recorder, engine=engine)


def test_unrecorded_run_allocates_no_events(monkeypatch):
    def boom(*args, **kwargs):  # noqa: ANN001 - signature irrelevant
        raise AssertionError("event constructed with recorder disabled")

    for name in ("TrialEvent", "RoundEvent", "DeliveryEvent",
                 "DecisionEvent", "EngineTierEvent", "CacheEvent",
                 "SummaryEvent"):
        monkeypatch.setattr(obs_events, name, boom)
    result = _sim(recorder=None).run(
        5000, until="quiescent", quiescence_window=32)
    assert result.rounds > 0


# --------------------------------------------------------------------------
# 3. recording never changes measured results
# --------------------------------------------------------------------------

@pytest.mark.parametrize("engine", [None, "reference"])
def test_recorded_run_is_bit_identical(engine):
    base = _sim(engine=engine).run(
        5000, until="quiescent", quiescence_window=32)
    rec = Recorder.in_memory()
    recorded = _sim(recorder=rec, engine=engine).run(
        5000, until="quiescent", quiescence_window=32)
    assert recorded.rounds == base.rounds
    assert recorded.stop_reason == base.stop_reason
    assert recorded.outputs == base.outputs
    assert recorded.metrics.as_dict() == base.metrics.as_dict()
    assert rec.counters.get("round") == base.rounds


def test_batch_tier_select_event_and_round_tiers():
    rec = Recorder.in_memory()
    _sim(recorder=rec).run(5000, until="quiescent", quiescence_window=32)
    selects = rec.of_kind("engine_tier")
    assert selects and selects[0].action == "select"
    assert selects[0].tier == "batch"
    assert "batch kernel engaged" in selects[0].reason
    assert {e.tier for e in rec.of_kind("round")} == {"batch"}


def test_decline_reason_on_reference_engine():
    rec = Recorder.in_memory()
    _sim(recorder=rec, engine="reference").run(
        5000, until="quiescent", quiescence_window=32)
    (select,) = [e for e in rec.of_kind("engine_tier")
                 if e.action == "select"]
    assert select.tier == "reference"
    assert "engine='reference'" in select.reason


def test_cache_events_present_with_counters():
    rec = Recorder.in_memory()
    # T=4: each handoff window's union graph is stable for T-1 = 3
    # rounds, so the stable-span cache must serve repeat rounds.
    _sim(recorder=rec, T=4).run(5000, until="quiescent",
                                quiescence_window=32)
    caches = {e.cache: e for e in rec.of_kind("cache")}
    assert set(caches) == {"adjacency", "payload_bits"}
    adjacency = caches["adjacency"]
    assert adjacency.hits > 0
    assert "span_hits=" in adjacency.detail
    assert "span_hits=0" not in adjacency.detail


def test_summary_event_matches_run():
    rec = Recorder.in_memory()
    result = _sim(recorder=rec).run(
        5000, until="quiescent", quiescence_window=32)
    (summary,) = rec.of_kind("summary")
    assert summary.rounds == result.rounds
    assert summary.stop_reason == result.stop_reason
    assert summary.broadcast_bits == result.metrics.broadcast_bits
    tier_total = (summary.batch_rounds + summary.fast_rounds
                  + summary.reference_rounds)
    assert tier_total == result.rounds


def test_csv_sink_unions_columns(tmp_path):
    path = tmp_path / "events.csv"
    sink = CsvSink(str(path))
    rec = Recorder(sinks=[sink])
    for event in SAMPLES:
        rec.emit(event)
    rec.close()
    header = path.read_text().splitlines()[0].split(",")
    assert header[:2] == ["kind", "v"]
    assert "round" in header and "reason" in header


# --------------------------------------------------------------------------
# 4. the runner + merge pipeline
# --------------------------------------------------------------------------

_SPEC = TrialSpec(schedule="alternating_matchings", nodes="exact_count",
                  max_rounds=20000, until="quiescent", quiescence_window=64,
                  schedule_params={"n": 16}, node_params={"n": 16},
                  oracle="count_exact")


@pytest.fixture
def events_dir(tmp_path):
    set_events_dir(str(tmp_path))
    try:
        yield str(tmp_path)
    finally:
        set_events_dir(None)


def test_runner_stream_is_schema_valid(events_dir):
    unrecorded_result = run_trial(_SPEC, 11)
    recorded_result = run_trial(_SPEC, 11)
    assert recorded_result == unrecorded_result  # first run pre-dated no dir

    streams = [f for f in os.listdir(events_dir)
               if f.startswith("trial-") and f.endswith(".jsonl")]
    assert len(streams) == 2
    events = list(iter_stream(os.path.join(events_dir, streams[0])))
    kinds = [e.kind for e in events]
    assert kinds[0] == "trial"
    assert kinds[-1] == "summary"
    assert "engine_tier" in kinds and "cache" in kinds
    header = events[0]
    assert header.seed == 11
    assert header.label == "exact_count/alternating_matchings"
    assert header.spec == _SPEC.key(11)  # cache-key provenance


def test_merge_is_deterministic_with_provenance(events_dir):
    for seed in (5, 3, 4):
        run_trial(_SPEC, seed)
    merged, summary = merge_event_streams(events_dir)
    first = open(merged, "rb").read()
    assert summary.streams == 3
    assert [t["seed"] for t in summary.trials] == [3, 4, 5]  # sorted
    assert all(t["stream"].startswith("trial-") for t in summary.trials)
    assert summary.rounds == sum(t["rounds"] for t in summary.trials)
    # merging again (same inputs) is byte-identical
    merged2, _ = merge_event_streams(events_dir)
    assert open(merged2, "rb").read() == first
    rendered = summary.render()
    assert "3 trial streams" in rendered


def test_merge_drops_torn_tail_only(events_dir):
    run_trial(_SPEC, 2)
    (stream,) = [f for f in os.listdir(events_dir)
                 if f.startswith("trial-")]
    path = os.path.join(events_dir, stream)
    whole = list(iter_stream(path))
    with open(path, "a") as fh:
        fh.write('{"kind":"round","v":1,"round"')  # killed mid-write
    assert list(iter_stream(path)) == whole
    # a torn line in the *middle* is an error, with the line number
    with open(path) as fh:
        lines = fh.read().splitlines()
    lines.insert(1, '{"kind":"nonsense","v":1}')
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    with pytest.raises(EventSchemaError, match=":2"):
        list(iter_stream(path))


def test_summarize_streams_counts_by_kind(events_dir):
    run_trial(_SPEC, 9)
    paths = [os.path.join(events_dir, f) for f in os.listdir(events_dir)]
    summary = summarize_streams(paths)
    assert summary.by_kind["trial"] == 1
    assert summary.by_kind["summary"] == 1
    assert summary.by_kind["round"] == summary.rounds
