"""Property tests for the batch-kernel tier (:mod:`repro.simnet.batch`).

Three layers of evidence, in increasing integration order:

1. **Numeric helpers** — `int_payload_bits` / `segment_reduce` /
   `segment_counts` against their scalar Python definitions (Hypothesis
   where the domain is a plain value space, seeded random otherwise).
2. **BatchQuiescence** — the vectorised decide/retract state machine
   against a population of per-node
   :class:`~repro.core.termination.QuiescenceController` replicas driven
   by the same random change sequences.
3. **Kernel vs per-node fold** — every registered ``deliver_batch``
   kernel against the per-node ``deliver`` fold, driven through the
   engine on seeded-random explicit schedules that deliberately include
   empty rounds (every inbox empty) and isolated nodes (some inboxes
   empty); the batch tier must both *engage* and match bit-for-bit.

Also here: the numpy-scalar `bit_size` regression tests (kernels hand
``np.int64`` payloads to the accounting layer, which must cost them like
the equal Python ``int``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.flooding import FloodBroadcast, FloodMax, FloodToken
from repro.core.approx_count import ApproxCount, ApproxCountKnownBound
from repro.core.exact_count import ExactCount, ExactCountKnownBound
from repro.core.max_compute import MaxKnownBound, SublinearMax
from repro.core.termination import QuiescenceController
from repro.dynamics import ExplicitSchedule
from repro.simnet import RngRegistry, Simulator
from repro.simnet.batch import (
    BatchQuiescence,
    build_batch_kernel,
    int_payload_bits,
    popcount64,
    segment_counts,
    segment_reduce,
)
from repro.simnet.message import bit_size


# --------------------------------------------------------------------------
# numeric helpers
# --------------------------------------------------------------------------

BOUND = 2 ** 62 - 1  # kernel int-eligibility range: |v| < 2**62


@given(st.lists(st.integers(min_value=-BOUND, max_value=BOUND),
                min_size=1, max_size=64))
def test_int_payload_bits_matches_bit_size(values):
    got = int_payload_bits(np.array(values, dtype=np.int64))
    expected = [bit_size(v) for v in values]
    assert got.tolist() == expected


@given(st.integers(min_value=0, max_value=2 ** 64 - 1))
def test_popcount64_matches_python_bit_count(value):
    got = popcount64(np.array([value], dtype=np.uint64))
    assert got.tolist() == [bin(value).count("1")]


def _random_csr(rng, n, max_degree=4):
    """Random receiver-grouped CSR (indptr, indices) with empty segments."""
    degrees = rng.integers(0, max_degree + 1, size=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = rng.integers(0, n, size=int(indptr[-1])).astype(np.int64)
    return indptr, indices


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("ufunc", [np.maximum, np.minimum, np.bitwise_or])
def test_segment_reduce_matches_naive_fold(seed, ufunc):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 20))
    indptr, indices = _random_csr(rng, n)
    own = rng.integers(0, 1000, size=n).astype(np.int64)
    data = own[indices]  # message rows in receiver-grouped order

    expected = own.copy()
    for j in range(n):
        seg = data[indptr[j]:indptr[j + 1]]
        for row in seg:  # empty segment: receiver keeps its own state
            expected[j] = ufunc(expected[j], row)

    got = segment_reduce(ufunc, data, indptr, own.copy())
    assert got.tolist() == expected.tolist()


@pytest.mark.parametrize("seed", range(8))
def test_segment_reduce_matches_naive_fold_2d(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 16))
    width = int(rng.integers(1, 5))
    indptr, indices = _random_csr(rng, n)
    own = rng.random((n, width))
    data = own[indices]

    expected = own.copy()
    for j in range(n):
        for row in data[indptr[j]:indptr[j + 1]]:
            expected[j] = np.minimum(expected[j], row)

    got = segment_reduce(np.minimum, data, indptr, own.copy())
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("seed", range(8))
def test_segment_counts_matches_naive_sum(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 20))
    indptr, indices = _random_csr(rng, n)
    values = rng.integers(0, 5, size=n).astype(np.int64)
    expected = [int(values[indices[indptr[j]:indptr[j + 1]]].sum())
                for j in range(n)]
    got = segment_counts(values, indptr, indices)
    assert got.tolist() == expected


# --------------------------------------------------------------------------
# numpy-scalar payload accounting (regression: kernels produce np.int64)
# --------------------------------------------------------------------------

@pytest.mark.parametrize("value", [0, 1, -1, 5, -937, 2 ** 40, -(2 ** 40)])
def test_bit_size_numpy_int_matches_python_int(value):
    assert bit_size(np.int64(value)) == bit_size(value)
    if abs(value) < 2 ** 31:
        assert bit_size(np.int32(value)) == bit_size(value)


def test_bit_size_numpy_bool_and_float():
    assert bit_size(np.bool_(True)) == bit_size(True) == 1
    assert bit_size(np.bool_(False)) == bit_size(False) == 1
    assert bit_size(np.float64(3.25)) == bit_size(3.25) == 64
    assert bit_size(np.float32(3.25)) == 64


# --------------------------------------------------------------------------
# BatchQuiescence vs per-node QuiescenceController
# --------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=6),      # population size
       st.integers(min_value=1, max_value=4),      # initial window
       st.sampled_from([2, 3, 4]),                 # growth
       st.integers(min_value=0, max_value=2 ** 31 - 1))  # change-seq seed
@settings(max_examples=60, deadline=None)
def test_batch_quiescence_matches_controllers(n, window, growth, seq_seed):
    controllers = [QuiescenceController(window, growth) for _ in range(n)]
    batch = BatchQuiescence.from_controllers(controllers)
    assert batch is not None
    rng = np.random.default_rng(seq_seed)
    for _ in range(40):
        changed = rng.random(n) < 0.4
        decide, retract = batch.observe(changed)
        for i, ctl in enumerate(controllers):
            verdict = ctl.observe(bool(changed[i]))
            assert bool(decide[i]) == (verdict == "decide")
            assert bool(retract[i]) == (verdict == "retract")
    # restore() must write the final scalar state back verbatim.
    replicas = [QuiescenceController(window, growth) for _ in range(n)]
    batch.restore(replicas)
    for ctl, rep in zip(controllers, replicas):
        assert (rep.window, rep.quiet_streak, rep.holding,
                rep.retraction_count) == (ctl.window, ctl.quiet_streak,
                                          ctl.holding, ctl.retraction_count)


def test_batch_quiescence_rejects_mixed_growth():
    controllers = [QuiescenceController(1, 2), QuiescenceController(1, 4)]
    assert BatchQuiescence.from_controllers(controllers) is None


# --------------------------------------------------------------------------
# kernel deliver vs per-node deliver fold (engine-driven property test)
# --------------------------------------------------------------------------

def _random_rounds(seed, n, horizon=12):
    """Seeded-random per-round edge lists with adversarial edge cases:
    at least one fully empty round (every inbox empty) and rounds where
    node 0 is isolated (its inbox empty while others fold messages)."""
    rng = np.random.default_rng(seed)
    rounds = []
    for r in range(horizon):
        if r % 5 == 1:
            rounds.append([])  # empty graph: all inboxes empty
            continue
        lo = 1 if r % 3 == 0 else 0  # r%3==0: node 0 isolated
        count = int(rng.integers(1, 2 * n))
        edges = set()
        for _ in range(count):
            u = int(rng.integers(lo, n))
            v = int(rng.integers(lo, n))
            if u != v:
                edges.add((min(u, v), max(u, v)))
        rounds.append(sorted(edges))
    return rounds


BOUND_ROUNDS = 30

KERNEL_POPULATIONS = [
    ("sublinear_max", lambda n: [
        SublinearMax(i, value=(i * 7919) % 65537) for i in range(n)]),
    ("max_known_bound", lambda n: [
        MaxKnownBound(i, value=(i * 7919) % 65537, rounds_bound=BOUND_ROUNDS)
        for i in range(n)]),
    ("exact_count", lambda n: [ExactCount(i) for i in range(n)]),
    ("exact_count_known_bound", lambda n: [
        ExactCountKnownBound(i, BOUND_ROUNDS) for i in range(n)]),
    ("approx_count", lambda n: [
        ApproxCount(i, width=8) for i in range(n)]),
    ("approx_count_known_bound", lambda n: [
        ApproxCountKnownBound(i, BOUND_ROUNDS, width=8) for i in range(n)]),
    ("flood_token", lambda n: [
        FloodToken(i, informed=(i == 0)) for i in range(n)]),
    ("flood_max", lambda n: [
        FloodMax(i, value=(i * 104729) % 9973, rounds_bound=BOUND_ROUNDS)
        for i in range(n)]),
    ("flood_broadcast", lambda n: [
        FloodBroadcast(i, rounds_bound=BOUND_ROUNDS,
                       payload=("tok", i) if i < 2 else None)
        for i in range(n)]),
]


def _run(label, factory, seed, engine):
    n = 10
    schedule = ExplicitSchedule(n, _random_rounds(seed, n), cycle=True,
                                interval=None)
    nodes = factory(n)
    sim = Simulator(schedule, nodes, rng=RngRegistry(seed), engine=engine)
    until = ("halted" if "known_bound" in label or label.startswith("flood_")
             else "quiescent")
    if label == "flood_token":
        until = "decided"
    result = sim.run(max_rounds=120, until=until, quiescence_window=8,
                     allow_timeout=True)
    return sim, result


@pytest.mark.parametrize("label,factory", KERNEL_POPULATIONS,
                         ids=[label for label, _ in KERNEL_POPULATIONS])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_kernel_deliver_matches_per_node_fold(label, factory, seed):
    """Random CSR segments (incl. empty inboxes): each deliver_batch
    kernel is bit-identical to the per-node deliver fold."""
    sim_batch, batch = _run(label, factory, seed, "fast")
    assert sim_batch._tier_rounds["batch"] > 0, "kernel never engaged"
    _, nobatch = _run(label, factory, seed, "fast-nobatch")
    _, ref = _run(label, factory, seed, "reference")
    assert batch == nobatch
    assert batch == ref


@pytest.mark.parametrize("seed", [0, 1])
def test_fold_matches_with_all_halted_neighbours(seed):
    """All-halted-neighbours edge: staggered halt bounds mean late rounds
    deliver into inboxes whose senders are all halted.  The kernel
    builder must decline the non-uniform bound (halting must stay
    population-wide atomic on the batch tier) and every tier must agree."""
    def factory(n):
        return [FloodMax(i, value=(i * 31) % 997,
                         rounds_bound=6 if i % 2 else BOUND_ROUNDS)
                for i in range(n)]

    results = {}
    for engine in ("fast", "fast-nobatch", "reference"):
        sim, results[engine] = _run("flood_max_staggered", factory, seed,
                                    engine)
        if engine == "fast":
            assert sim._tier_rounds["batch"] == 0  # non-uniform bound
    assert results["fast"] == results["fast-nobatch"] == results["reference"]


@pytest.mark.parametrize("label,factory", KERNEL_POPULATIONS[:6],
                         ids=[label for label, _ in KERNEL_POPULATIONS[:6]])
def test_finalize_restores_node_state_across_split_runs(label, factory):
    """Stopping a batch run and resuming it (two ``run()`` calls) must
    equal one uninterrupted per-node run: ``finalize`` has to write the
    kernel arrays back into the node objects verbatim at every exit."""
    seed = 5
    n = 10

    def fresh(engine):
        schedule = ExplicitSchedule(n, _random_rounds(seed, n), cycle=True,
                                    interval=None)
        return Simulator(schedule, factory(n), rng=RngRegistry(seed),
                         engine=engine)

    sim_split = fresh("fast")
    sim_split.run(max_rounds=7, until="halted", allow_timeout=True)
    split = sim_split.run(max_rounds=60, until="halted", allow_timeout=True)

    sim_whole = fresh("fast-nobatch")
    sim_whole.run(max_rounds=7, until="halted", allow_timeout=True)
    whole = sim_whole.run(max_rounds=60, until="halted", allow_timeout=True)

    assert sim_split._tier_rounds["batch"] > 0
    assert split.outputs == whole.outputs
    assert split.rounds == whole.rounds
    assert split.stop_reason == whole.stop_reason
    assert split.metrics == whole.metrics


def test_build_batch_kernel_declines_prehalted_population():
    nodes = [FloodMax(i, value=i, rounds_bound=5) for i in range(4)]
    nodes[2].halt()
    assert build_batch_kernel(nodes) is None


def test_build_batch_kernel_declines_plain_algorithms():
    from repro.simnet.node import Algorithm

    class Plain(Algorithm):
        def compose(self, ctx):
            return None

        def deliver(self, ctx, inbox):
            self.mark_changed(False)

    assert build_batch_kernel([Plain(i) for i in range(3)]) is None
