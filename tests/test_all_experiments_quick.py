"""Every registered experiment must run end-to-end in quick mode.

This is the harness's integration safety net: each experiment function
produces rows, at least one rendered table or figure, and internally
consistent measurements.  (Full-size runs live in ``benchmarks/``.)
"""

import pytest

from repro.harness import EXPERIMENTS, run_experiment


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
def test_experiment_quick_mode(exp_id):
    result = run_experiment(exp_id, quick=True)
    assert result.exp_id.lower() == exp_id
    assert result.rows, f"{exp_id} produced no rows"
    assert result.tables or result.figures, f"{exp_id} rendered nothing"
    assert result.notes, f"{exp_id} has no interpretation notes"
    # Every row must be a flat dict of scalars (CSV-serialisable).
    for row in result.rows:
        for key, value in row.items():
            assert isinstance(key, str)
            assert value is None or isinstance(
                value, (int, float, str, bool)), (exp_id, key, type(value))


def test_t1_rounds_ordering_quick():
    """Even at quick sizes the headline ordering must hold at max N."""
    result = run_experiment("t1", quick=True)
    n_max = max(r["n"] for r in result.rows)
    at_max = {r["algorithm"]: r["rounds"] for r in result.rows
              if r["n"] == n_max}
    assert (at_max["exact_count_ours"]
            < at_max["token_dissemination_knownN"]
            < at_max["klo_count"])


def test_f3_ours_tracks_d_quick():
    result = run_experiment("f3", quick=True)
    ours = sorted(((r["d"], r["rounds"]) for r in result.rows
                   if r["algorithm"] == "exact_count_ours"))
    # rounds grow with d and stay within the proved bound + margin
    assert ours == sorted(ours)
    for d, rounds in ours:
        assert rounds <= 3 * d + 8


def test_f4_coverage_matches_analytic_quick():
    result = run_experiment("f4", quick=True)
    for row in result.rows:
        assert abs(row["coverage_mc"] - row["coverage_analytic"]) < 0.06


def test_t2_all_correct_quick():
    result = run_experiment("t2", quick=True)
    assert all(r["correct"] for r in result.rows)


def test_x1_ladder_quick():
    result = run_experiment("x1", quick=True)
    n_max = max(r["n"] for r in result.rows)
    at_max = {r["algorithm"]: r["rounds"] for r in result.rows
              if r["n"] == n_max}
    assert (at_max["exact_count_stabilizing"]
            < at_max["hybrid_count_halting_whp"]
            < at_max["klo_halting_deterministic"])
