"""Unit + property tests for the static topology zoo."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.dynamics import (
    StaticAdversary,
    TOPOLOGY_BUILDERS,
    barbell_graph,
    binary_tree_graph,
    build_topology,
    complete_graph,
    dynamic_diameter,
    erdos_renyi_connected,
    grid_graph,
    hypercube_graph,
    line_graph,
    random_regular_expander,
    random_tree_graph,
    ring_graph,
    ring_of_cliques,
    star_graph,
    wheel_graph,
)
from repro.dynamics.verifier import is_connected_spanning


def diameter_of(edges, n):
    return dynamic_diameter(StaticAdversary(n, edges))


class TestShapes:
    def test_line_edge_count_and_diameter(self):
        edges = line_graph(6)
        assert len(edges) == 5
        assert diameter_of(edges, 6) == 5

    def test_single_node_graphs(self):
        assert line_graph(1).shape == (0, 2)
        assert star_graph(1).shape == (0, 2)
        assert binary_tree_graph(1).shape == (0, 2)

    def test_ring(self):
        edges = ring_graph(6)
        assert len(edges) == 6
        assert diameter_of(edges, 6) == 3
        with pytest.raises(ConfigurationError):
            ring_graph(2)

    def test_star_center(self):
        edges = star_graph(5, center=2)
        assert len(edges) == 4
        assert diameter_of(edges, 5) == 2
        with pytest.raises(ConfigurationError):
            star_graph(5, center=5)

    def test_complete(self):
        edges = complete_graph(5)
        assert len(edges) == 10
        assert diameter_of(edges, 5) == 1

    def test_binary_tree_log_diameter(self):
        edges = binary_tree_graph(31)
        assert len(edges) == 30
        assert diameter_of(edges, 31) <= 8

    def test_hypercube(self):
        edges = hypercube_graph(16)
        assert len(edges) == 16 * 4 // 2
        assert diameter_of(edges, 16) == 4
        with pytest.raises(ConfigurationError):
            hypercube_graph(12)

    def test_grid_handles_ragged_n(self):
        for n in [7, 12, 16, 23]:
            edges = grid_graph(n)
            assert is_connected_spanning(edges, n)

    def test_grid_torus_smaller_diameter(self):
        plain = diameter_of(grid_graph(36), 36)
        torus = diameter_of(grid_graph(36, torus=True), 36)
        assert torus <= plain

    def test_barbell(self):
        edges = barbell_graph(10)
        assert diameter_of(edges, 10) == 3
        with pytest.raises(ConfigurationError):
            barbell_graph(3)

    def test_wheel(self):
        edges = wheel_graph(10)
        assert diameter_of(edges, 10) == 2
        with pytest.raises(ConfigurationError):
            wheel_graph(3)

    def test_ring_of_cliques_diameter_sweep(self):
        n = 48
        diam_2 = diameter_of(ring_of_cliques(n, 2), n)
        diam_8 = diameter_of(ring_of_cliques(n, 8), n)
        diam_48 = diameter_of(ring_of_cliques(n, 48), n)
        assert diam_2 < diam_8 < diam_48
        assert diam_48 == n // 2  # degenerates to a ring

    def test_ring_of_cliques_validation(self):
        with pytest.raises(ConfigurationError):
            ring_of_cliques(4, 5)
        assert is_connected_spanning(ring_of_cliques(10, 1), 10)


class TestRandomBuilders:
    def test_random_tree_is_tree(self, rng):
        edges = random_tree_graph(20, rng)
        assert len(edges) == 19
        assert is_connected_spanning(edges, 20)

    def test_er_connected(self, rng):
        edges = erdos_renyi_connected(30, 0.15, rng)
        assert is_connected_spanning(edges, 30)

    def test_er_repairs_sparse(self, rng):
        edges = erdos_renyi_connected(30, 0.001, rng, max_attempts=2)
        assert is_connected_spanning(edges, 30)

    def test_expander_regular_and_connected(self, rng):
        n, k = 40, 4
        edges = random_regular_expander(n, k, rng)
        assert is_connected_spanning(edges, n)
        deg = np.zeros(n, int)
        np.add.at(deg, edges[:, 0], 1)
        np.add.at(deg, edges[:, 1], 1)
        assert deg.max() <= k  # configuration model never exceeds k

    def test_expander_validation(self, rng):
        with pytest.raises(ConfigurationError):
            random_regular_expander(5, 5, rng)
        with pytest.raises(ConfigurationError):
            random_regular_expander(5, 3, rng)  # odd n*degree

    def test_expander_low_diameter(self, rng):
        edges = random_regular_expander(128, 4, rng)
        assert diameter_of(edges, 128) <= 10


class TestRegistry:
    def test_all_builders_produce_connected_graphs(self, rng):
        for name in TOPOLOGY_BUILDERS:
            n = 16
            edges = build_topology(name, n, rng)
            assert is_connected_spanning(edges, n), name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            build_topology("mobius", 8)

    def test_default_rng(self):
        a = build_topology("random_tree", 12)
        b = build_topology("random_tree", 12)
        assert (a == b).all()  # deterministic default


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=40))
    def test_line_always_spanning(self, n):
        assert is_connected_spanning(line_graph(n), n)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=10**6))
    def test_random_tree_always_tree(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = random_tree_graph(n, rng)
        assert len(edges) == n - 1
        assert is_connected_spanning(edges, n)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=30),
           st.integers(min_value=1, max_value=30))
    def test_ring_of_cliques_always_connected(self, n, m):
        if m > n:
            m = n
        edges = ring_of_cliques(n, m)
        assert is_connected_spanning(edges, n)
