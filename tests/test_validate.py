"""Unit tests for the shared validation helpers."""

import pytest

from repro._validate import (
    require_choice,
    require_int_in_range,
    require_node_ids,
    require_nonnegative_int,
    require_positive_float,
    require_positive_int,
    require_probability,
)
from repro.errors import ConfigurationError


class TestRequirePositiveInt:
    def test_accepts_positive(self):
        assert require_positive_int(1, "x") == 1
        assert require_positive_int(10**9, "x") == 10**9

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ConfigurationError, match="x must be >= 1"):
            require_positive_int(0, "x")
        with pytest.raises(ConfigurationError):
            require_positive_int(-3, "x")

    def test_rejects_bool_and_float(self):
        with pytest.raises(ConfigurationError, match="must be an int"):
            require_positive_int(True, "x")
        with pytest.raises(ConfigurationError):
            require_positive_int(1.5, "x")

    def test_error_names_parameter(self):
        with pytest.raises(ConfigurationError, match="widget"):
            require_positive_int(0, "widget")


class TestRequireNonnegativeInt:
    def test_accepts_zero(self):
        assert require_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_nonnegative_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_nonnegative_int(False, "x")


class TestRequireIntInRange:
    def test_bounds_inclusive(self):
        assert require_int_in_range(2, "x", 2, 5) == 2
        assert require_int_in_range(5, "x", 2, 5) == 5

    def test_outside_raises(self):
        with pytest.raises(ConfigurationError, match=r"\[2, 5\]"):
            require_int_in_range(6, "x", 2, 5)
        with pytest.raises(ConfigurationError):
            require_int_in_range(1, "x", 2, 5)


class TestRequireProbability:
    def test_accepts_bounds(self):
        assert require_probability(0.0, "p") == 0.0
        assert require_probability(1.0, "p") == 1.0
        assert require_probability(0.5, "p") == 0.5

    def test_coerces_int(self):
        assert require_probability(1, "p") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            require_probability(1.01, "p")
        with pytest.raises(ConfigurationError):
            require_probability(-0.01, "p")

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            require_probability("half", "p")


class TestRequirePositiveFloat:
    def test_accepts(self):
        assert require_positive_float(0.25, "x") == 0.25
        assert require_positive_float(3, "x") == 3.0

    def test_rejects_zero_negative_inf_nan(self):
        for bad in [0.0, -1.0, float("inf"), float("nan")]:
            with pytest.raises(ConfigurationError):
                require_positive_float(bad, "x")


class TestRequireChoice:
    def test_accepts_member(self):
        assert require_choice("a", "x", ("a", "b")) == "a"

    def test_rejects_nonmember(self):
        with pytest.raises(ConfigurationError, match="'a', 'b'"):
            require_choice("c", "x", ("a", "b"))


class TestRequireNodeIds:
    def test_sorts_and_returns_tuple(self):
        assert require_node_ids([3, 1, 2]) == (1, 2, 3)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            require_node_ids([])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            require_node_ids([1, 1])

    def test_rejects_negative_and_bool(self):
        with pytest.raises(ConfigurationError):
            require_node_ids([-1])
        with pytest.raises(ConfigurationError):
            require_node_ids([True, 2])
