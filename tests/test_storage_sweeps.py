"""Tests for schedule serialization and the sweep utility."""

import os

import numpy as np
import pytest

from repro.core import ExactCount
from repro.errors import ScheduleError
from repro.dynamics import (
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    load_schedule,
    save_schedule,
    verify_t_interval_connectivity,
)
from repro.harness import TrialConfig, aggregate_rows, grid_points, sweep


class TestScheduleStorage:
    def test_roundtrip_bit_identical(self, tmp_path):
        adv = OverlapHandoffAdversary(12, 3, noise_edges=2, seed=5)
        path = save_schedule(adv, horizon=20, path=str(tmp_path / "s.npz"))
        loaded = load_schedule(path)
        assert loaded.num_nodes == 12
        assert loaded.interval == 3
        assert loaded.horizon == 20
        for r in range(1, 21):
            assert (loaded.edges(r) == adv.edges(r)).all(), r

    def test_reloaded_schedule_reverifies(self, tmp_path):
        adv = OverlapHandoffAdversary(10, 2, seed=1)
        path = save_schedule(adv, horizon=16, path=str(tmp_path / "s.npz"))
        ok, _ = verify_t_interval_connectivity(load_schedule(path), 2,
                                               horizon=16)
        assert ok

    def test_not_a_schedule_file(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, x=np.arange(3))
        with pytest.raises(ScheduleError, match="no meta"):
            load_schedule(path)

    def test_appends_npz_suffix(self, tmp_path):
        adv = FreshSpanningAdversary(6, seed=1)
        path = save_schedule(adv, horizon=3, path=str(tmp_path / "plain"))
        assert path.endswith(".npz")
        assert os.path.exists(path)


class TestGridPoints:
    def test_cartesian_product(self):
        points = grid_points({"a": [1, 2], "b": ["x", "y"]})
        assert points == [{"a": 1, "b": "x"}, {"a": 1, "b": "y"},
                          {"a": 2, "b": "x"}, {"a": 2, "b": "y"}]

    def test_empty_grid(self):
        assert grid_points({}) == [{}]

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            grid_points({"a": []})
        with pytest.raises(TypeError):
            grid_points({"a": 5})


class TestSweep:
    def _build(self, point):
        n = point["n"]
        return TrialConfig(
            schedule_factory=lambda seed: FreshSpanningAdversary(
                n, seed=seed),
            node_factory=lambda sched, seed: [ExactCount(i)
                                              for i in range(n)],
            max_rounds=4000, until="quiescent", quiescence_window=32,
            oracle=lambda outputs, sched: all(
                v == sched.num_nodes for v in outputs.values()))

    def test_rows_carry_grid_point_and_seed(self):
        rows = sweep({"n": [8, 12]}, self._build, seeds=[1, 2])
        assert len(rows) == 4
        assert {r["n"] for r in rows} == {8, 12}
        assert all(r["correct"] for r in rows)

    def test_progress_callback(self):
        calls = []
        sweep({"n": [8]}, self._build, seeds=[1, 2],
              progress=lambda point, seed: calls.append((point["n"], seed)))
        assert calls == [(8, 1), (8, 2)]

    def test_aggregate(self):
        rows = sweep({"n": [8]}, self._build, seeds=[1, 2, 3])
        agg = aggregate_rows(rows, group_by=["n"], value="rounds")
        assert len(agg) == 1
        assert agg[0]["replicates"] == 3
        assert agg[0]["rounds_min"] <= agg[0]["rounds_mean"] \
            <= agg[0]["rounds_max"]
