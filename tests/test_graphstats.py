"""Tests for schedule characterisation statistics."""

import pytest

from repro.analysis import (
    characterize,
    degree_stats,
    edge_churn_rate,
    spectral_gap,
)
from repro.dynamics import (
    ExplicitSchedule,
    FreshSpanningAdversary,
    StaticAdversary,
    complete_graph,
    line_graph,
    star_graph,
)


class TestDegreeStats:
    def test_line(self):
        stats = degree_stats(StaticAdversary(10, line_graph(10)))
        assert stats["degree_min"] == 1.0
        assert stats["degree_max"] == 2.0
        assert stats["degree_mean"] == pytest.approx(1.8)

    def test_complete(self):
        stats = degree_stats(StaticAdversary(6, complete_graph(6)))
        assert stats["degree_min"] == stats["degree_max"] == 5.0

    def test_validation(self):
        with pytest.raises(Exception):
            degree_stats(StaticAdversary(4, line_graph(4)), rounds=0)


class TestEdgeChurn:
    def test_static_zero(self):
        assert edge_churn_rate(StaticAdversary(10, line_graph(10))) == 0.0

    def test_fresh_high(self):
        rate = edge_churn_rate(FreshSpanningAdversary(20, seed=1))
        assert rate > 0.7

    def test_alternating_pattern(self):
        a = [(0, 1), (1, 2)]
        b = [(0, 2), (1, 2)]
        sched = ExplicitSchedule(3, [a, b] * 4, cycle=True)
        rate = edge_churn_rate(sched, rounds=8)
        # each transition replaces 1 of 2 edges: Jaccard 1/3, churn 2/3
        assert rate == pytest.approx(2 / 3)

    def test_single_round_zero(self):
        assert edge_churn_rate(StaticAdversary(4, line_graph(4)),
                               rounds=1) == 0.0


class TestSpectralGap:
    def test_complete_largest(self):
        line = spectral_gap(StaticAdversary(12, line_graph(12)))
        star = spectral_gap(StaticAdversary(12, star_graph(12)))
        complete = spectral_gap(StaticAdversary(12, complete_graph(12)))
        assert line < star <= complete + 1e-9

    def test_disconnected_zero(self):
        sched = ExplicitSchedule(4, [[(0, 1), (2, 3)]], cycle=True)
        assert spectral_gap(sched, rounds=2) == 0.0

    def test_isolated_node_zero(self):
        sched = ExplicitSchedule(3, [[(0, 1)]], cycle=True)
        assert spectral_gap(sched, rounds=2) == 0.0

    def test_single_node(self):
        sched = ExplicitSchedule(1, [[]], cycle=True)
        assert spectral_gap(sched) == 0.0


class TestCharacterize:
    def test_full_row(self):
        row = characterize(StaticAdversary(10, line_graph(10)))
        assert row["dynamic_diameter"] == 9.0
        assert row["edge_churn"] == 0.0
        assert "spectral_gap" in row

    def test_diameter_override_and_no_spectral(self):
        row = characterize(StaticAdversary(10, line_graph(10)),
                           include_spectral=False, diameter=42)
        assert row["dynamic_diameter"] == 42.0
        assert "spectral_gap" not in row

    def test_fresh_vs_line_tells_the_story(self):
        """Same degree profile, wildly different diameters — the point of
        d-parameterisation."""
        line = characterize(StaticAdversary(24, line_graph(24)),
                            include_spectral=False)
        fresh = characterize(FreshSpanningAdversary(24, seed=2),
                             include_spectral=False)
        assert abs(line["degree_mean"] - fresh["degree_mean"]) < 0.2
        assert fresh["dynamic_diameter"] < line["dynamic_diameter"] / 2
