"""Tests for the Kuhn–Lynch–Oshman-style k-committee counting baseline."""

import pytest

from repro import RngRegistry, Simulator
from repro.baselines import KCommitteeCount
from repro.baselines.klo import epoch_length, total_rounds_prediction
from repro.dynamics import (
    AlternatingMatchingsAdversary,
    EdgeChurnAdversary,
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    StaticAdversary,
    line_graph,
    random_tree_graph,
    star_graph,
)
import numpy as np


def run_klo(schedule, n, ids=None, seed=1):
    ids = ids if ids is not None else list(range(n))
    nodes = [KCommitteeCount(i) for i in ids]
    sim = Simulator(schedule, nodes, rng=RngRegistry(seed))
    budget = 4 * total_rounds_prediction(n) + 100
    return sim.run(max_rounds=budget)


class TestExactness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 12])
    def test_exact_count_on_static_line(self, n):
        result = run_klo(StaticAdversary(n, line_graph(n)), n)
        assert result.unanimous_output() == n

    @pytest.mark.parametrize("n", [5, 9])
    def test_exact_on_star(self, n):
        result = run_klo(StaticAdversary(n, star_graph(n)), n)
        assert result.unanimous_output() == n

    def test_exact_on_fresh_dynamics(self):
        n = 14
        result = run_klo(FreshSpanningAdversary(n, seed=3), n)
        assert result.unanimous_output() == n

    def test_exact_on_alternating(self):
        n = 11
        result = run_klo(AlternatingMatchingsAdversary(n), n)
        assert result.unanimous_output() == n

    def test_exact_on_churn(self, rng):
        n = 10
        adv = EdgeChurnAdversary(n, random_tree_graph(n, rng), seed=2)
        result = run_klo(adv, n)
        assert result.unanimous_output() == n

    def test_arbitrary_non_contiguous_ids(self):
        n = 9
        ids = [3, 17, 42, 100, 5, 77, 8, 901, 13]
        result = run_klo(FreshSpanningAdversary(n, seed=1), n, ids=ids)
        assert result.unanimous_output() == n


class TestRoundComplexity:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 20])
    def test_rounds_match_closed_form(self, n):
        """The algorithm is deterministic: measured == predicted exactly."""
        result = run_klo(StaticAdversary(n, line_graph(n)), n)
        assert result.rounds == total_rounds_prediction(n)

    def test_rounds_independent_of_topology(self):
        n = 12
        r1 = run_klo(StaticAdversary(n, line_graph(n)), n).rounds
        r2 = run_klo(FreshSpanningAdversary(n, seed=9), n).rounds
        assert r1 == r2

    def test_prediction_quadratic_growth(self):
        small = total_rounds_prediction(16)
        large = total_rounds_prediction(64)
        ratio = large / small
        assert 8 < ratio < 32  # ~16x for 4x n (Theta(n^2))

    def test_epoch_length_components(self):
        assert epoch_length(1, success=False) == 3 + 3
        assert epoch_length(1, success=True) == 3 + 3 + 3
        assert epoch_length(4, success=False) == 48 + 6

    def test_initial_guess_skips_epochs(self):
        assert (total_rounds_prediction(16, initial_guess=16)
                < total_rounds_prediction(16, initial_guess=1))


class TestKnowledgeAssumptions:
    def test_no_n_parameter_needed(self):
        # Constructing a node requires only its id.
        node = KCommitteeCount(5)
        assert node.k == 1
        assert not node.decided

    def test_larger_initial_guess_still_exact(self):
        n = 7
        sched = FreshSpanningAdversary(n, seed=4)
        nodes = [KCommitteeCount(i, initial_guess=4) for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=10_000)
        assert result.unanimous_output() == n


class TestGuessGrowth:
    @pytest.mark.parametrize("growth", [2, 3, 4])
    def test_prediction_matches_simulation(self, growth):
        n = 11
        sched = FreshSpanningAdversary(n, seed=2)
        nodes = [KCommitteeCount(i, guess_growth=growth) for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=30_000)
        assert result.unanimous_output() == n
        assert result.rounds == total_rounds_prediction(n,
                                                        guess_growth=growth)

    def test_growth_below_two_rejected(self):
        with pytest.raises(ValueError):
            KCommitteeCount(0, guess_growth=1)
        with pytest.raises(ValueError):
            total_rounds_prediction(8, guess_growth=1)
