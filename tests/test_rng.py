"""Unit tests for the deterministic RNG registry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simnet.rng import RngRegistry


class TestDeterminism:
    def test_same_seed_same_streams(self):
        a = RngRegistry(7).for_node("sketch", 3).integers(1 << 30, size=8)
        b = RngRegistry(7).for_node("sketch", 3).integers(1 << 30, size=8)
        assert (a == b).all()

    def test_different_seed_different_streams(self):
        a = RngRegistry(7).for_node("sketch", 3).integers(1 << 30, size=8)
        b = RngRegistry(8).for_node("sketch", 3).integers(1 << 30, size=8)
        assert not (a == b).all()

    def test_component_streams_independent_of_each_other(self):
        reg = RngRegistry(7)
        a = reg.for_component("adversary").integers(1 << 30, size=8)
        b = reg.for_component("noise").integers(1 << 30, size=8)
        assert not (a == b).all()

    def test_draw_order_between_components_does_not_matter(self):
        r1 = RngRegistry(3)
        _ = r1.for_component("a").integers(1 << 30, size=100)
        x1 = r1.for_component("b").integers(1 << 30, size=4)
        r2 = RngRegistry(3)
        x2 = r2.for_component("b").integers(1 << 30, size=4)
        assert (x1 == x2).all()


class TestStreams:
    def test_repeated_get_continues_stream(self):
        reg = RngRegistry(1)
        g = reg.for_node("n", 0)
        first = g.integers(1 << 30, size=4)
        again = reg.for_node("n", 0).integers(1 << 30, size=4)
        assert not (first == again).all()  # continued, not restarted

    def test_per_node_independence(self):
        reg = RngRegistry(1)
        a = reg.for_node("n", 0).random(64)
        b = reg.for_node("n", 1).random(64)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5

    def test_spawn_derives_child_registry(self):
        child1 = RngRegistry(5).spawn("phase2")
        child2 = RngRegistry(5).spawn("phase2")
        other = RngRegistry(5).spawn("phase3")
        assert child1.seed == child2.seed
        assert child1.seed != other.seed


class TestValidation:
    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RngRegistry(-1)

    def test_negative_node_id_rejected(self):
        with pytest.raises(ConfigurationError):
            RngRegistry(0).for_node("x", -2)

    def test_seed_property(self):
        assert RngRegistry(42).seed == 42
