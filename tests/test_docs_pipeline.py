"""The generated-docs pipeline: determinism, drift gates, link checking.

``docs/RESULTS.md`` and ``EXPERIMENTS.md`` are build artifacts of the
committed ``results/`` directory; CI's ``make docs-check`` fails when
they drift.  These tests pin the contract locally:

* regeneration from the committed artefacts is byte-identical to the
  committed documents (the golden-docs guarantee);
* the generators are deterministic — two builds produce equal bytes;
* ``--check`` exits 0 in sync and 1 on drift, without writing;
* every relative Markdown link in README/docs resolves.
"""

import os
import subprocess
import sys

import pytest

from repro.harness.report import build_report
from repro.report import build_results_markdown, main as report_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join(REPO_ROOT, "results")


def _read(*parts):
    with open(os.path.join(REPO_ROOT, *parts)) as fh:
        return fh.read()


def test_results_md_matches_committed(monkeypatch):
    # The committed document embeds the relative artefact path in its
    # header (as `make docs` produces it), so regenerate from the root.
    monkeypatch.chdir(REPO_ROOT)
    assert build_results_markdown("results") == _read("docs", "RESULTS.md"), (
        "docs/RESULTS.md drifted from results/ — run `make docs` and "
        "commit the regenerated document")


def test_experiments_md_matches_committed(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert build_report("results") == _read("EXPERIMENTS.md"), (
        "EXPERIMENTS.md drifted from results/ — run `make docs` and "
        "commit the regenerated document")


def test_results_md_generation_is_deterministic():
    assert build_results_markdown(RESULTS) == build_results_markdown(RESULTS)


def test_check_mode_passes_in_sync_and_writes_nothing(tmp_path):
    out = tmp_path / "RESULTS.md"
    out.write_text(build_results_markdown(RESULTS))
    before = out.stat().st_mtime_ns
    code = report_main(["--results", RESULTS, "--out", str(out), "--check"])
    assert code == 0
    assert out.stat().st_mtime_ns == before


def test_check_mode_fails_on_drift(tmp_path, capsys):
    out = tmp_path / "RESULTS.md"
    out.write_text(build_results_markdown(RESULTS) + "tampered\n")
    code = report_main(["--results", RESULTS, "--out", str(out), "--check"])
    assert code == 1
    assert "out of date" in capsys.readouterr().err
    assert out.read_text().endswith("tampered\n")  # nothing rewritten


def test_missing_experiment_renders_placeholder(tmp_path):
    text = build_results_markdown(str(tmp_path))
    assert "not yet run" in text
    # claims degrade to UNKNOWN, never crash, on an empty directory
    assert "UNKNOWN" in text


def test_link_checker_passes_on_repo():
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "check_links.py"),
         REPO_ROOT],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert "all relative links resolve" in proc.stdout


def test_link_checker_catches_dangling_link(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (tmp_path / "README.md").write_text(
        "see [the plan](docs/PLAN.md) and [home](https://example.com)\n")
    (docs / "OK.md").write_text("[back](../README.md)\n")
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "check_links.py"),
         str(tmp_path)],
        capture_output=True, text=True)
    assert proc.returncode == 1
    assert "docs/PLAN.md" in proc.stderr
    assert "example.com" not in proc.stderr  # external links are skipped


@pytest.mark.parametrize("doc", ["RESULTS.md", "OBSERVABILITY.md"])
def test_new_docs_exist_and_are_nonempty(doc):
    text = _read("docs", doc)
    assert len(text) > 1000
