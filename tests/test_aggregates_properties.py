"""Property-based tests: the aggregate laws every Aggregate must satisfy.

Merging partial views in any order, any number of times, must yield the
same result — that is what makes "broadcast your state, merge what you
hear" correct in an adversarial dynamic network.  Hypothesis drives
random states through commutativity / associativity / idempotence, plus
encode/decode round-trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import (
    MaxAggregate,
    MinAggregate,
    MinVectorAggregate,
    OrAggregate,
    SetUnionAggregate,
)
from repro.core.consensus import MinPairAggregate
from repro.core.exact_count import IdSetAggregate

ints = st.integers(min_value=-(10**6), max_value=10**6)
int_sets = st.frozensets(st.integers(min_value=0, max_value=200), max_size=12)
pairs = st.tuples(st.integers(min_value=0, max_value=10**6), ints)


def vectors(width=4):
    return st.lists(
        st.floats(min_value=1e-9, max_value=1e9, allow_nan=False),
        min_size=width, max_size=width,
    ).map(lambda xs: np.asarray(xs, dtype=np.float64))


AGGREGATE_CASES = [
    (MaxAggregate(), ints),
    (MinAggregate(), ints),
    (OrAggregate(), st.booleans()),
    (SetUnionAggregate(), int_sets),
    (IdSetAggregate(), int_sets),
    (MinPairAggregate(), pairs),
    (MinVectorAggregate(4), vectors(4)),
]


@pytest.mark.parametrize("agg,strategy",
                         AGGREGATE_CASES,
                         ids=lambda case: type(case).__name__)
class TestAggregateLaws:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_commutative(self, agg, strategy, data):
        a, b = data.draw(strategy), data.draw(strategy)
        assert agg.equals(agg.merge(a, b), agg.merge(b, a))

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_idempotent(self, agg, strategy, data):
        a = data.draw(strategy)
        assert agg.equals(agg.merge(a, a), a)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_associative(self, agg, strategy, data):
        a, b, c = (data.draw(strategy) for _ in range(3))
        left = agg.merge(agg.merge(a, b), c)
        right = agg.merge(a, agg.merge(b, c))
        assert agg.equals(left, right)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_none_is_identity(self, agg, strategy, data):
        a = data.draw(strategy)
        assert agg.equals(agg.merge(a, None), a)
        assert agg.equals(agg.merge(None, a), a)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_encode_decode_roundtrip(self, agg, strategy, data):
        a = data.draw(strategy)
        assert agg.equals(agg.decode(agg.encode(a)), a)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_merge_of_many_orders_agree(self, agg, strategy, data):
        """Merging a multiset of states in two random orders agrees."""
        states = [data.draw(strategy) for _ in range(5)]
        perm = data.draw(st.permutations(range(5)))

        def fold(order):
            acc = None
            for i in order:
                acc = agg.merge(acc, states[i])
            return acc

        assert agg.equals(fold(range(5)), fold(perm))


class TestMinVectorSpecifics:
    def test_width_validated(self):
        with pytest.raises(ValueError):
            MinVectorAggregate(0)

    def test_decode_rejects_wrong_width(self):
        agg = MinVectorAggregate(3)
        with pytest.raises(ValueError, match="width 3"):
            agg.decode((1.0, 2.0))

    def test_merge_preserves_identity_when_no_improvement(self):
        agg = MinVectorAggregate(2)
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 4.0])
        assert agg.merge(a, b) is a  # cheap change detection contract

    def test_equals_handles_none(self):
        agg = MinVectorAggregate(2)
        assert agg.equals(None, None)
        assert not agg.equals(None, np.zeros(2))


class TestSetUnionSpecifics:
    def test_subset_merge_preserves_identity(self):
        agg = SetUnionAggregate()
        a = frozenset({1, 2, 3})
        assert agg.merge(a, frozenset({2})) is a

    def test_encode_sorted(self):
        agg = SetUnionAggregate()
        assert agg.encode(frozenset({3, 1, 2})) == (1, 2, 3)
