"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import RngRegistry, Simulator
from repro.dynamics import (
    OverlapHandoffAdversary,
    StaticAdversary,
    line_graph,
    random_regular_expander,
)


@pytest.fixture
def rng():
    """A deterministic numpy generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_line():
    """Static 10-node line schedule (d = 9)."""
    return StaticAdversary(10, line_graph(10))


@pytest.fixture
def small_expander(rng):
    """Static 32-node 4-regular expander schedule (small d)."""
    return StaticAdversary(32, random_regular_expander(32, 4, rng))


@pytest.fixture
def handoff_t2():
    """48-node overlap-handoff adversary with T=2."""
    return OverlapHandoffAdversary(48, 2, noise_edges=4, seed=99)


def run_quiescent(schedule, nodes, seed=1, max_rounds=20_000, window=48):
    """Run stabilizing nodes until quiescent; return the RunResult."""
    sim = Simulator(schedule, nodes, rng=RngRegistry(seed))
    return sim.run(max_rounds=max_rounds, until="quiescent",
                   quiescence_window=window)


@pytest.fixture
def quiescent_runner():
    """Expose the helper as a fixture for terser tests."""
    return run_quiescent
