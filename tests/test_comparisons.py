"""Tests for the statistical comparison tooling."""

import numpy as np
import pytest

from repro.analysis import bootstrap_diff_ci, compare, mann_whitney


class TestMannWhitney:
    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(10, 1, 30)
        b = rng.normal(10, 1, 30)
        _, p = mann_whitney(a, b)
        assert p > 0.05

    def test_clearly_different_is_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(10, 1, 30)
        b = rng.normal(20, 1, 30)
        _, p = mann_whitney(a, b)
        assert p < 1e-6

    def test_needs_two_replicates(self):
        with pytest.raises(ValueError, match="at least 2"):
            mann_whitney([1.0], [1.0, 2.0])


class TestBootstrap:
    def test_ci_contains_true_diff(self):
        rng = np.random.default_rng(1)
        a = rng.normal(15, 2, 50)
        b = rng.normal(10, 2, 50)
        lo, hi = bootstrap_diff_ci(a, b, seed=3)
        assert lo < 5.0 < hi + 1.5  # true diff ~5 within/near interval
        assert lo > 0  # clearly positive effect

    def test_seeded_deterministic(self):
        a, b = [1.0, 2.0, 3.0, 4.0], [2.0, 3.0, 4.0, 5.0]
        assert bootstrap_diff_ci(a, b, seed=7) == bootstrap_diff_ci(a, b, seed=7)

    def test_validation(self):
        with pytest.raises(Exception):
            bootstrap_diff_ci([1.0, 2.0], [1.0, 2.0], confidence=2.0)


class TestCompare:
    def test_row_shape(self):
        rng = np.random.default_rng(2)
        cmp = compare(rng.normal(5, 1, 20), rng.normal(8, 1, 20))
        row = cmp.as_row()
        assert row["significant"] is True
        assert cmp.diff == pytest.approx(cmp.mean_a - cmp.mean_b)
        assert cmp.diff_ci_low <= cmp.diff <= cmp.diff_ci_high

    def test_insignificant_close_samples(self):
        cmp = compare([5.0, 6.0, 5.5, 6.5], [5.2, 6.1, 5.4, 6.6])
        assert not cmp.significant
