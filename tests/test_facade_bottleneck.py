"""Tests for the one-call facade, the deterministic token protocol, and
the bandwidth-bottleneck adversary."""

import pytest

from repro import RngRegistry, Simulator
from repro.api import PROBLEMS, SolveResult, solve
from repro.baselines import (
    DeterministicTokenDissemination,
    RandomTokenDissemination,
)
from repro.baselines.token import dissemination_complete
from repro.core import ExactCount
from repro.errors import ConfigurationError, ScheduleError
from repro.dynamics import (
    BottleneckBridgeAdversary,
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    verify_t_interval_connectivity,
)


class TestSolveFacade:
    def net(self, n=40):
        return OverlapHandoffAdversary(n, 2, seed=3)

    def test_count(self):
        res = solve("count", self.net())
        assert res.output == 40
        assert res.decision_round < 40  # O(d), not O(N)
        assert isinstance(res, SolveResult)

    def test_count_approx(self):
        res = solve("count", self.net(), mode="approx", eps=0.5, delta=0.1)
        assert abs(res.output / 40 - 1) < 1.0

    def test_count_known_bound(self):
        res = solve("count", self.net(), mode="known_bound", rounds_bound=39)
        assert res.output == 40
        assert res.rounds_executed == 39

    def test_max_and_consensus(self):
        inputs = [(i * 3) % 17 for i in range(40)]
        assert solve("max", self.net(), inputs=inputs).output == max(inputs)
        assert solve("consensus", self.net(),
                     inputs=[f"p{i}" for i in range(40)]).output == "p0"

    def test_sum_mean_topk_leader(self):
        res = solve("sum", self.net(), inputs=[2.0] * 40, eps=0.25)
        assert abs(res.output / 80 - 1) < 0.6
        res = solve("mean", self.net(), inputs=[3.0] * 40, eps=0.25)
        assert abs(res.output / 3.0 - 1) < 0.8
        res = solve("top_k", self.net(), inputs=list(range(40)), k=2)
        assert res.output == ((39, 39), (38, 38))
        assert solve("leader", self.net()).output == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="needs inputs"):
            solve("max", self.net())
        with pytest.raises(ConfigurationError, match="rounds_bound"):
            solve("count", self.net(), mode="known_bound")
        with pytest.raises(ConfigurationError, match="problem"):
            solve("median", self.net())
        with pytest.raises(ConfigurationError, match="applies to 'count'"):
            solve("max", self.net(), inputs=[0] * 40, mode="approx")
        with pytest.raises(ConfigurationError, match="40 nodes"):
            solve("max", self.net(), inputs=[1, 2, 3])

    def test_str_is_informative(self):
        res = solve("count", self.net())
        assert "decided by round" in str(res)

    def test_problems_constant(self):
        assert "count" in PROBLEMS and "leader" in PROBLEMS


class TestDeterministicToken:
    def test_peek_matches_compose(self):
        node = DeterministicTokenDissemination(5)
        node.tokens.update({2, 9})

        class Ctx:
            round_index = 1
            rng = None

            @staticmethod
            def incr(name, amount=1):
                pass

        for _ in range(6):  # across sweep wrap-around
            predicted = node.peek_broadcast()
            assert int(node.compose(Ctx())) == predicted

    def test_sweep_cycles_through_all_tokens(self):
        node = DeterministicTokenDissemination(1)
        node.tokens.update({3, 7})

        class Ctx:
            round_index = 1
            rng = None

            @staticmethod
            def incr(name, amount=1):
                pass

        sent = [int(node.compose(Ctx())) for _ in range(3)]
        assert sorted(sent) == [1, 3, 7]

    def test_disseminates_and_counts(self):
        n = 24
        sched = FreshSpanningAdversary(n, seed=4)
        nodes = [DeterministicTokenDissemination(i, target_count=n)
                 for i in range(n)]
        result = Simulator(sched, nodes, rng=RngRegistry(2)).run(
            max_rounds=5000, until="decided")
        assert result.unanimous_output() == n


class TestBottleneckBridge:
    def test_validation(self):
        with pytest.raises(ScheduleError):
            BottleneckBridgeAdversary(3, 2)
        with pytest.raises(ScheduleError):
            BottleneckBridgeAdversary(8, 0)

    @pytest.mark.parametrize("T", [1, 2, 4])
    def test_realized_promise(self, T):
        n = 12
        adv = BottleneckBridgeAdversary(n, T)
        nodes = [DeterministicTokenDissemination(i) for i in range(n)]
        res = Simulator(adv, nodes, rng=RngRegistry(1)).run(
            max_rounds=2000,
            stop_when=lambda s: dissemination_complete(s.nodes, n),
            allow_timeout=True)
        ok, bad = verify_t_interval_connectivity(
            adv.to_explicit(), T, horizon=res.rounds, raise_on_failure=False)
        assert ok, f"window {bad}"

    def test_bandwidth_bottleneck_vs_aggregates(self):
        """The headline separation on this instance: token forwarding
        needs Omega(N) rounds despite d = O(1); the aggregate-based core
        still finishes in O(d)."""
        n = 32
        # token forwarding: one token per round crosses the bridge
        adv = BottleneckBridgeAdversary(n, 2)
        nodes = [DeterministicTokenDissemination(i) for i in range(n)]
        res = Simulator(adv, nodes, rng=RngRegistry(1)).run(
            max_rounds=10_000,
            stop_when=lambda s: dissemination_complete(s.nodes, n),
            allow_timeout=True)
        token_rounds = res.rounds
        assert token_rounds >= n  # bridge capacity forces Omega(N)

        # aggregate-based exact count: O(d) on the same instance
        adv2 = BottleneckBridgeAdversary(n, 2)
        nodes2 = [ExactCount(i) for i in range(n)]
        res2 = Simulator(adv2, nodes2, rng=RngRegistry(1)).run(
            max_rounds=10_000, until="quiescent", quiescence_window=32)
        assert res2.unanimous_output() == n
        assert res2.metrics.last_decision_round <= 12
        assert res2.metrics.last_decision_round * 4 < token_rounds
