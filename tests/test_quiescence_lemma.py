"""Network-level property tests of the quiescence lemma.

The soundness lemma behind :mod:`repro.core.termination` (DESIGN.md §2):

    In a dynamic network that is connected every round, where every node
    broadcasts its idempotent-aggregate state every round, if **no**
    node's state changes during a round (after every node has merged its
    own contribution), then all nodes already hold the same state.

Proof shape: disagreement implies a cut with differing states; per-round
connectivity puts an edge across it; the lexicographically "larger" side
changes the other.  These tests drive the *actual* simulator over random
1-interval schedules and check the lemma and its consequences round by
round — the strongest executable statement of why the core algorithms'
final decisions are correct.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import RngRegistry, Simulator
from repro.core import ExactCount, SublinearMax
from repro.dynamics import FreshSpanningAdversary, OverlapHandoffAdversary


def _states(nodes):
    return [node.state for node in nodes]


def _all_equal(states, eq):
    first = states[0]
    return all(eq(first, s) for s in states[1:])


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=24),
       seed=st.integers(min_value=0, max_value=10**6),
       node_seed=st.integers(min_value=0, max_value=10**6))
def test_global_quiet_round_implies_agreement_exact_count(n, seed, node_seed):
    sched = FreshSpanningAdversary(n, seed=seed)
    nodes = [ExactCount(i) for i in range(n)]
    sim = Simulator(sched, nodes, rng=RngRegistry(node_seed))
    agg = nodes[0].aggregate
    for _ in range(3 * n + 8):
        sim.step()
        if all(not node.state_changed for node in nodes):
            assert _all_equal(_states(nodes), agg.equals), \
                "quiet round without global agreement: lemma violated"
    # and the aggregate must in fact have converged by now
    assert _all_equal(_states(nodes), agg.equals)
    assert all(len(node.state) == n for node in nodes)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=24),
       T=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=10**6))
def test_global_quiet_round_implies_agreement_max(n, T, seed):
    sched = OverlapHandoffAdversary(n, T, seed=seed)
    values = [(i * 31 + seed) % 97 for i in range(n)]
    nodes = [SublinearMax(i, values[i]) for i in range(n)]
    sim = Simulator(sched, nodes, rng=RngRegistry(seed + 1))
    agg = nodes[0].aggregate
    for _ in range(3 * n + 8):
        sim.step()
        if all(not node.state_changed for node in nodes):
            assert _all_equal(_states(nodes), agg.equals)
    assert all(node.state == max(values) for node in nodes)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=2, max_value=20),
       seed=st.integers(min_value=0, max_value=10**6))
def test_convergence_within_flood_closure(n, seed):
    """Every node holds the exact global aggregate by round d (flood
    closure) — the convergence half of the stabilization argument."""
    from repro.dynamics import dynamic_diameter

    sched = FreshSpanningAdversary(n, seed=seed)
    d = dynamic_diameter(sched)
    nodes = [ExactCount(i) for i in range(n)]
    sim = Simulator(sched, nodes, rng=RngRegistry(seed))
    for _ in range(max(d, 1)):
        sim.step()
    assert all(node.state is not None and len(node.state) == n
               for node in nodes)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=2, max_value=20),
       seed=st.integers(min_value=0, max_value=10**6))
def test_final_decisions_all_correct_and_unretracted(n, seed):
    """End-to-end stabilizing contract: run well past stabilization, then
    confirm every node decided the exact count and nothing retracts in a
    long tail of extra rounds."""
    sched = FreshSpanningAdversary(n, seed=seed)
    nodes = [ExactCount(i) for i in range(n)]
    sim = Simulator(sched, nodes, rng=RngRegistry(seed))
    for _ in range(6 * n + 64):
        sim.step()
    assert all(node.decided and node.output == n for node in nodes)
    decision_snapshot = {node.node_id: node.output for node in nodes}
    for _ in range(32):  # tail: decisions must not move
        sim.step()
    assert {node.node_id: node.output for node in nodes} == decision_snapshot
