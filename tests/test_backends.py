"""The pluggable backend registry and capability negotiation.

Covers the three layers the backends package introduced:

1. The **fallback matrix**: run features (message loss, tracing, a
   ``stop_when`` predicate, a heterogeneous population, a strict
   CONGEST budget) × engine requests, asserting which tier the
   negotiator engages, that every passed-over tier leaves a structured
   :class:`~repro.simnet.backends.base.CapabilityDiff` in the
   ``engine_tier`` select event, and that the recorded run is
   bit-identical to the unrecorded one.

2. **Third-party registration**: a toy backend plugs in through
   :func:`repro.simnet.backends.register_backend`, executes rounds when
   eligible, and shows up as a structured decline in the observability
   stream when a run poses a requirement it cannot serve.

3. **Process defaults**: the ``REPRO_ENGINE`` environment variable
   always wins over :func:`repro.simnet.engine.set_engine_default`.

4. **Telemetry-column normalization**: recorded rows carry ``obs.*`` /
   ``cache.*`` counters, and the executor's journal + result cache
   strip them so cache hits and fresh runs compare equal.
"""

import pytest

from repro.core.exact_count import ExactCount, ExactCountKnownBound
from repro.dynamics import OverlapHandoffAdversary
from repro.errors import ConfigurationError
from repro.exec.executor import ParallelExecutor
from repro.exec.specs import TrialSpec
from repro.harness.runner import durable_row, run_trial
from repro.obs import Recorder
from repro.obs.recorder import set_events_dir
from repro.simnet import RngRegistry, Simulator, TraceRecorder
from repro.simnet.backends import (
    Capabilities,
    EngineBackend,
    available_engines,
    negotiate,
    register_backend,
    unregister_backend,
)
from repro.simnet.backends.reference import run_reference_round
from repro.simnet.engine import engine_default, set_engine_default

ENGINES = ("fast", "fast-nobatch", "reference")

#: Scenario -> the run feature it poses.  Each is crossed with every
#: engine request below.
SCENARIOS = ("plain", "loss", "trace", "stop_when", "mixed",
             "strict_bandwidth")

#: Requirement name the batch tier must cite when the scenario
#: disqualifies it (None = the batch tier stays eligible).
_BATCH_MISSING = {
    "plain": None,
    "loss": None,  # the batch tier executes lossy runs natively now
    "trace": "trace",
    "stop_when": "stop-when",
    "mixed": "mixed-population",
    "strict_bandwidth": "strict-bandwidth",
}


def _handoff(seed):
    return OverlapHandoffAdversary(18, 3, noise_edges=2, seed=seed)


def _nodes(schedule, mixed=False):
    n = schedule.num_nodes
    if mixed:
        # Interoperable but distinct classes: kernels need one exact class.
        return [ExactCount(i) if i % 2 else ExactCountKnownBound(i, 3 * n)
                for i in range(n)]
    return [ExactCount(i) for i in range(n)]


def _run_scenario(scenario, engine, seed=7, recorder=None):
    schedule = _handoff(seed)
    sim = Simulator(
        schedule,
        _nodes(schedule, mixed=(scenario == "mixed")),
        rng=RngRegistry(seed),
        loss_rate=0.25 if scenario == "loss" else 0.0,
        strict_bandwidth=(scenario == "strict_bandwidth"),
        bandwidth_bits=100_000 if scenario == "strict_bandwidth" else None,
        trace=TraceRecorder() if scenario == "trace" else None,
        engine=engine,
        recorder=recorder,
    )
    stop_when = (lambda s: False) if scenario == "stop_when" else None
    result = sim.run(max_rounds=600, until="quiescent", quiescence_window=16,
                     stop_when=stop_when, allow_timeout=True)
    return sim, result


def _expected_tier(scenario, engine):
    if engine == "reference":
        return "reference"
    if engine == "fast-nobatch":
        return "fast"
    return "batch" if _BATCH_MISSING[scenario] is None else "fast"


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fallback_matrix(scenario, engine):
    recorder = Recorder.in_memory()
    sim, recorded = _run_scenario(scenario, engine, recorder=recorder)

    # 1. The negotiated tier executed every round; the others none.
    expected = _expected_tier(scenario, engine)
    assert sim._tier_rounds[expected] == recorded.rounds
    for tier in ("batch", "fast", "reference"):
        if tier != expected:
            assert sim._tier_rounds[tier] == 0, (
                f"{scenario}/{engine}: unexpected {tier} rounds")

    # 2. Exactly one select event, naming the tier and carrying one
    #    structured diff per declined backend.
    selects = [e for e in recorder.of_kind("engine_tier")
               if e.action == "select"]
    (select,) = selects
    assert select.tier == expected
    if engine == "reference":
        declined = {p["backend"]: p for p in select.declined}
        assert declined["batch"]["detail"] == "engine='reference'"
        assert declined["fast"]["detail"] == "engine='reference'"
    elif engine == "fast-nobatch":
        declined = {p["backend"]: p for p in select.declined}
        assert declined["batch"]["detail"] == "batch kernels disabled"
    elif _BATCH_MISSING[scenario] is None:
        assert select.declined is None
        assert select.reason == "population batch kernel engaged"
    else:
        declined = {p["backend"]: p for p in select.declined}
        assert _BATCH_MISSING[scenario] in declined["batch"]["missing"]
        # The rendered reason and the structured diff agree.
        assert sim._batch_reason in select.reason

    # 3. Recording never changes the measured results.
    _, plain = _run_scenario(scenario, engine)
    assert recorded.outputs == plain.outputs
    assert recorded.rounds == plain.rounds
    assert recorded.stop_reason == plain.stop_reason
    assert recorded.metrics == plain.metrics


@pytest.mark.parametrize("scenario", ["plain", "loss", "stop_when"])
def test_tiers_agree_across_fallback_matrix(scenario):
    """Whatever tier the negotiator picks, results are bit-identical."""
    results = {engine: _run_scenario(scenario, engine)[1]
               for engine in ENGINES}
    ref = results["reference"]
    for engine in ("fast", "fast-nobatch"):
        assert results[engine].outputs == ref.outputs
        assert results[engine].rounds == ref.rounds
        assert results[engine].metrics == ref.metrics


def test_pinning_the_batch_backend_by_name():
    """``engine="batch"`` pins the overlay; the persistent chain backs
    it so the run still has a base tier."""
    sim, result = _run_scenario("plain", "batch")
    assert sim.engine == "fast"  # the persistent tier under the overlay
    assert sim._tier_rounds["batch"] == result.rounds


# --------------------------------------------------------------------------
# third-party registration
# --------------------------------------------------------------------------

class _ToyBackend(EngineBackend):
    """Reference-loop clone that counts its rounds; supports nothing
    beyond a bare run (every capability flag stays False)."""

    name = "toy-loops"
    priority = 45
    capabilities = Capabilities()
    auto_negotiate = False
    overlay = False

    def __init__(self):
        self.rounds = 0

    def run_round(self, sim):
        self.rounds += 1
        run_reference_round(sim)


def test_register_backend_toy_demo():
    toy = register_backend(_ToyBackend())
    try:
        assert "toy-loops" in available_engines()

        # Eligible: pinned by name with no posed requirements, the toy
        # executes every round — and matches the reference loops.
        schedule = _handoff(3)
        sim = Simulator(schedule, _nodes(schedule), rng=RngRegistry(3),
                        engine="toy-loops")
        result = sim.run(max_rounds=600, until="quiescent",
                         quiescence_window=16, allow_timeout=True)
        assert sim.engine == "toy-loops"
        assert sim._tier_rounds["toy-loops"] == result.rounds
        assert toy.rounds == result.rounds
        ref_sim, ref = _run_scenario("plain", "reference", seed=3)
        assert result.outputs == ref.outputs
        assert result.rounds == ref.rounds
        assert result.metrics == ref.metrics

        # Ineligible: a recorder poses a requirement the toy does not
        # declare, so the negotiator declines it with a structured diff
        # and falls through to the persistent chain.
        recorder = Recorder.in_memory()
        schedule = _handoff(3)
        sim = Simulator(schedule, _nodes(schedule), rng=RngRegistry(3),
                        engine="toy-loops", recorder=recorder)
        sim.run(max_rounds=600, until="quiescent", quiescence_window=16,
                allow_timeout=True)
        assert sim.engine == "fast"
        (select,) = [e for e in recorder.of_kind("engine_tier")
                     if e.action == "select"]
        toy_declines = [p for p in select.declined
                        if p["backend"] == "toy-loops"]
        assert toy_declines and "recorder" in toy_declines[0]["missing"]
    finally:
        unregister_backend("toy-loops")
    assert "toy-loops" not in available_engines()


def test_register_backend_rejects_duplicates_and_reserved_names():
    toy = _ToyBackend()
    register_backend(toy)
    try:
        with pytest.raises(ConfigurationError):
            register_backend(_ToyBackend())
        register_backend(_ToyBackend(), replace=True)  # explicit override
    finally:
        unregister_backend("toy-loops")

    class Reserved(_ToyBackend):
        name = "fast-nobatch"

    with pytest.raises(ConfigurationError):
        register_backend(Reserved())

    class Nameless(_ToyBackend):
        name = ""

    with pytest.raises(ConfigurationError):
        register_backend(Nameless())


def test_negotiation_fails_closed_on_unknown_requirement():
    """Unknown requirement names are conservatively unsupported — if no
    backend can serve the run, negotiation raises instead of guessing."""
    with pytest.raises(ConfigurationError):
        negotiate("fast", {"antigravity": "hover the population"})


# --------------------------------------------------------------------------
# process defaults: REPRO_ENGINE always wins
# --------------------------------------------------------------------------

def test_env_var_wins_over_set_engine_default(monkeypatch):
    from repro.simnet import engine as engine_mod

    monkeypatch.setattr(engine_mod, "_ENGINE_DEFAULT", None)
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert engine_default() == "fast"

    set_engine_default("reference")
    assert engine_default() == "reference"

    monkeypatch.setenv("REPRO_ENGINE", "fast-nobatch")
    assert engine_default() == "fast-nobatch"  # env wins

    # Even a later in-process call cannot override the environment …
    set_engine_default("reference")
    assert engine_default() == "fast-nobatch"

    # … but it becomes the default again once the variable is gone.
    monkeypatch.delenv("REPRO_ENGINE")
    assert engine_default() == "reference"


def test_set_engine_default_validates_against_registry(monkeypatch):
    from repro.simnet import engine as engine_mod

    monkeypatch.setattr(engine_mod, "_ENGINE_DEFAULT", None)
    with pytest.raises(ConfigurationError):
        set_engine_default("warp-drive")


# --------------------------------------------------------------------------
# telemetry-column normalization (obs.* / cache.* never enter the cache)
# --------------------------------------------------------------------------

_SPEC = TrialSpec(schedule="lowdiam_handoff",
                  schedule_params={"n": 12, "T": 2},
                  nodes="exact_count", node_params={"n": 12},
                  max_rounds=1000, until="quiescent", quiescence_window=16,
                  oracle="count_exact")


def test_recorded_rows_normalize_to_unrecorded_rows(tmp_path):
    plain_row = run_trial(_SPEC, 4).as_row()
    set_events_dir(str(tmp_path))
    try:
        recorded_row = run_trial(_SPEC, 4).as_row()
    finally:
        set_events_dir(None)
    assert any(k.startswith("obs.") for k in recorded_row)
    assert any(k.startswith("cache.") for k in recorded_row)
    assert not any(k.startswith(("obs.", "cache.")) for k in plain_row)
    assert durable_row(recorded_row) == plain_row
    assert durable_row(plain_row) is plain_row  # clean rows pass through


def test_executor_cache_hits_match_recorded_fresh_rows(tmp_path):
    """A warm rerun serves the stripped row; it must equal the durable
    form of the fresh recorded row (``harness.report --check`` parity)."""
    cells = [(_SPEC, 5)]
    events = tmp_path / "events"
    events.mkdir()
    set_events_dir(str(events))
    try:
        fresh = ParallelExecutor(cache=str(tmp_path / "cache")).run(cells)
        assert fresh.executed == 1
        assert any(k.startswith("obs.") for k in fresh.rows[0])
        warm = ParallelExecutor(cache=str(tmp_path / "cache")).run(cells)
    finally:
        set_events_dir(None)
    assert warm.executed == 0
    assert warm.cache_hits == 1
    assert warm.rows[0] == durable_row(fresh.rows[0])
    assert not any(k.startswith(("phase.", "engine.", "obs.", "cache."))
                   for k in warm.rows[0])
