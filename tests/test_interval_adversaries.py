"""Tests for the oblivious T-interval adversaries: promises, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.dynamics import (
    AlternatingMatchingsAdversary,
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    StableBackboneAdversary,
    StaticAdversary,
    line_graph,
    random_noise_edges,
    verify_t_interval_connectivity,
    window_intersection_edges,
)
from repro.dynamics.verifier import is_connected_spanning


class TestStaticAdversary:
    def test_same_graph_every_round(self):
        adv = StaticAdversary(5, line_graph(5))
        assert (adv.edges(1) == adv.edges(100)).all()

    def test_interval_none_means_every_T(self):
        adv = StaticAdversary(5, line_graph(5))
        for T in [1, 3, 7]:
            ok, _ = verify_t_interval_connectivity(adv, T, horizon=20)
            assert ok


class TestStableBackbone:
    def test_backbone_always_present(self):
        backbone = line_graph(12)
        adv = StableBackboneAdversary(12, backbone, noise_edges=6, seed=1)
        for r in [1, 5, 33]:
            edges = {tuple(e) for e in adv.edges(r)}
            assert all(tuple(e) in edges for e in backbone)

    def test_promise_all_T(self):
        adv = StableBackboneAdversary(12, line_graph(12), noise_edges=6)
        ok, _ = verify_t_interval_connectivity(adv, 5, horizon=30)
        assert ok

    def test_noise_changes_per_round(self):
        adv = StableBackboneAdversary(12, line_graph(12), noise_edges=8, seed=1)
        assert adv.edges(1).tolist() != adv.edges(2).tolist()

    def test_deterministic_replay(self):
        a = StableBackboneAdversary(12, line_graph(12), noise_edges=8, seed=1)
        b = StableBackboneAdversary(12, line_graph(12), noise_edges=8, seed=1)
        assert (a.edges(7) == b.edges(7)).all()


class TestOverlapHandoff:
    @pytest.mark.parametrize("T", [1, 2, 3, 5, 8])
    def test_promise_holds(self, T):
        adv = OverlapHandoffAdversary(20, T, noise_edges=3, seed=4)
        ok, _ = verify_t_interval_connectivity(adv, T, horizon=6 * T + 10)
        assert ok

    def test_windows_use_fresh_backbones(self):
        T = 3
        adv = OverlapHandoffAdversary(30, T, seed=2)
        first = {tuple(e) for e in adv.edges(1)}
        later = {tuple(e) for e in adv.edges(T * 10 + 1)}
        assert first != later

    def test_promise_is_exactly_T_not_much_more(self):
        # Consecutive backbones are independent random trees, so a window
        # of length 3T should (for this seed) have no common spanning
        # subgraph: the adversary really is "only" T-interval connected.
        T = 3
        adv = OverlapHandoffAdversary(30, T, seed=2)
        inter = window_intersection_edges(adv, 1, 3 * T)
        assert not is_connected_spanning(inter, 30)

    def test_deterministic(self):
        a = OverlapHandoffAdversary(16, 4, noise_edges=2, seed=9)
        b = OverlapHandoffAdversary(16, 4, noise_edges=2, seed=9)
        for r in [1, 4, 5, 17]:
            assert (a.edges(r) == b.edges(r)).all()

    def test_custom_backbone_builder(self):
        def builder(n, rng):
            return line_graph(n)

        adv = OverlapHandoffAdversary(10, 2, backbone_builder=builder)
        edges = {tuple(e) for e in adv.edges(1)}
        assert all(tuple(e) in edges for e in line_graph(10))


class TestFreshSpanning:
    def test_every_round_connected(self):
        adv = FreshSpanningAdversary(15, noise_edges=2, seed=3)
        for r in range(1, 12):
            assert is_connected_spanning(adv.edges(r), 15)

    def test_changes_every_round(self):
        adv = FreshSpanningAdversary(15, seed=3)
        assert adv.edges(1).tolist() != adv.edges(2).tolist()

    def test_one_interval_promise(self):
        adv = FreshSpanningAdversary(15, seed=3)
        ok, _ = verify_t_interval_connectivity(adv, 1, horizon=25)
        assert ok


class TestAlternatingMatchings:
    def test_two_interval_promise(self):
        adv = AlternatingMatchingsAdversary(9)
        ok, _ = verify_t_interval_connectivity(adv, 2, horizon=40)
        assert ok

    def test_even_rounds_drop_one_edge(self):
        adv = AlternatingMatchingsAdversary(9)
        assert len(adv.edges(1)) == 9
        assert len(adv.edges(2)) == 8

    def test_requires_three_nodes(self):
        with pytest.raises(ConfigurationError):
            AlternatingMatchingsAdversary(2)


class TestNoiseEdges:
    def test_no_self_loops(self, rng):
        edges = random_noise_edges(10, 200, rng)
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_zero_count(self, rng):
        assert random_noise_edges(10, 0, rng).shape == (0, 2)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=30),
           st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=10**6))
    def test_endpoints_in_range(self, n, count, seed):
        edges = random_noise_edges(n, count, np.random.default_rng(seed))
        if count:
            assert edges.min() >= 0 and edges.max() < n
            assert (edges[:, 0] != edges[:, 1]).all()


class TestPromisePropertyBased:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=16),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=1000))
    def test_handoff_promise_random_params(self, n, T, seed):
        adv = OverlapHandoffAdversary(n, T, noise_edges=seed % 3, seed=seed)
        ok, bad = verify_t_interval_connectivity(
            adv, T, horizon=4 * T + 6, raise_on_failure=False)
        assert ok, f"window at {bad} violated (n={n}, T={T}, seed={seed})"
