"""Golden regression tests: exact values pinned for fixed seeds.

These freeze the observable behaviour of the deterministic pieces (and
the seed-determined behaviour of the randomized ones) so that
refactorings — cache layers, engine changes, aggregate tweaks — cannot
silently alter results.  If a change legitimately alters behaviour, the
goldens must be updated consciously, with the diff explaining why.
"""

import pytest

from repro import RngRegistry, Simulator
from repro.baselines import KCommitteeCount
from repro.baselines.klo import total_rounds_prediction
from repro.core import ApproxCount, ExactCount
from repro.core.sketches import required_width
from repro.dynamics import (
    OverlapHandoffAdversary,
    StaticAdversary,
    dynamic_diameter,
    line_graph,
    ring_of_cliques,
)


class TestDeterministicGoldens:
    def test_klo_prediction_table(self):
        expected = {1: 9, 2: 9, 4: 82, 8: 288, 16: 1082, 32: 4204,
                    64: 16590, 128: 65936}
        for n, rounds in expected.items():
            assert total_rounds_prediction(n) == rounds, n

    def test_schedule_fingerprint(self):
        """First-round edge set of a seeded adversary is frozen."""
        adv = OverlapHandoffAdversary(8, 2, noise_edges=2, seed=42)
        assert adv.edges(1).tolist() == [[0, 2], [0, 4], [0, 6], [1, 6],
                                         [3, 4], [3, 6], [4, 5], [6, 7]]

    def test_dynamic_diameters(self):
        assert dynamic_diameter(StaticAdversary(50, line_graph(50))) == 49
        assert dynamic_diameter(
            StaticAdversary(64, ring_of_cliques(64, 8))) == 9

    def test_required_widths(self):
        assert required_width(0.5, 0.1) == 10
        assert required_width(0.25, 0.1) == 43
        assert required_width(0.1, 0.05) == 385


class TestSeededRunGoldens:
    def test_exact_count_run_fingerprint(self):
        n = 32
        sched = OverlapHandoffAdversary(n, 2, seed=7)
        nodes = [ExactCount(i) for i in range(n)]
        result = Simulator(sched, nodes, rng=RngRegistry(7)).run(
            max_rounds=4000, until="quiescent", quiescence_window=32)
        assert result.unanimous_output() == 32
        assert result.metrics.last_decision_round == 8
        assert result.rounds == 38

    def test_klo_run_fingerprint(self):
        n = 10
        sched = OverlapHandoffAdversary(n, 2, seed=3)
        nodes = [KCommitteeCount(i) for i in range(n)]
        result = Simulator(sched, nodes).run(max_rounds=2000)
        assert result.unanimous_output() == 10
        assert result.rounds == total_rounds_prediction(10) == 1082

    def test_approx_count_estimate_fingerprint(self):
        n = 64
        sched = OverlapHandoffAdversary(n, 2, seed=11)
        nodes = [ApproxCount(i, width=32) for i in range(n)]
        result = Simulator(sched, nodes, rng=RngRegistry(11)).run(
            max_rounds=4000, until="quiescent", quiescence_window=32)
        assert result.unanimous_output() == pytest.approx(
            56.31518094904481, rel=1e-9)
        assert result.metrics.last_decision_round == 9

    def test_node_rng_stream_fingerprint(self):
        gen = RngRegistry(7).for_node("node", 3)
        assert gen.integers(1000, size=4).tolist() == [322, 934, 101, 947]
