"""Tests for the EXPERIMENTS.md generator and smoke tests of the examples."""

import os
import subprocess
import sys

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.io import save_experiment
from repro.harness.report import build_report, main as report_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestReportBuilder:
    def _seed_results(self, tmp_path):
        result = ExperimentResult(
            "T1", "Count scaling demo", rows=[{"n": 8, "rounds": 5}],
            tables={"t1": "algorithm  n\n---  ---\nours  8"})
        save_experiment(result, str(tmp_path))
        return tmp_path

    def test_includes_measured_blocks(self, tmp_path):
        self._seed_results(tmp_path)
        text = build_report(str(tmp_path))
        assert "T1 — Count scaling demo" in text
        assert "algorithm  n" in text
        assert "**Expected.**" in text

    def test_missing_experiments_marked(self, tmp_path):
        self._seed_results(tmp_path)
        text = build_report(str(tmp_path))
        assert "not yet run" in text  # f2..t3 absent

    def test_main_writes_file(self, tmp_path, capsys):
        self._seed_results(tmp_path)
        out = tmp_path / "EXP.md"
        code = report_main([str(tmp_path), str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out


def run_example(name, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "examples", name)],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    """Each example must run to completion and print its key output."""

    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "SublinearMax" in proc.stdout
        assert "KCommitteeCount" in proc.stdout

    def test_adversary_gallery(self):
        proc = run_example("adversary_gallery.py")
        assert proc.returncode == 0, proc.stderr
        assert "adaptive path hider" in proc.stdout
        assert "promise_ok" in proc.stdout

    def test_consensus_under_churn(self):
        proc = run_example("consensus_under_churn.py")
        assert proc.returncode == 0, proc.stderr
        assert "consensus value" in proc.stdout
        assert "plan-0" in proc.stdout

    @pytest.mark.slow
    def test_sensor_swarm_census(self):
        proc = run_example("sensor_swarm_census.py")
        assert proc.returncode == 0, proc.stderr
        assert "census" in proc.stdout

    @pytest.mark.slow
    def test_bandwidth_budget(self):
        proc = run_example("bandwidth_budget.py", timeout=600)
        assert proc.returncode == 0, proc.stderr
        assert "greedy" in proc.stdout
