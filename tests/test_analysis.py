"""Tests for the analysis package: predictors, fits, stats, tables, plots."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    ascii_plot,
    ascii_series,
    crossover_n,
    flood_rounds,
    klo_rounds,
    loglog_slope,
    power_law_fit,
    quiescence_rounds_bound,
    render_markdown,
    render_table,
    rows_to_csv,
    summarize,
    tdm_rounds_bound,
)


class TestPredictors:
    def test_klo_matches_baseline_module(self):
        from repro.baselines.klo import total_rounds_prediction
        assert klo_rounds(20) == total_rounds_prediction(20)

    def test_flood_rounds(self):
        assert flood_rounds(10) == 9
        assert flood_rounds(1) == 1

    def test_quiescence_bound_formula(self):
        assert quiescence_rounds_bound(10) == 10 + 20 + 1
        assert quiescence_rounds_bound(10, growth=4) == 10 + 40 + 1
        assert quiescence_rounds_bound(1, initial_window=8) == 1 + 8 + 1

    def test_tdm_bound(self):
        assert tdm_rounds_bound(5, width=12, words_per_message=3) == 5 * 4 + 4 + 1


class TestCrossover:
    def test_simple_crossing(self):
        f = lambda n: 10 * math.log2(n)
        g = lambda n: float(n)
        x = crossover_n(f, g)
        assert f(x) < g(x)
        assert f(x - 1) >= g(x - 1)

    def test_immediate(self):
        assert crossover_n(lambda n: 0.0, lambda n: 1.0, n_min=3) == 3

    def test_no_crossover_returns_none(self):
        assert crossover_n(lambda n: n + 1.0, lambda n: float(n),
                           n_max=10**4) is None

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            crossover_n(lambda n: 0.0, lambda n: 1.0, n_min=5, n_max=4)


class TestPowerLawFit:
    def test_exact_law_recovered(self):
        xs = [2, 4, 8, 16, 32]
        ys = [3 * x ** 2 for x in xs]
        fit = power_law_fit(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = power_law_fit([1, 2, 4], [5, 10, 20])
        assert fit.predict(8) == pytest.approx(40.0)

    def test_loglog_slope_shortcut(self):
        assert loglog_slope([2, 4], [4, 16]) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            power_law_fit([1], [1])
        with pytest.raises(ValueError, match="positive"):
            power_law_fit([1, 2], [0, 1])
        with pytest.raises(ValueError, match="equal-length"):
            power_law_fit([1, 2], [1, 2, 3])

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-3, max_value=3),
           st.floats(min_value=0.1, max_value=100))
    def test_property_recovers_any_law(self, b, a):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [a * x ** b for x in xs]
        fit = power_law_fit(xs, ys)
        assert fit.exponent == pytest.approx(b, abs=1e-6)


class TestSummarize:
    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0 and s.ci_low == s.ci_high == 5.0

    def test_interval_contains_mean(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.ci_low < s.mean < s.ci_high
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_wider_confidence_wider_interval(self):
        values = [1.0, 2.0, 3.0, 4.0]
        narrow = summarize(values, confidence=0.5)
        wide = summarize(values, confidence=0.99)
        assert wide.ci_high - wide.ci_low > narrow.ci_high - narrow.ci_low

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)

    def test_str_formats(self):
        assert "±" in str(summarize([1.0, 2.0]))
        assert "±" not in str(summarize([1.0]))


class TestTables:
    ROWS = [{"a": 1, "b": "x"}, {"a": 2.5, "b": None}]

    def test_render_table_alignment(self):
        text = render_table(self.ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-" in lines[1]
        assert "2.5" in text and "-" in lines[-1]

    def test_title_and_empty(self):
        assert "T" in render_table([], title="T")
        assert "(no rows)" in render_table([])

    def test_column_selection_and_union(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text
        only_a = render_table(self.ROWS, columns=["a"])
        assert "b" not in only_a.splitlines()[0]

    def test_bool_formatting(self):
        text = render_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_markdown(self):
        md = render_markdown(self.ROWS)
        assert md.splitlines()[0] == "| a | b |"
        assert md.splitlines()[1] == "|---|---|"

    def test_csv_roundtrip(self):
        import csv
        import io

        text = rows_to_csv(self.ROWS)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["a"] == "1"
        assert rows[1]["a"] == "2.5"


class TestAsciiPlot:
    def test_series_glyphs_and_legend(self):
        text = ascii_plot({"one": ([1, 2, 3], [1, 4, 9]),
                           "two": ([1, 2, 3], [2, 3, 4])})
        assert "o=one" in text and "x=two" in text
        assert "o" in text and "x" in text

    def test_log_axes(self):
        text = ascii_plot({"s": ([1, 10, 100], [1, 100, 10000])},
                          logx=True, logy=True)
        assert "log" in text

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_plot({"s": ([0, 1], [1, 2])}, logx=True)

    def test_single_point_ok(self):
        text = ascii_series([5], [7])
        assert "o" in text

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            ascii_plot({})
        with pytest.raises(ValueError, match="lengths differ"):
            ascii_plot({"s": ([1, 2], [1])})
        with pytest.raises(ValueError, match="at most"):
            ascii_plot({str(i): ([1], [1]) for i in range(9)})

    def test_title_present(self):
        assert ascii_series([1, 2], [1, 2], title="Ttl").startswith("Ttl")

    def test_dimensions(self):
        text = ascii_plot({"s": ([1, 2], [3, 4])}, width=30, height=8)
        plot_lines = [l for l in text.splitlines() if "|" in l]
        assert len(plot_lines) == 8
