"""Tests for the message-loss extension (engine loss_rate)."""

import pytest

from repro import RngRegistry, Simulator
from repro.core import ExactCount, ExactCountKnownBound, SublinearMax
from repro.errors import ConfigurationError
from repro.dynamics import (
    OverlapHandoffAdversary,
    StaticAdversary,
    complete_graph,
    dynamic_diameter,
)
from repro.simnet.node import Algorithm


class CountInbox(Algorithm):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = 0

    def compose(self, ctx):
        return 1

    def deliver(self, ctx, inbox):
        self.received += len(inbox)


class TestLossMechanics:
    def test_zero_loss_delivers_everything(self):
        n = 8
        sched = StaticAdversary(n, complete_graph(n))
        nodes = [CountInbox(i) for i in range(n)]
        sim = Simulator(sched, nodes, rng=RngRegistry(1), loss_rate=0.0)
        for _ in range(5):
            sim.step()
        assert all(node.received == 5 * (n - 1) for node in nodes)

    def test_loss_drops_roughly_the_rate(self):
        n = 10
        sched = StaticAdversary(n, complete_graph(n))
        nodes = [CountInbox(i) for i in range(n)]
        rate = 0.4
        rounds = 40
        sim = Simulator(sched, nodes, rng=RngRegistry(1), loss_rate=rate)
        for _ in range(rounds):
            sim.step()
        total = sum(node.received for node in nodes)
        expected = rounds * n * (n - 1) * (1 - rate)
        assert abs(total / expected - 1) < 0.1
        lost = sim.metrics.snapshot().counters["messages_lost"]
        assert total + lost == rounds * n * (n - 1)

    def test_loss_is_seeded_deterministic(self):
        def run(seed):
            n = 8
            sched = StaticAdversary(n, complete_graph(n))
            nodes = [CountInbox(i) for i in range(n)]
            sim = Simulator(sched, nodes, rng=RngRegistry(seed),
                            loss_rate=0.5)
            for _ in range(10):
                sim.step()
            return [node.received for node in nodes]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_validation(self):
        n = 4
        sched = StaticAdversary(n, complete_graph(n))
        nodes = [CountInbox(i) for i in range(n)]
        with pytest.raises(ConfigurationError, match="loss_rate"):
            Simulator(sched, nodes, loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            Simulator(sched, nodes, loss_rate=-0.1)


class TestAlgorithmsUnderLoss:
    def test_stabilizing_stays_exact(self):
        n = 48
        sched = OverlapHandoffAdversary(n, 2, seed=1)
        for loss in [0.3, 0.7]:
            nodes = [ExactCount(i) for i in range(n)]
            result = Simulator(sched, nodes, rng=RngRegistry(5),
                               loss_rate=loss).run(
                max_rounds=40_000, until="quiescent",
                quiescence_window=128)
            assert result.unanimous_output() == n, loss

    def test_stabilizing_max_stays_exact(self):
        n = 32
        sched = OverlapHandoffAdversary(n, 2, seed=2)
        nodes = [SublinearMax(i, (i * 5) % 61) for i in range(n)]
        result = Simulator(sched, nodes, rng=RngRegistry(5),
                           loss_rate=0.5).run(
            max_rounds=40_000, until="quiescent", quiescence_window=128)
        assert result.unanimous_output() == max((i * 5) % 61
                                                for i in range(n))

    def test_rounds_degrade_with_loss(self):
        n = 48
        sched = OverlapHandoffAdversary(n, 2, seed=1)

        def rounds(loss):
            nodes = [ExactCount(i) for i in range(n)]
            result = Simulator(sched, nodes, rng=RngRegistry(5),
                               loss_rate=loss).run(
                max_rounds=40_000, until="quiescent",
                quiescence_window=128)
            return result.metrics.last_decision_round

        assert rounds(0.0) < rounds(0.7)

    def test_known_bound_breaks_under_heavy_loss(self):
        """The documented hazard: a bound valid for the promised graphs
        is not valid for their lossy subgraphs."""
        n = 64
        sched = OverlapHandoffAdversary(n, 2, seed=1)
        d = dynamic_diameter(sched)
        nodes = [ExactCountKnownBound(i, rounds_bound=d) for i in range(n)]
        result = Simulator(sched, nodes, rng=RngRegistry(3),
                           loss_rate=0.6).run(max_rounds=d + 1)
        assert any(v != n for v in result.outputs.values())
