"""Cross-product smoke matrix: every facade problem on every adversary.

The broadest integration net in the suite: any regression in any layer
(engine, schedule, aggregate, controller, facade) that breaks
correctness on any adversary fails a specific, named cell.
"""

import numpy as np
import pytest

from repro.api import solve
from repro.dynamics import (
    AlternatingMatchingsAdversary,
    EdgeChurnAdversary,
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    RepairedMobilityAdversary,
    StaticAdversary,
    dilate,
    random_tree_graph,
    ring_of_cliques,
)

N = 20


def adversaries():
    rng = np.random.default_rng(11)
    return {
        "static_roc": StaticAdversary(N, ring_of_cliques(N, 4)),
        "fresh": FreshSpanningAdversary(N, seed=1),
        "handoff_T3": OverlapHandoffAdversary(N, 3, seed=1),
        "alternating": AlternatingMatchingsAdversary(N),
        "churn": EdgeChurnAdversary(N, random_tree_graph(N, rng), seed=1),
        "mobility": RepairedMobilityAdversary(N, T=2, seed=1),
        "dilated_fresh": dilate(FreshSpanningAdversary(N, seed=2), 3),
    }


VALUES = [(i * 13) % 47 for i in range(N)]


def expected(problem):
    if problem == "count":
        return N
    if problem == "max":
        return max(VALUES)
    if problem == "consensus":
        return "p0"
    if problem == "top_k":
        return tuple(sorted(((VALUES[i], i) for i in range(N)),
                            reverse=True)[:2])
    if problem == "leader":
        return 0
    raise AssertionError(problem)


@pytest.mark.parametrize("adv_name", sorted(adversaries()))
@pytest.mark.parametrize("problem",
                         ["count", "max", "consensus", "top_k", "leader"])
def test_problem_on_adversary(problem, adv_name):
    schedule = adversaries()[adv_name]
    kwargs = {}
    if problem in ("max", "top_k"):
        kwargs["inputs"] = VALUES
    elif problem == "consensus":
        kwargs["inputs"] = [f"p{i}" for i in range(N)]
    if problem == "top_k":
        kwargs["k"] = 2
    result = solve(problem, schedule, seed=3, **kwargs)
    assert result.output == expected(problem), (problem, adv_name)
