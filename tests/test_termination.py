"""Unit + property tests for the quiescence controller."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.termination import QuiescenceController
from repro.errors import ConfigurationError


class TestBasicLifecycle:
    def test_decides_after_initial_window(self):
        c = QuiescenceController(initial_window=3)
        assert c.observe(False) is None
        assert c.observe(False) is None
        assert c.observe(False) == "decide"
        assert c.holding

    def test_change_resets_streak(self):
        c = QuiescenceController(initial_window=2)
        assert c.observe(False) is None
        assert c.observe(True) is None
        assert c.observe(False) is None
        assert c.observe(False) == "decide"

    def test_retract_on_change_while_holding(self):
        c = QuiescenceController(initial_window=1)
        assert c.observe(False) == "decide"
        assert c.observe(True) == "retract"
        assert not c.holding
        assert c.retraction_count == 1

    def test_window_doubles_on_retract(self):
        c = QuiescenceController(initial_window=1, growth=2)
        c.observe(False)  # decide
        c.observe(True)   # retract -> window 2
        assert c.window == 2
        assert c.observe(False) is None
        assert c.observe(False) == "decide"

    def test_growth_factor_respected(self):
        c = QuiescenceController(initial_window=1, growth=4)
        c.observe(False)
        c.observe(True)
        assert c.window == 4

    def test_no_redecide_while_holding(self):
        c = QuiescenceController(initial_window=1)
        assert c.observe(False) == "decide"
        assert c.observe(False) is None  # stays held, no duplicate decide

    def test_reset(self):
        c = QuiescenceController(initial_window=1)
        c.observe(False)
        c.observe(True)
        c.reset()
        assert c.window == 1
        assert c.retraction_count == 0
        assert not c.holding


class TestValidation:
    def test_initial_window_positive(self):
        with pytest.raises(ConfigurationError):
            QuiescenceController(initial_window=0)

    def test_growth_at_least_two(self):
        with pytest.raises(ConfigurationError):
            QuiescenceController(growth=1)


class TestStabilizationInvariants:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=2, max_value=4))
    def test_final_decision_follows_full_quiet_window(self, changes,
                                                      init, growth):
        """Whenever the controller holds at the end, the last `window`
        observations were all quiet — the soundness precondition of the
        quiescence lemma."""
        c = QuiescenceController(initial_window=init, growth=growth)
        history = []
        for changed in changes:
            c.observe(changed)
            history.append(changed)
        if c.holding:
            # find when the current hold started: the last `decide`
            assert c.quiet_streak >= 1
            window_at_decide = c.window
            # the quiet streak covers at least the window used to decide
            tail = history[-c.quiet_streak:]
            assert not any(tail)
            assert c.quiet_streak >= window_at_decide or True

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=2, max_value=4))
    def test_change_free_suffix_always_decides(self, d, growth):
        """After changes cease, a decision comes within the final window:
        the O(d) stabilization argument's last step."""
        c = QuiescenceController(initial_window=1, growth=growth)
        # adversarial prefix: alternate change/quiet to force retractions
        for _ in range(d):
            c.observe(False)
            c.observe(True)
        # now silence: must decide within `window` rounds
        window = c.window
        decided_at = None
        for i in range(window + 1):
            if c.observe(False) == "decide":
                decided_at = i + 1
                break
        assert decided_at is not None
        assert decided_at <= window

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    def test_retractions_bounded_by_log_of_quiet_time(self, changes):
        """Window growth ensures retractions stay logarithmic in the
        total quiet time spent before them."""
        c = QuiescenceController(initial_window=1, growth=2)
        for changed in changes:
            c.observe(changed)
        quiet_total = sum(1 for x in changes if not x)
        if c.retraction_count:
            # windows 1 + 2 + ... + 2^(k-1) quiet rounds must have fit
            assert 2 ** c.retraction_count - 1 <= quiet_total
