"""Golden equivalence: every engine tier is observably identical to the
reference engine.

The engine now has **three** dispatch tiers (see
:mod:`repro.simnet.batch`): batch kernels (``engine="fast"``, the
default, when the population provides one), the per-node fast path
(``engine="fast-nobatch"``), and the reference loops
(``engine="reference"``).  All three must produce **byte-identical**
results across topologies × algorithms × loss rates: same outputs, same
round counts, same stop reason, same metric counters, same trace event
stream, and the same RNG consumption.  These tests are the contract
that lets every experiment run on the fastest available tier while the
reference loops remain the executable specification.

Also covered here: the CSR adjacency construction itself (against a
naive reference), the interval-aware cache (object identity across
stable windows, content-fingerprint dedup across windows), the
``stable_until`` promise of every adversary, the bounded bit-size
cache, and the per-phase profiling surface.
"""

import dataclasses

import numpy as np
import pytest

from repro.dynamics import (
    AlternatingMatchingsAdversary,
    EdgeChurnAdversary,
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    RepairedMobilityAdversary,
    StaticAdversary,
    build_csr,
    line_graph,
)
from repro.dynamics.schedule import STABLE_FOREVER
from repro.core.exact_count import ExactCount
from repro.exec.executor import ParallelExecutor
from repro.exec.specs import TrialSpec
from repro.harness.runner import phase_totals, reset_phase_totals, run_trial
from repro.simnet import RngRegistry, Simulator, TraceRecorder
from repro.simnet.engine import PHASES


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------

#: All three dispatch tiers, pinned explicitly (never the process default).
ENGINES = ("fast", "fast-nobatch", "reference")


def _run_all(spec: TrialSpec, seed: int):
    """Run one spec under every engine tier, keyed by engine name."""
    results = {}
    for engine in ENGINES:
        config = spec.to_config()
        config.engine = engine
        results[engine] = run_trial(config, seed)
    return results


def _sim(schedule_factory, seed, *, engine, loss_rate=0.0, trace=None):
    schedule = schedule_factory(seed)
    nodes = [ExactCount(i) for i in range(schedule.num_nodes)]
    return Simulator(schedule, nodes, rng=RngRegistry(seed),
                     loss_rate=loss_rate, engine=engine, trace=trace)


def _assert_run_results_equal(fast, ref):
    """Field-by-field comparison of two RunResults (clear failure output)."""
    assert fast.outputs == ref.outputs
    assert fast.rounds == ref.rounds
    assert fast.stop_reason == ref.stop_reason
    fm, rm = fast.metrics, ref.metrics
    assert fm.rounds == rm.rounds
    assert fm.broadcasts == rm.broadcasts
    assert fm.delivered_messages == rm.delivered_messages
    assert fm.broadcast_bits == rm.broadcast_bits
    assert fm.delivered_bits == rm.delivered_bits
    assert fm.first_decision_round == rm.first_decision_round
    assert fm.last_decision_round == rm.last_decision_round
    assert dict(fm.decision_rounds) == dict(rm.decision_rounds)
    assert dict(fm.counters) == dict(rm.counters)
    assert fm == rm  # catches any field this list falls behind on


# --------------------------------------------------------------------------
# the equivalence grid: topologies × algorithms
# --------------------------------------------------------------------------

GRID = [
    pytest.param(spec, id=label)
    for label, spec in [
        ("exact_count/lowdiam_T3", TrialSpec(
            schedule="lowdiam_handoff", schedule_params={"n": 24, "T": 3},
            nodes="exact_count", node_params={"n": 24},
            max_rounds=3000, until="quiescent", quiescence_window=32,
            oracle="count_exact")),
        ("exact_count/fresh_spanning", TrialSpec(
            schedule="fresh_spanning",
            schedule_params={"n": 16, "noise_edges": 2},
            nodes="exact_count", node_params={"n": 16},
            max_rounds=3000, until="quiescent", quiescence_window=32,
            oracle="count_exact")),
        ("approx_count/overlap_T4", TrialSpec(
            schedule="overlap_handoff",
            schedule_params={"n": 16, "T": 4, "noise_edges": 2},
            nodes="approx_count",
            node_params={"n": 16, "eps": 0.25, "delta": 0.05},
            max_rounds=3000, until="quiescent", quiescence_window=32,
            oracle="count_approx", oracle_params={"eps": 0.25})),
        ("hybrid_count/repaired_mobility", TrialSpec(
            schedule="repaired_mobility", schedule_params={"n": 12, "T": 2},
            nodes="hybrid_count", node_params={"n": 12},
            max_rounds=3000, until="quiescent", quiescence_window=32,
            allow_timeout=True)),
        ("max/static_line", TrialSpec(
            schedule="static_line", schedule_params={"n": 16},
            nodes="sublinear_max_modvalue", node_params={"n": 16},
            max_rounds=4000, until="quiescent", quiescence_window=32,
            oracle="max_modvalue")),
        ("token/lowdiam_T2", TrialSpec(
            schedule="lowdiam_handoff", schedule_params={"n": 16, "T": 2},
            nodes="token_dissemination",
            node_params={"n": 16, "known_count": True},
            max_rounds=1200, until="decided", oracle="count_exact")),
        ("klo/lowdiam_T2", TrialSpec(
            schedule="lowdiam_handoff", schedule_params={"n": 8, "T": 2},
            nodes="klo_count", node_params={"n": 8},
            max_rounds=4000, until="halted", oracle="count_exact")),
        ("pipelined_exact/windowed_throttle", TrialSpec(
            schedule="windowed_throttle", schedule_params={"n": 12, "T": 3},
            nodes="pipelined_exact_count",
            node_params={"n": 12, "ids_per_message": 4},
            max_rounds=4000, until="quiescent", quiescence_window=32,
            allow_timeout=True)),
        ("exact_count/alternating", TrialSpec(
            schedule="alternating_matchings", schedule_params={"n": 10},
            nodes="exact_count", node_params={"n": 10},
            max_rounds=4000, until="quiescent", quiescence_window=32,
            allow_timeout=True)),
    ]
]


@pytest.mark.parametrize("spec", GRID)
@pytest.mark.parametrize("seed", [3, 11])
def test_engine_tiers_match_across_grid(spec, seed):
    results = _run_all(spec, seed)
    ref = results["reference"]
    for engine in ENGINES[:-1]:
        # TrialResult is a frozen dataclass: full equality.
        assert results[engine] == ref, f"{engine} diverges from reference"
    if spec.oracle is not None:
        assert ref.correct is True


@pytest.mark.parametrize("loss_rate", [0.1, 0.3])
@pytest.mark.parametrize("seed", [5, 19])
def test_fast_matches_reference_under_loss(loss_rate, seed):
    """Loss draws consume the shared stream in the identical order.

    The batch tier executes lossy runs natively (its vectorised
    per-edge keep mask consumes the shared loss stream bit-identically
    to the per-receiver draws), so under ``engine="fast"`` it must
    engage — and still match the reference loops exactly.
    """
    def factory(s):
        return OverlapHandoffAdversary(20, 2, noise_edges=2, seed=s)

    results = {}
    for engine in ENGINES:
        sim = _sim(factory, seed, engine=engine, loss_rate=loss_rate)
        results[engine] = sim.run(max_rounds=4000, until="quiescent",
                                  quiescence_window=32, allow_timeout=True)
        if engine == "fast":
            assert sim._tier_rounds["batch"] == results[engine].rounds
        else:
            assert sim._tier_rounds["batch"] == 0
    _assert_run_results_equal(results["fast"], results["reference"])
    _assert_run_results_equal(results["fast-nobatch"], results["reference"])
    assert results["fast"].metrics.counters.get("messages_lost", 0) > 0


@pytest.mark.parametrize("seed", [7])
def test_trace_event_streams_identical(seed):
    """Round/broadcast/decide/retract/halt events match, in order."""
    def factory(s):
        return OverlapHandoffAdversary(16, 2, noise_edges=1, seed=s)

    traces = {}
    for engine in ENGINES:
        trace = TraceRecorder()
        sim = _sim(factory, seed, engine=engine, trace=trace)
        sim.run(max_rounds=2000, until="quiescent", quiescence_window=16)
        # Tracing needs per-broadcast events; batch tier must stand down.
        assert sim._tier_rounds["batch"] == 0
        traces[engine] = list(trace.events)
    assert traces["fast"] == traces["reference"]
    assert traces["fast-nobatch"] == traces["reference"]


def test_minimal_schedule_falls_back_to_reference():
    """A duck-typed schedule without ``adjacency`` still runs (reference)."""
    class Minimal:
        num_nodes = 6

        def neighbors(self, round_index):
            base = line_graph(6)
            out = [[] for _ in range(6)]
            for u, v in base:
                out[u].append(v)
                out[v].append(u)
            return out

    nodes = [ExactCount(i) for i in range(6)]
    sim = Simulator(Minimal(), nodes, rng=RngRegistry(0), engine="fast")
    assert sim.engine == "reference"
    result = sim.run(max_rounds=500, until="quiescent", quiescence_window=16)
    assert result.outputs == {i: 6 for i in range(6)}


# --------------------------------------------------------------------------
# batch-kernel tier: dispatch rules and direct-Simulator equivalence
# --------------------------------------------------------------------------

def _handoff(seed):
    return OverlapHandoffAdversary(20, 4, noise_edges=2, seed=seed)


def test_batch_tier_engages_on_eligible_run():
    """The default engine runs every round on the batch tier when the
    population provides a kernel and nothing disqualifies the run."""
    sim = _sim(_handoff, 5, engine="fast")
    result = sim.run(max_rounds=2000, until="quiescent",
                     quiescence_window=32)
    assert sim._tier_rounds["batch"] == result.rounds
    assert sim._tier_rounds["fast"] == 0
    assert sim._tier_rounds["reference"] == 0


def test_fast_nobatch_disables_batch_tier():
    sim = _sim(_handoff, 5, engine="fast-nobatch")
    result = sim.run(max_rounds=2000, until="quiescent",
                     quiescence_window=32)
    assert sim.engine == "fast"
    assert sim.batch_kernels is False
    assert sim._tier_rounds["batch"] == 0
    assert sim._tier_rounds["fast"] == result.rounds


def test_stop_when_predicate_disables_batch_tier():
    """An oracle stop predicate may inspect per-round node state, so the
    batch tier stands down — and results still match the reference."""
    results = {}
    for engine in ENGINES:
        sim = _sim(_handoff, 9, engine=engine)
        results[engine] = sim.run(
            max_rounds=2000, until="quiescent", quiescence_window=32,
            stop_when=lambda s: False)
        assert sim._tier_rounds["batch"] == 0
    _assert_run_results_equal(results["fast"], results["reference"])


def test_mixed_population_disables_batch_tier():
    """Kernels require a homogeneous population of one exact class.

    ExactCount and ExactCountKnownBound interoperate (both fold id-set
    unions) but are distinct classes, so the batch tier must stand down.
    """
    from repro.core.exact_count import ExactCountKnownBound

    schedule = _handoff(3)
    n = schedule.num_nodes
    nodes = [ExactCount(i) if i % 2 else ExactCountKnownBound(i, 3 * n)
             for i in range(n)]
    sim = Simulator(schedule, nodes, rng=RngRegistry(3), engine="fast")
    sim.run(max_rounds=500, until="quiescent", quiescence_window=16,
            allow_timeout=True)
    assert sim._tier_rounds["batch"] == 0
    assert sim._tier_rounds["fast"] > 0


@pytest.mark.parametrize("seed", [2, 13])
def test_flood_max_three_way_equivalence(seed):
    """flood_max has no exec spec; compare the tiers via direct Simulators."""
    from repro.baselines.flooding import FloodMax

    results = {}
    for engine in ENGINES:
        schedule = _handoff(seed)
        n = schedule.num_nodes
        nodes = [FloodMax(i, value=(i * 7919) % 1023, rounds_bound=n - 1)
                 for i in range(n)]
        sim = Simulator(schedule, nodes, rng=RngRegistry(seed),
                        engine=engine)
        results[engine] = sim.run(max_rounds=4000, until="halted")
        if engine == "fast":
            assert sim._tier_rounds["batch"] > 0
    _assert_run_results_equal(results["fast"], results["reference"])
    _assert_run_results_equal(results["fast-nobatch"], results["reference"])


@pytest.mark.parametrize("seed", [2, 13])
def test_flood_broadcast_three_way_equivalence(seed):
    from repro.baselines.flooding import FloodBroadcast

    results = {}
    for engine in ENGINES:
        schedule = _handoff(seed)
        n = schedule.num_nodes
        nodes = [FloodBroadcast(i, rounds_bound=n - 1,
                                payload=("tok", i) if i in (0, 3) else None)
                 for i in range(n)]
        sim = Simulator(schedule, nodes, rng=RngRegistry(seed),
                        engine=engine)
        results[engine] = sim.run(max_rounds=4000, until="halted")
        if engine == "fast":
            assert sim._tier_rounds["batch"] > 0
    _assert_run_results_equal(results["fast"], results["reference"])
    _assert_run_results_equal(results["fast-nobatch"], results["reference"])


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_stats_only_present_when_profiled(engine):
    """Unprofiled RunResults stay byte-comparable across tiers: the
    per-tier round counts appear only under ``profile=True``."""
    sim = _sim(_handoff, 4, engine=engine)
    result = sim.run(max_rounds=1000, until="quiescent",
                     quiescence_window=16)
    assert result.metrics.engine_stats is None
    assert not any(k.startswith("engine.")
                   for k in result.metrics.as_dict())

    sim = Simulator(_handoff(4), [ExactCount(i) for i in range(20)],
                    rng=RngRegistry(4), engine=engine, profile=True)
    result = sim.run(max_rounds=1000, until="quiescent",
                     quiescence_window=16)
    stats = result.metrics.engine_stats
    assert stats is not None
    assert set(stats) == {"batch", "fast", "reference"}
    assert sum(stats.values()) == result.rounds
    flat = result.metrics.as_dict()
    for tier in ("batch", "fast", "reference"):
        assert f"engine.{tier}_rounds" in flat


# --------------------------------------------------------------------------
# CSR adjacency and the interval-aware cache
# --------------------------------------------------------------------------

def _naive_neighbors(edge_arr, n):
    out = [[] for _ in range(n)]
    for u, v in edge_arr.tolist():
        out[u].append(v)
        out[v].append(u)
    return [sorted(nbrs) for nbrs in out]


@pytest.mark.parametrize("factory", [
    lambda: OverlapHandoffAdversary(18, 3, noise_edges=2, seed=4),
    lambda: FreshSpanningAdversary(15, noise_edges=1, seed=4),
    lambda: AlternatingMatchingsAdversary(12),
    lambda: EdgeChurnAdversary(14, line_graph(14), dwell=3, seed=4),
    lambda: StaticAdversary(10, line_graph(10)),
    lambda: RepairedMobilityAdversary(12, T=2, seed=4),
])
def test_csr_matches_naive_adjacency(factory):
    schedule = factory()
    n = schedule.num_nodes
    for r in range(1, 13):
        csr = schedule.adjacency(r)
        expected = _naive_neighbors(schedule.edges(r), n)
        assert csr.neighbor_lists() == expected
        assert csr.degree_list() == [len(nbrs) for nbrs in expected]
        # legacy surface stays consistent with the CSR
        legacy = schedule.neighbors(r)
        assert [list(map(int, row)) for row in legacy] == expected


def test_build_csr_empty_graph():
    csr = build_csr(np.empty((0, 2), dtype=np.int64), 5)
    assert csr.neighbor_lists() == [[], [], [], [], []]
    assert csr.num_edges == 0


def test_stable_window_shares_one_csr_object():
    """Rounds 2..T of a stable window reuse the same CSR build."""
    schedule = OverlapHandoffAdversary(16, 4, noise_edges=0, seed=1)
    # window rounds: 1 (handoff union), then 2..4 stable
    a2 = schedule.adjacency(2)
    assert schedule.adjacency(3) is a2
    assert schedule.adjacency(4) is a2
    assert schedule.adjacency(5) is not a2  # next window's handoff round


def test_fingerprint_dedupes_repeating_graphs():
    """Identical graphs in different rounds share one cached CSR."""
    from repro.dynamics import ExplicitSchedule

    ga = [(0, 1), (1, 2)]
    gb = [(0, 2)]
    schedule = ExplicitSchedule(3, [ga, gb, ga, gb], cycle=True)
    assert schedule.adjacency(1) is schedule.adjacency(3)
    assert schedule.adjacency(2) is schedule.adjacency(4)
    assert schedule.adjacency(1) is not schedule.adjacency(2)
    # AlternatingMatchings repeats its full cycle on odd rounds only
    # (even rounds drop a rotating edge) — dedup still kicks in there.
    alt = AlternatingMatchingsAdversary(12)
    assert alt.adjacency(1) is alt.adjacency(3)
    assert alt.adjacency(3) is alt.adjacency(5)


def test_static_schedule_is_stable_forever():
    schedule = StaticAdversary(8, line_graph(8))
    assert schedule.stable_until(1) == STABLE_FOREVER
    first = schedule.adjacency(1)
    assert schedule.adjacency(10_000) is first


@pytest.mark.parametrize("factory", [
    lambda: OverlapHandoffAdversary(16, 4, noise_edges=0, seed=2),
    lambda: OverlapHandoffAdversary(16, 4, noise_edges=2, seed=2),
    lambda: EdgeChurnAdversary(14, line_graph(14), dwell=4, seed=2),
    lambda: FreshSpanningAdversary(12, seed=2),
    lambda: RepairedMobilityAdversary(12, T=3, seed=2),
])
def test_stable_until_promise_holds(factory):
    """``edges(r')`` really is identical for r' in [r, stable_until(r)]."""
    schedule = factory()
    horizon = 20
    for r in range(1, horizon + 1):
        until = schedule.stable_until(r)
        assert until >= r
        ref = schedule.edges(r)
        for rp in range(r + 1, min(until, horizon) + 1):
            assert np.array_equal(schedule.edges(rp), ref), (
                f"stable_until({r})={until} but edges({rp}) differ")


# --------------------------------------------------------------------------
# bit-size cache eviction
# --------------------------------------------------------------------------

def test_bits_cache_evicts_oldest_quarter_not_everything():
    schedule = StaticAdversary(4, line_graph(4))
    nodes = [ExactCount(i) for i in range(4)]
    sim = Simulator(schedule, nodes, rng=RngRegistry(0))
    cap = sim._bits_cache_cap
    payloads = [("payload", i) for i in range(cap)]
    for p in payloads:
        sim._payload_bits(p)
    assert len(sim._bits_cache) == cap
    # One more insert triggers eviction of the oldest quarter only.
    overflow = ("payload", "overflow")
    sim._payload_bits(overflow)
    assert len(sim._bits_cache) == cap - cap // 4 + 1
    survivors = {entry[0] for entry in sim._bits_cache.values()}
    assert overflow in survivors
    assert payloads[-1] in survivors          # newest retained
    assert payloads[0] not in survivors       # oldest evicted


# --------------------------------------------------------------------------
# per-phase profiling surface
# --------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_profile_collects_phase_seconds(engine):
    def factory(s):
        return OverlapHandoffAdversary(12, 2, noise_edges=1, seed=s)

    schedule = factory(0)
    nodes = [ExactCount(i) for i in range(12)]
    sim = Simulator(schedule, nodes, rng=RngRegistry(0),
                    engine=engine, profile=True)
    result = sim.run(max_rounds=1000, until="quiescent",
                     quiescence_window=16)
    phases = result.metrics.phase_seconds
    assert phases is not None
    assert set(phases) == set(PHASES)
    assert all(seconds >= 0.0 for seconds in phases.values())
    flat = result.metrics.as_dict()
    for name in PHASES:
        assert f"phase.{name}_s" in flat


def test_profile_off_keeps_metrics_unannotated():
    schedule = StaticAdversary(6, line_graph(6))
    nodes = [ExactCount(i) for i in range(6)]
    sim = Simulator(schedule, nodes, rng=RngRegistry(0))
    result = sim.run(max_rounds=500, until="quiescent", quiescence_window=8)
    assert result.metrics.phase_seconds is None
    assert not any(k.startswith("phase.") for k in result.metrics.as_dict())


def test_profile_flows_into_trial_result_rows():
    spec = TrialSpec(
        schedule="lowdiam_handoff", schedule_params={"n": 12, "T": 2},
        nodes="exact_count", node_params={"n": 12},
        max_rounds=1000, until="quiescent", quiescence_window=16)
    config = spec.to_config()
    config.profile = True
    result = run_trial(config, 3)
    assert result.phase_seconds is not None
    row = result.as_row()
    for name in PHASES:
        assert f"phase.{name}_s" in row
    # Unprofiled rows carry no phase columns at all.
    unprofiled = run_trial(dataclasses.replace(spec), 3)
    assert unprofiled.phase_seconds is None
    assert not any(k.startswith("phase.") for k in unprofiled.as_row())


def test_phase_totals_accumulate_per_profiled_trial():
    spec = TrialSpec(
        schedule="lowdiam_handoff", schedule_params={"n": 10, "T": 2},
        nodes="exact_count", node_params={"n": 10},
        max_rounds=1000, until="quiescent", quiescence_window=16)
    reset_phase_totals()
    try:
        config = spec.to_config()
        config.profile = True
        run_trial(config, 1)
        run_trial(config, 2)
        totals, trials = phase_totals()
        assert trials == 2
        assert set(totals) == set(PHASES)
        assert all(seconds >= 0.0 for seconds in totals.values())
        # Unprofiled trials contribute nothing.
        run_trial(dataclasses.replace(spec), 3)
        assert phase_totals()[1] == 2
    finally:
        reset_phase_totals()


def test_executor_strips_phase_columns_from_cache(tmp_path):
    """Wall-clock timings stay in in-memory rows but never in the
    content-addressed cache (rows must be deterministic per (spec, seed))."""
    from repro.simnet.engine import set_profile_default

    spec = TrialSpec(
        schedule="lowdiam_handoff", schedule_params={"n": 10, "T": 2},
        nodes="exact_count", node_params={"n": 10},
        max_rounds=1000, until="quiescent", quiescence_window=16)
    reset_phase_totals()
    set_profile_default(True)
    try:
        executor = ParallelExecutor(cache=str(tmp_path))
        report = executor.run([(spec, 7)])
        row = report.rows[0]
        for name in PHASES:
            assert f"phase.{name}_s" in row
        cached = executor.cache.get(executor.cache.key(spec, 7))
        assert cached is not None
        assert not any(k.startswith("phase.") for k in cached)
    finally:
        set_profile_default(False)
        reset_phase_totals()
    # A later unprofiled run served from the same cache stays clean.
    report2 = ParallelExecutor(cache=str(tmp_path)).run([(spec, 7)])
    assert report2.cache_hits == 1
    assert not any(k.startswith("phase.") for k in report2.rows[0])
