"""Tests for the experiment harness: runner, experiments, io, cli."""

import os

import pytest

from repro.core import ExactCount
from repro.dynamics import FreshSpanningAdversary
from repro.harness import (
    EXPERIMENTS,
    TrialConfig,
    load_rows,
    run_experiment,
    run_replicates,
    run_trial,
    save_experiment,
)
from repro.harness.experiments import ExperimentResult, run_f1, run_f5, run_t1
from repro.harness.cli import main as cli_main


def exact_count_config(n=16):
    return TrialConfig(
        schedule_factory=lambda seed: FreshSpanningAdversary(n, seed=seed),
        node_factory=lambda sched, seed: [ExactCount(i) for i in range(n)],
        max_rounds=4000,
        until="quiescent",
        quiescence_window=32,
        oracle=lambda outputs, sched: all(
            v == sched.num_nodes for v in outputs.values()),
    )


class TestRunner:
    def test_run_trial_measures(self):
        tr = run_trial(exact_count_config(), seed=1)
        assert tr.correct is True
        assert tr.last_decision_round is not None
        assert tr.last_decision_round <= tr.rounds
        assert tr.broadcast_bits > 0
        assert tr.max_message_bits > 0
        assert tr.stop_reason == "quiescent"

    def test_as_row_merges_params(self):
        tr = run_trial(exact_count_config(), seed=1)
        row = tr.as_row(algorithm="exact", n=16)
        assert row["algorithm"] == "exact"
        assert row["rounds"] == tr.rounds

    def test_replicates_one_per_seed(self):
        results = run_replicates(exact_count_config(), seeds=[1, 2, 3])
        assert len(results) == 3
        assert [r.seed for r in results] == [1, 2, 3]

    def test_determinism_across_calls(self):
        a = run_trial(exact_count_config(), seed=7)
        b = run_trial(exact_count_config(), seed=7)
        assert a.rounds == b.rounds
        assert a.broadcast_bits == b.broadcast_bits


class TestExperiments:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "t1", "f1", "f2", "f3", "f4", "t2", "f5", "f6", "t3", "x1", "x2"}

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("t9")

    def test_t1_quick(self):
        result = run_t1(quick=True)
        assert result.rows
        algos = {r["algorithm"] for r in result.rows}
        assert "klo_count" in algos and "exact_count_ours" in algos
        assert all(r.get("correct") in (True, None) for r in result.rows
                   if r["algorithm"] != "approx_count_ours")
        assert "t1" in result.tables

    def test_f1_reuses_t1(self):
        t1 = run_t1(quick=True)
        f1 = run_f1(quick=True, t1=t1)
        slopes = {r["algorithm"]: r["exponent_b"] for r in f1.rows}
        assert slopes["klo_count"] > 1.5
        assert slopes["exact_count_ours"] < 0.6
        assert "f1_loglog" in f1.figures

    def test_f5_produces_crossovers(self):
        t1 = run_t1(quick=True)
        f5 = run_f5(quick=True, t1=t1)
        assert all(r["crossover_N_predicted"] is not None for r in f5.rows)

    def test_render_includes_tables_and_notes(self):
        result = ExperimentResult("X1", "demo", rows=[{"a": 1}],
                                  tables={"t": "TBL"}, notes="note")
        text = result.render()
        assert "X1" in text and "TBL" in text and "note" in text


class TestIo:
    def test_save_and_load(self, tmp_path):
        result = ExperimentResult("T9", "demo",
                                  rows=[{"a": 1, "b": "x"}],
                                  tables={"t": "TBL"})
        exp_dir = save_experiment(result, str(tmp_path))
        assert os.path.exists(os.path.join(exp_dir, "rows.csv"))
        assert os.path.exists(os.path.join(exp_dir, "report.txt"))
        rows = load_rows(str(tmp_path), "t9")
        assert rows == [{"a": 1, "b": "x"}]


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "t1" in out and "f6" in out

    def test_no_args_shows_help(self, capsys):
        assert cli_main([]) == 2

    def test_unknown_experiment(self, capsys):
        assert cli_main(["zz"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_quick_run_with_save(self, tmp_path, capsys):
        code = cli_main(["--quick", "f4", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "F4" in out
        assert os.path.exists(tmp_path / "f4" / "rows.csv")
