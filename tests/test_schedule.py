"""Unit tests for schedule base classes and canonicalisation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ScheduleError
from repro.dynamics.schedule import (
    ExplicitSchedule,
    FunctionSchedule,
    RecordingSchedule,
    canonical_edges,
)
from repro.dynamics import StaticAdversary, line_graph


class TestCanonicalEdges:
    def test_orders_endpoints_and_rows(self):
        out = canonical_edges([(2, 1), (0, 3)], 4)
        assert out.tolist() == [[0, 3], [1, 2]]

    def test_merges_duplicates_and_reversed(self):
        out = canonical_edges([(1, 2), (2, 1), (1, 2)], 3)
        assert out.tolist() == [[1, 2]]

    def test_rejects_self_loops(self):
        with pytest.raises(ScheduleError, match="self-loops"):
            canonical_edges([(1, 1)], 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ScheduleError, match="endpoints"):
            canonical_edges([(0, 3)], 3)
        with pytest.raises(ScheduleError):
            canonical_edges([(-1, 0)], 3)

    def test_empty_ok(self):
        out = canonical_edges([], 3)
        assert out.shape == (0, 2)

    def test_rejects_bad_shape(self):
        with pytest.raises(ScheduleError, match="shape"):
            canonical_edges(np.zeros((2, 3)), 5)

    def test_idempotent(self):
        first = canonical_edges([(3, 1), (0, 2), (2, 0)], 4)
        second = canonical_edges(first, 4)
        assert (first == second).all()


class TestExplicitSchedule:
    def test_round_lookup(self):
        s = ExplicitSchedule(3, [[(0, 1)], [(1, 2)]])
        assert s.edges(1).tolist() == [[0, 1]]
        assert s.edges(2).tolist() == [[1, 2]]
        assert s.horizon == 2

    def test_beyond_horizon_raises_without_cycle(self):
        s = ExplicitSchedule(3, [[(0, 1)]])
        with pytest.raises(ScheduleError, match="beyond explicit horizon"):
            s.edges(2)

    def test_cycle_wraps(self):
        s = ExplicitSchedule(3, [[(0, 1)], [(1, 2)]], cycle=True)
        assert s.edges(3).tolist() == [[0, 1]]
        assert s.edges(4).tolist() == [[1, 2]]

    def test_empty_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitSchedule(3, [])

    def test_round_index_must_be_positive(self):
        s = ExplicitSchedule(3, [[(0, 1)]])
        with pytest.raises(ConfigurationError):
            s.edges(0)


class TestNeighbors:
    def test_neighbors_lists(self):
        s = ExplicitSchedule(4, [[(0, 1), (1, 2)]])
        neigh = s.neighbors(1)
        assert sorted(neigh[1].tolist()) == [0, 2]
        assert neigh[3].tolist() == []

    def test_neighbors_cached_identity(self):
        s = ExplicitSchedule(4, [[(0, 1)]], cycle=True)
        assert s.neighbors(1) is s.neighbors(1)

    def test_degrees(self):
        s = ExplicitSchedule(4, [[(0, 1), (1, 2), (1, 3)]])
        assert s.degrees(1).tolist() == [1, 3, 1, 1]

    def test_as_networkx(self):
        s = StaticAdversary(5, line_graph(5))
        g = s.as_networkx(1)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 4


class TestFunctionSchedule:
    def test_function_evaluated_per_round(self):
        s = FunctionSchedule(3, lambda r: [(0, 1)] if r % 2 else [(1, 2)])
        assert s.edges(1).tolist() == [[0, 1]]
        assert s.edges(2).tolist() == [[1, 2]]

    def test_cache_returns_same_array(self):
        calls = []

        def fn(r):
            calls.append(r)
            return [(0, 1)]

        s = FunctionSchedule(2, fn)
        s.edges(1)
        s.edges(1)
        assert calls == [1]


class TestRecordingSchedule:
    def test_records_and_freezes(self):
        inner = FunctionSchedule(3, lambda r: [(0, 1), (1, 2)])
        rec = RecordingSchedule(inner)
        rec.edges(1)
        rec.edges(2)
        frozen = rec.to_explicit()
        assert frozen.horizon == 2
        assert frozen.edges(1).tolist() == [[0, 1], [1, 2]]

    def test_gaps_detected(self):
        inner = FunctionSchedule(3, lambda r: [(0, 1), (1, 2)])
        rec = RecordingSchedule(inner)
        rec.edges(1)
        rec.edges(3)
        with pytest.raises(ScheduleError, match="gaps"):
            rec.to_explicit()

    def test_nothing_recorded(self):
        rec = RecordingSchedule(FunctionSchedule(3, lambda r: [(0, 1)]))
        with pytest.raises(ScheduleError, match="nothing recorded"):
            rec.to_explicit()
