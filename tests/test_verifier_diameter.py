"""Tests for the T-interval verifier and the dynamic-diameter computation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Simulator
from repro.baselines import FloodToken
from repro.errors import IntervalConnectivityError, NotTerminatedError
from repro.dynamics import (
    ExplicitSchedule,
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    StaticAdversary,
    complete_graph,
    dynamic_diameter,
    flooding_time_from,
    is_connected_spanning,
    line_graph,
    star_graph,
    verify_t_interval_connectivity,
    window_intersection_edges,
)


class TestIsConnectedSpanning:
    def test_connected(self):
        assert is_connected_spanning(line_graph(5), 5)

    def test_disconnected(self):
        assert not is_connected_spanning(np.array([[0, 1]]), 3)

    def test_empty_edges(self):
        assert not is_connected_spanning(np.empty((0, 2), int), 2)
        assert is_connected_spanning(np.empty((0, 2), int), 1)


class TestWindowIntersection:
    def test_direct_intersection(self):
        sched = ExplicitSchedule(3, [[(0, 1), (1, 2)], [(1, 2)]])
        inter = window_intersection_edges(sched, 1, 2)
        assert inter.tolist() == [[1, 2]]

    def test_empty_intersection(self):
        sched = ExplicitSchedule(3, [[(0, 1), (1, 2)], [(0, 2)]])
        inter = window_intersection_edges(sched, 1, 2)
        assert inter.shape == (0, 2)


class TestVerifier:
    def test_accepts_valid_schedule(self):
        adv = OverlapHandoffAdversary(12, 3, seed=1)
        ok, bad = verify_t_interval_connectivity(adv, 3, horizon=30)
        assert ok and bad is None

    def test_detects_violation_with_window_position(self):
        # rounds: connected, connected, then a window [2,3] with empty
        # intersection
        rounds = [
            [(0, 1), (1, 2)],
            [(0, 1), (1, 2)],
            [(0, 2), (1, 2)],
        ]
        sched = ExplicitSchedule(3, rounds)
        ok, bad = verify_t_interval_connectivity(
            sched, 2, horizon=3, raise_on_failure=False)
        assert not ok
        assert bad == 2

    def test_raises_with_details(self):
        sched = ExplicitSchedule(3, [[(0, 1)], [(1, 2)]])
        with pytest.raises(IntervalConnectivityError) as exc:
            verify_t_interval_connectivity(sched, 2, horizon=2)
        assert exc.value.window_start == 1
        assert exc.value.window_length == 2

    def test_horizon_shorter_than_T_vacuous(self):
        sched = ExplicitSchedule(3, [[(0, 1)]])
        ok, _ = verify_t_interval_connectivity(sched, 5, horizon=1)
        assert ok

    def test_single_node_always_ok(self):
        sched = ExplicitSchedule(1, [[]])
        ok, _ = verify_t_interval_connectivity(sched, 1, horizon=1)
        assert ok

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=500))
    def test_agrees_with_direct_intersection(self, n, T, seed):
        """The incremental verifier matches the brute-force oracle."""
        rng = np.random.default_rng(seed)
        horizon = 3 * T + 2
        rounds = []
        for _ in range(horizon):
            m = rng.integers(0, n * 2)
            u = rng.integers(0, n, size=m)
            v = rng.integers(0, n, size=m)
            keep = u != v
            rounds.append(np.stack([u[keep], v[keep]], axis=1))
        sched = ExplicitSchedule(n, rounds)
        ok_fast, bad_fast = verify_t_interval_connectivity(
            sched, T, horizon, raise_on_failure=False)
        # brute-force: every window via direct intersection
        ok_slow, bad_slow = True, None
        for start in range(1, horizon - T + 2):
            inter = window_intersection_edges(sched, start, T)
            if not is_connected_spanning(inter, n):
                ok_slow, bad_slow = False, start
                break
        assert ok_fast == ok_slow
        assert bad_fast == bad_slow


class TestFloodingTime:
    def test_line_exact(self):
        sched = StaticAdversary(10, line_graph(10))
        assert flooding_time_from(sched) == 9

    def test_star_two_hops(self):
        sched = StaticAdversary(10, star_graph(10))
        assert flooding_time_from(sched) == 2

    def test_complete_one_hop(self):
        sched = StaticAdversary(10, complete_graph(10))
        assert flooding_time_from(sched) == 1

    def test_single_node_zero(self):
        sched = ExplicitSchedule(1, [[]], cycle=True)
        assert flooding_time_from(sched) == 0

    def test_single_source_from_end_of_line(self):
        sched = StaticAdversary(10, line_graph(10))
        assert flooding_time_from(sched, sources=[0]) == 9

    def test_single_source_from_middle(self):
        sched = StaticAdversary(11, line_graph(11))
        assert flooding_time_from(sched, sources=[5]) == 5

    def test_source_out_of_range(self):
        sched = StaticAdversary(4, line_graph(4))
        with pytest.raises(ValueError, match="out of range"):
            flooding_time_from(sched, sources=[7])

    def test_disconnected_raises(self):
        sched = ExplicitSchedule(3, [[(0, 1)]], cycle=True)
        with pytest.raises(NotTerminatedError):
            flooding_time_from(sched, max_rounds=20)

    def test_empty_sources_zero(self):
        sched = StaticAdversary(4, line_graph(4))
        assert flooding_time_from(sched, sources=[]) == 0

    def test_dynamic_diameter_max_over_starts(self):
        adv = FreshSpanningAdversary(20, seed=3)
        d = dynamic_diameter(adv, start_rounds=(1, 5, 9))
        assert d >= flooding_time_from(adv, start_round=5)

    def test_start_rounds_empty_rejected(self):
        with pytest.raises(ValueError):
            dynamic_diameter(StaticAdversary(4, line_graph(4)),
                             start_rounds=())

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=24),
           st.integers(min_value=0, max_value=100))
    def test_matches_flood_token_simulation(self, n, seed):
        """The closure computation agrees with an actual protocol flood."""
        adv = FreshSpanningAdversary(n, seed=seed)
        closure = flooding_time_from(adv, sources=[0])
        nodes = [FloodToken(i, informed=(i == 0)) for i in range(n)]
        result = Simulator(adv, nodes).run(max_rounds=4 * n, until="decided")
        simulated = result.metrics.last_decision_round or 0
        assert simulated == closure


class TestVerifierCatchesBrokenHandoff:
    """Mutation test: an OverlapHandoff-style adversary WITHOUT the
    overlap must violate T-interval connectivity (and the verifier must
    say so) — this guards both the verifier and the reasoning behind the
    handoff construction."""

    def test_no_overlap_violates_promise(self):
        import numpy as np
        from repro.dynamics import FunctionSchedule
        from repro.dynamics.topologies import random_tree_graph

        n, T = 12, 3

        def broken(r):
            w = (r - 1) // T
            rng = np.random.default_rng(w)
            return random_tree_graph(n, rng)  # fresh tree, NO overlap

        sched = FunctionSchedule(n, broken, interval=T)
        ok, bad = verify_t_interval_connectivity(
            sched, T, horizon=6 * T, raise_on_failure=False)
        assert not ok
        # the violated window must straddle a window boundary
        assert bad is not None
        assert (bad - 1) // T != (bad + T - 2) // T

    def test_fixed_by_adding_overlap(self):
        from repro.dynamics import OverlapHandoffAdversary

        adv = OverlapHandoffAdversary(12, 3, seed=0)
        ok, _ = verify_t_interval_connectivity(adv, 3, horizon=18)
        assert ok
