"""Tests for the parallel executor subsystem (repro.exec).

Covers the acceptance properties of the subsystem:

* spec hashing is stable across processes and insensitive to tags;
* parallel (``workers=4``) rows are identical to serial rows;
* a sweep run twice against one cache dir executes zero trials the
  second time (cache-hit accounting);
* a sweep interrupted after k rows resumes executing only the rest;
* per-trial failures can be recorded instead of torching the sweep.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    CODE_VERSION_SALT,
    ExecutionError,
    ParallelExecutor,
    ResultCache,
    SweepJournal,
    TrialSpec,
    canonical_json,
    execute_cell,
    register_nodes,
    write_rows_atomic,
)
from repro.exec.cli import load_sweep_file, spec_from_template
from repro.exec.progress import ProgressSnapshot
from repro.harness.runner import TrialConfig, run_trial
from repro.harness.sweeps import sweep, sweep_with_report
from repro.simnet.rng import derive_seeds


def tiny_spec(n=8, **tags) -> TrialSpec:
    """A fast Count trial on the fresh-spanning adversary."""
    return TrialSpec(
        schedule="fresh_spanning", schedule_params={"n": n},
        nodes="exact_count", node_params={"n": n},
        max_rounds=2000, until="quiescent", quiescence_window=16,
        oracle="count_exact", tags=tags)


@register_nodes("_test_failing_nodes")
def _failing_nodes(schedule, seed, *, n):
    raise RuntimeError(f"boom seed-dependent={seed}")


def failing_spec(n=4) -> TrialSpec:
    return TrialSpec(
        schedule="fresh_spanning", schedule_params={"n": n},
        nodes="_test_failing_nodes", node_params={"n": n},
        max_rounds=100)


class TestTrialSpec:
    def test_runs_through_run_trial(self):
        tr = run_trial(tiny_spec(), seed=3)
        assert tr.correct is True
        assert tr.stop_reason == "quiescent"

    def test_matches_equivalent_trial_config(self):
        from repro.core import ExactCount
        from repro.dynamics import FreshSpanningAdversary

        config = TrialConfig(
            schedule_factory=lambda seed: FreshSpanningAdversary(
                8, seed=seed),
            node_factory=lambda sched, seed: [
                ExactCount(i) for i in range(8)],
            max_rounds=2000, until="quiescent", quiescence_window=16)
        a = run_trial(config, seed=5)
        b = run_trial(tiny_spec(), seed=5)
        assert a.rounds == b.rounds
        assert a.broadcast_bits == b.broadcast_bits

    def test_key_stable_and_tag_insensitive(self):
        a = tiny_spec().key(1)
        b = tiny_spec().key(1)
        assert a == b and len(a) == 64
        assert tiny_spec(label="x").key(1) == a  # tags excluded
        assert tiny_spec().key(2) != a           # seed included
        assert tiny_spec(n=9).key(1) != a        # params included
        assert tiny_spec().key(1, salt="other") != a

    def test_key_stable_across_processes(self):
        spec = tiny_spec()
        code = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.exec import TrialSpec\n"
            "spec = TrialSpec(schedule='fresh_spanning',"
            " schedule_params={{'n': 8}}, nodes='exact_count',"
            " node_params={{'n': 8}}, max_rounds=2000, until='quiescent',"
            " quiescence_window=16, oracle='count_exact')\n"
            "print(spec.key(1))\n"
        ).format(src=os.path.join(os.path.dirname(__file__), "..", "src"))
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == spec.key(1)

    def test_rejects_non_json_params(self):
        with pytest.raises(ConfigurationError, match="plain JSON"):
            TrialSpec(schedule="fresh_spanning",
                      schedule_params={"n": {8}},  # a set
                      nodes="exact_count", node_params={"n": 8},
                      max_rounds=100)

    def test_unknown_builder_fails_at_resolution(self):
        spec = TrialSpec(schedule="no_such_schedule",
                         schedule_params={}, nodes="exact_count",
                         node_params={"n": 4}, max_rounds=100)
        with pytest.raises(ConfigurationError, match="no_such_schedule"):
            spec.to_config()

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1})


class TestCacheAndJournal:
    def test_cache_roundtrip_and_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = tiny_spec().key(1)
        assert cache.get(key) is None
        cache.put(key, {"rounds": 7})
        assert cache.get(key) == {"rounds": 7}
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.writes == 1
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_cache_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = tiny_spec().key(1)
        cache.put(key, {"rounds": 7})
        with open(cache.path(key), "w") as fh:
            fh.write("{torn")
        assert cache.get(key) is None

    def test_journal_roundtrip_tolerates_torn_tail(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with SweepJournal(path) as journal:
            journal.append("k1", {"rounds": 1})
            journal.append("k2", {"rounds": 2})
        with open(path, "a") as fh:
            fh.write('{"key": "k3", "row": {"rou')  # crash mid-append
        loaded = SweepJournal(path).load()
        assert loaded == {"k1": {"rounds": 1}, "k2": {"rounds": 2}}

    def test_write_rows_atomic(self, tmp_path):
        path = write_rows_atomic(str(tmp_path / "rows.json"),
                                 [{"a": 1}], meta={"m": 2})
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["rows"] == [{"a": 1}] and doc["meta"] == {"m": 2}
        assert not [p for p in os.listdir(tmp_path)
                    if p.endswith(".tmp")]


class TestExecutor:
    def cells(self, seeds=(1, 2, 3), n=8):
        return [(tiny_spec(n=n, n_tag=n), s) for s in seeds]

    def test_serial_run_and_tags(self):
        report = ParallelExecutor(workers=1).run(self.cells())
        assert report.total == report.executed == 3
        assert [r["seed"] for r in report.rows] == [1, 2, 3]
        assert all(r["n_tag"] == 8 for r in report.rows)
        assert all(r["correct"] for r in report.rows)

    def test_parallel_rows_identical_to_serial(self):
        cells = self.cells(seeds=(1, 2, 3, 4))
        serial = ParallelExecutor(workers=1).run(cells)
        parallel = ParallelExecutor(workers=4).run(cells)
        assert parallel.executed == serial.executed == 4
        assert canonical_json(parallel.rows) == canonical_json(serial.rows)

    def test_duplicate_cells_execute_once(self):
        cells = self.cells(seeds=(1, 1, 1))
        report = ParallelExecutor(workers=1).run(cells)
        assert report.executed == 1 and report.deduped == 2
        assert report.rows[0] == report.rows[1] == report.rows[2]

    def test_cache_second_run_executes_nothing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = ParallelExecutor(cache=cache_dir).run(self.cells())
        assert first.executed == 3 and first.cache_hits == 0
        second = ParallelExecutor(cache=cache_dir).run(self.cells())
        assert second.executed == 0 and second.cache_hits == 3
        assert canonical_json(second.rows) == canonical_json(first.rows)

    def test_resume_after_simulated_crash(self, tmp_path):
        journal_path = str(tmp_path / "sweep.jsonl")
        cells = self.cells(seeds=(1, 2, 3, 4, 5))
        full = ParallelExecutor(journal=journal_path).run(cells)
        assert full.executed == 5
        # Simulate a crash after k=2 completions: keep the journal's
        # first two lines plus a torn third.
        with open(journal_path) as fh:
            lines = fh.readlines()
        assert len(lines) == 5
        with open(journal_path, "w") as fh:
            fh.writelines(lines[:2])
            fh.write(lines[2][: len(lines[2]) // 2])  # torn record
        resumed = ParallelExecutor(journal=journal_path,
                                   resume=True).run(cells)
        assert resumed.resumed == 2
        assert resumed.executed == 3  # only the missing rows re-ran
        assert canonical_json(resumed.rows) == canonical_json(full.rows)

    def test_on_error_raise_keeps_sweep_resumable(self, tmp_path):
        journal_path = str(tmp_path / "j.jsonl")
        cells = [(tiny_spec(), 1), (failing_spec(), 1), (tiny_spec(), 2)]
        with pytest.raises(ExecutionError, match="boom"):
            ParallelExecutor(journal=journal_path).run(cells)
        assert len(SweepJournal(journal_path).load()) >= 1

    def test_on_error_record_captures_error_column(self):
        cells = [(tiny_spec(), 1), (failing_spec(), 1), (tiny_spec(), 2)]
        report = ParallelExecutor(on_error="record").run(cells)
        assert report.errors == 1
        assert "boom" in report.rows[1]["error"]
        assert report.rows[0]["correct"] and report.rows[2]["correct"]

    def test_error_rows_never_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cells = [(failing_spec(), 1)]
        first = ParallelExecutor(cache=cache_dir,
                                 on_error="record").run(cells)
        assert first.errors == 1
        second = ParallelExecutor(cache=cache_dir,
                                  on_error="record").run(cells)
        assert second.executed == 1  # re-executed, not served from cache

    def test_rejects_trial_config_cells(self):
        config = TrialConfig(schedule_factory=lambda s: None,
                             node_factory=lambda sch, s: [],
                             max_rounds=10)
        with pytest.raises(ConfigurationError, match="TrialSpec"):
            ParallelExecutor().run([(config, 1)])

    def test_progress_snapshots_emitted(self):
        snaps = []
        ParallelExecutor(progress=snaps.append).run(self.cells())
        assert snaps[-1].done == snaps[-1].total == 3
        assert snaps[-1].executed == 3
        assert isinstance(snaps[0], ProgressSnapshot)


class TestSweepIntegration:
    def build(self, p):
        return tiny_spec(n=p["n"])

    def test_sweep_with_specs_merges_grid_point(self):
        rows = sweep(grid={"n": [4, 8]}, build=self.build, seeds=[1, 2])
        assert len(rows) == 4
        assert [(r["n"], r["seed"]) for r in rows] == [
            (4, 1), (4, 2), (8, 1), (8, 2)]

    def test_sweep_parallel_equals_serial(self):
        kwargs = dict(grid={"n": [4, 8]}, build=self.build, seeds=[1, 2])
        assert sweep(workers=4, **kwargs) == sweep(workers=1, **kwargs)

    def test_sweep_twice_with_cache_executes_zero(self, tmp_path):
        kwargs = dict(grid={"n": [4, 8]}, build=self.build, seeds=[1, 2],
                      cache_dir=str(tmp_path / "cache"))
        rows1, report1 = sweep_with_report(**kwargs)
        rows2, report2 = sweep_with_report(**kwargs)
        assert report1.executed == 4
        assert report2.executed == 0 and report2.cache_hits == 4
        assert rows1 == rows2

    def test_sweep_config_builder_still_works(self):
        from repro.core import ExactCount
        from repro.dynamics import FreshSpanningAdversary

        def build(p):
            return TrialConfig(
                schedule_factory=lambda seed: FreshSpanningAdversary(
                    p["n"], seed=seed),
                node_factory=lambda sched, seed: [
                    ExactCount(i) for i in range(p["n"])],
                max_rounds=2000, until="quiescent", quiescence_window=16)

        rows = sweep(grid={"n": [4]}, build=build, seeds=[1])
        assert rows[0]["n"] == 4 and rows[0]["seed"] == 1

    def test_sweep_config_builder_rejects_workers(self):
        def build(p):
            return TrialConfig(schedule_factory=lambda s: None,
                               node_factory=lambda sch, s: [],
                               max_rounds=10)

        with pytest.raises(ConfigurationError, match="TrialSpec"):
            sweep(grid={"n": [4]}, build=build, workers=2)

    def test_sweep_on_error_record(self):
        def build(p):
            return failing_spec() if p["n"] == 6 else tiny_spec(n=p["n"])

        rows = sweep(grid={"n": [4, 6, 8]}, build=build, seeds=[1],
                     on_error="record")
        assert "error" in rows[1] and rows[1]["n"] == 6
        assert rows[0]["correct"] and rows[2]["correct"]

    @pytest.mark.slow
    def test_experiment_grid_parallel_matches_serial(self, tmp_path):
        from repro.exec import ExecOptions
        from repro.harness.experiments import run_t1

        serial = run_t1(quick=True)
        parallel = run_t1(quick=True, exec_opts=ExecOptions(
            workers=2, cache_dir=str(tmp_path / "cache")))
        assert canonical_json(serial.rows) == canonical_json(parallel.rows)


class TestExecCli:
    def sweep_doc(self):
        return {
            "grid": {"n": [4, 8]},
            "seeds": [1, 2],
            "spec": {
                "schedule": "fresh_spanning",
                "schedule_params": {"n": "$n"},
                "nodes": "exact_count",
                "node_params": {"n": "$n"},
                "max_rounds": 2000,
                "until": "quiescent",
                "quiescence_window": 16,
                "oracle": "count_exact",
            },
        }

    def test_spec_from_template_substitutes(self):
        spec = spec_from_template(self.sweep_doc()["spec"], {"n": 8})
        assert spec.schedule_params == {"n": 8}
        assert spec.tags == {"n": 8}

    def test_template_unknown_reference_rejected(self):
        with pytest.raises(ConfigurationError, match=r"\$n"):
            spec_from_template(self.sweep_doc()["spec"], {"m": 8})

    def test_load_sweep_file_and_cli_run(self, tmp_path, capsys):
        from repro.exec.cli import main as exec_main

        sweep_file = tmp_path / "sweep.json"
        sweep_file.write_text(json.dumps(self.sweep_doc()))
        cells = load_sweep_file(str(sweep_file))
        assert len(cells) == 4
        out_file = tmp_path / "rows.json"
        code = exec_main(["run", str(sweep_file), "--workers", "2",
                          "--cache-dir", str(tmp_path / "cache"),
                          "--out", str(out_file), "--no-progress"])
        assert code == 0
        with open(out_file) as fh:
            assert len(json.load(fh)["rows"]) == 4
        assert "executed 4" in capsys.readouterr().out

    def test_cli_builders_lists_registry(self, capsys):
        from repro.exec.cli import main as exec_main

        assert exec_main(["builders"]) == 0
        out = capsys.readouterr().out
        assert "fresh_spanning" in out and "exact_count" in out

    def test_derive_seeds_stable(self):
        assert derive_seeds(42, 3) == derive_seeds(42, 3)
        assert len(set(derive_seeds(42, 10))) == 10
        assert derive_seeds(42, 3) != derive_seeds(43, 3)

    def test_salt_constant_unchanged(self):
        # Changing the salt silently orphans every cache on disk; bump it
        # deliberately (and this string) when trial semantics change.
        assert CODE_VERSION_SALT == "repro-exec-v1"

    def test_execute_cell_returns_measured_row(self):
        row = execute_cell(tiny_spec(ignored_tag=1), 1)
        assert "rounds" in row and "ignored_tag" not in row
