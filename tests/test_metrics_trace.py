"""Unit tests for metrics accounting and trace recording."""

from repro.simnet.metrics import MetricsCollector
from repro.simnet.trace import TraceEvent, TraceRecorder


class TestMetricsCollector:
    def test_broadcast_accounting(self):
        m = MetricsCollector()
        m.on_broadcast(bits=10, degree=3)
        m.on_broadcast(bits=5, degree=0)
        snap = m.snapshot()
        assert snap.broadcasts == 2
        assert snap.delivered_messages == 3
        assert snap.broadcast_bits == 15
        assert snap.delivered_bits == 30

    def test_round_counter(self):
        m = MetricsCollector()
        for _ in range(4):
            m.on_round_executed()
        assert m.snapshot().rounds == 4

    def test_decisions_first_and_last(self):
        m = MetricsCollector()
        m.on_decision(1, 5)
        m.on_decision(2, 9)
        snap = m.snapshot()
        assert snap.first_decision_round == 5
        assert snap.last_decision_round == 9
        assert snap.decision_rounds == {1: 5, 2: 9}

    def test_retraction_clears_decision_and_counts(self):
        m = MetricsCollector()
        m.on_decision(1, 5)
        m.on_retraction(1)
        m.on_decision(1, 12)
        snap = m.snapshot()
        assert snap.decision_rounds == {1: 12}
        assert snap.counters["retractions"] == 1

    def test_no_decisions_yields_none(self):
        snap = MetricsCollector().snapshot()
        assert snap.first_decision_round is None
        assert snap.last_decision_round is None

    def test_custom_counters(self):
        m = MetricsCollector()
        m.incr("phases")
        m.incr("phases", 4)
        assert m.snapshot().counters["phases"] == 5

    def test_as_dict_flattens(self):
        m = MetricsCollector()
        m.incr("x")
        d = m.snapshot().as_dict()
        assert d["counter.x"] == 1
        assert "rounds" in d and "broadcast_bits" in d

    def test_decided_nodes_sorted(self):
        m = MetricsCollector()
        m.on_decision(5, 1)
        m.on_decision(2, 1)
        assert m.decided_nodes() == (2, 5)


class TestTraceRecorder:
    def test_records_and_queries(self):
        t = TraceRecorder()
        t.record(TraceEvent(1, "round", None))
        t.record(TraceEvent(1, "decide", 3, "v"))
        t.note(2, "phase start", node_id=3)
        assert len(t) == 3
        assert t.of_kind("decide")[0].payload == "v"
        assert len(t.for_node(3)) == 2
        assert len(t.filter(lambda e: e.round_index == 1)) == 2

    def test_broadcast_filter(self):
        t = TraceRecorder(record_broadcasts=False)
        t.record(TraceEvent(1, "broadcast", 0, "m"))
        assert len(t) == 0

    def test_max_events_truncates(self):
        t = TraceRecorder(max_events=2)
        for i in range(5):
            t.record(TraceEvent(i, "note", None))
        assert len(t) == 2
        assert t.truncated

    def test_decision_timeline_respects_retraction(self):
        t = TraceRecorder()
        t.record(TraceEvent(1, "decide", 1, "a"))
        t.record(TraceEvent(2, "retract", 1))
        t.record(TraceEvent(3, "decide", 1, "b"))
        t.record(TraceEvent(2, "decide", 2, "c"))
        assert t.decision_timeline() == ((2, 2, "c"), (3, 1, "b"))

    def test_timeline_drops_never_redecided(self):
        t = TraceRecorder()
        t.record(TraceEvent(1, "decide", 1, "a"))
        t.record(TraceEvent(2, "retract", 1))
        assert t.decision_timeline() == ()
