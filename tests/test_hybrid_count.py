"""Tests for HybridCount: halting, zero-knowledge, w.h.p.-exact Count."""

import pytest

from repro import RngRegistry, Simulator
from repro.core import HybridCount
from repro.dynamics import (
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    StaticAdversary,
    line_graph,
    star_graph,
)


def run_hybrid(sched, seed=1, **node_kwargs):
    n = sched.num_nodes
    nodes = [HybridCount(i, **node_kwargs) for i in range(n)]
    result = Simulator(sched, nodes, rng=RngRegistry(seed)).run(
        max_rounds=20 * n + 400)
    return result


class TestCorrectness:
    @pytest.mark.parametrize("n", [4, 16, 48])
    def test_exact_on_handoff(self, n):
        result = run_hybrid(OverlapHandoffAdversary(n, 2, seed=n))
        assert result.unanimous_output() == n
        assert result.stop_reason == "halted"

    def test_exact_on_worst_case_line(self):
        n = 40
        result = run_hybrid(StaticAdversary(n, line_graph(n)))
        assert result.unanimous_output() == n

    def test_exact_on_star(self):
        n = 30
        result = run_hybrid(StaticAdversary(n, star_graph(n)))
        assert result.unanimous_output() == n

    def test_exact_across_seeds(self):
        """The w.h.p. guarantee: no failures across a seed batch."""
        n = 32
        for seed in range(10):
            result = run_hybrid(FreshSpanningAdversary(n, seed=seed),
                                seed=seed)
            assert result.unanimous_output() == n, seed


class TestComplexity:
    def test_rounds_linear_in_n(self):
        """Halting around safety_factor * N — linear, not quadratic."""
        rounds = {}
        for n in [32, 64, 128]:
            result = run_hybrid(OverlapHandoffAdversary(n, 2, seed=5))
            rounds[n] = result.rounds
            assert n <= result.rounds <= 2.2 * n
        assert rounds[128] < 4.1 * rounds[32]  # linear-ish doubling

    def test_cannot_fire_early(self):
        """The trigger is impossible while the heard-set still grows:
        nobody halts before round ~N even on a fast expander."""
        n = 64
        result = run_hybrid(FreshSpanningAdversary(n, seed=2))
        first = result.metrics.first_decision_round
        assert first >= n  # c(1-eps) > 1 forbids earlier firing

    def test_larger_safety_factor_waits_longer(self):
        n = 32
        fast = run_hybrid(OverlapHandoffAdversary(n, 2, seed=3),
                          safety_factor=1.2).rounds
        slow = run_hybrid(OverlapHandoffAdversary(n, 2, seed=3),
                          safety_factor=3.0).rounds
        assert slow > fast


class TestValidation:
    def test_safety_factor_must_exceed_one(self):
        with pytest.raises(ValueError, match="> 1"):
            HybridCount(0, safety_factor=1.0)
        with pytest.raises(Exception):
            HybridCount(0, safety_factor=-2)

    def test_single_node(self):
        sched = StaticAdversary(1, [])
        result = run_hybrid(sched)
        assert result.unanimous_output() == 1
