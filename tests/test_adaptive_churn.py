"""Tests for adaptive adversaries and churn/mobility models."""

import numpy as np
import pytest

from repro import RngRegistry, Simulator
from repro.baselines import FloodToken, RandomTokenDissemination
from repro.baselines.token import dissemination_complete
from repro.errors import ScheduleError
from repro.dynamics import (
    CutThrottleAdversary,
    EdgeChurnAdversary,
    PathHiderAdversary,
    RepairedMobilityAdversary,
    WindowedThrottleAdversary,
    random_tree_graph,
    verify_t_interval_connectivity,
)


class TestPathHider:
    def test_forces_linear_flooding(self):
        n = 40
        nodes = [FloodToken(i, informed=(i == 0)) for i in range(n)]
        adv = PathHiderAdversary(n)
        result = Simulator(adv, nodes).run(max_rounds=3 * n, until="decided")
        assert result.metrics.last_decision_round == n - 1

    def test_realized_schedule_is_one_interval(self):
        n = 20
        nodes = [FloodToken(i, informed=(i == 0)) for i in range(n)]
        adv = PathHiderAdversary(n)
        result = Simulator(adv, nodes).run(max_rounds=3 * n, until="decided")
        ok, _ = verify_t_interval_connectivity(
            adv.to_explicit(), 1, horizon=result.rounds)
        assert ok

    def test_query_before_bind_raises(self):
        adv = PathHiderAdversary(5)
        with pytest.raises(ScheduleError, match="before being bound"):
            adv.edges(1)

    def test_bind_size_mismatch(self):
        adv = PathHiderAdversary(5)
        with pytest.raises(ScheduleError, match="bound 3 nodes"):
            adv.bind([object()] * 3)

    def test_custom_predicate(self):
        n = 10
        adv = PathHiderAdversary(n, informed=lambda node: node.node_id == 0)
        nodes = [FloodToken(i, informed=(i == 0)) for i in range(n)]
        Simulator(adv, nodes).run(max_rounds=n, until="decided",
                                  allow_timeout=True)
        # predicate never changes -> path ordering stays keyed on id 0
        assert adv.edges(1).shape == (n - 1, 2)


class TestCutThrottle:
    def test_slows_token_dissemination(self):
        n = 24
        seeds = [1, 2, 3]

        def run(factory):
            rounds = []
            for seed in seeds:
                nodes = [RandomTokenDissemination(i) for i in range(n)]
                sim = Simulator(factory(n), nodes, rng=RngRegistry(seed))
                res = sim.run(
                    max_rounds=50_000,
                    stop_when=lambda s: dissemination_complete(s.nodes, n),
                    allow_timeout=True)
                rounds.append(res.rounds)
            return float(np.mean(rounds))

        from repro.dynamics import FreshSpanningAdversary

        throttled = run(lambda n_: CutThrottleAdversary(n_))
        friendly = run(lambda n_: FreshSpanningAdversary(n_, seed=0))
        assert throttled > 1.5 * friendly

    def test_descending_mirror(self):
        n = 8
        adv = CutThrottleAdversary(n, key=lambda node: 0.0, descending=True)
        adv.bind([object()] * n)
        edges = adv.edges(1)
        assert len(edges) == n - 1


class TestWindowedThrottle:
    @pytest.mark.parametrize("T", [1, 2, 4])
    def test_realized_promise(self, T):
        n = 16
        adv = WindowedThrottleAdversary(n, T)
        nodes = [RandomTokenDissemination(i) for i in range(n)]
        sim = Simulator(adv, nodes, rng=RngRegistry(1))
        res = sim.run(max_rounds=5000,
                      stop_when=lambda s: dissemination_complete(s.nodes, n),
                      allow_timeout=True)
        ok, bad = verify_t_interval_connectivity(
            adv.to_explicit(), T, horizon=res.rounds, raise_on_failure=False)
        assert ok, f"window {bad}"

    def test_path_stable_within_window(self):
        n = 10
        adv = WindowedThrottleAdversary(n, 4)
        adv.bind([type("S", (), {"progress": float(i)})() for i in range(n)])
        # within one window the backbone part is identical
        e1 = {tuple(e) for e in adv.edges(1)}
        e2 = {tuple(e) for e in adv.edges(2)}
        assert e1 <= e2 or e2 <= e1

    def test_invalid_T(self):
        with pytest.raises(ScheduleError):
            WindowedThrottleAdversary(5, 0)


class TestEdgeChurn:
    def test_backbone_always_present(self, rng):
        backbone = random_tree_graph(15, rng)
        adv = EdgeChurnAdversary(15, backbone, seed=2)
        backbone_set = {tuple(e) for e in adv.edges(1)}
        for e in backbone:
            assert tuple(e) in backbone_set

    def test_dwell_blocks_stable(self, rng):
        backbone = random_tree_graph(15, rng)
        adv = EdgeChurnAdversary(15, backbone, dwell=5, seed=2)
        # rounds 0..4 share a block; 5..9 another (r // dwell)
        assert (adv.edges(1) == adv.edges(4)).all()

    def test_promise_every_T(self, rng):
        backbone = random_tree_graph(15, rng)
        adv = EdgeChurnAdversary(15, backbone, seed=2)
        ok, _ = verify_t_interval_connectivity(adv, 7, horizon=30)
        assert ok

    def test_explicit_candidates(self, rng):
        backbone = random_tree_graph(6, rng)
        adv = EdgeChurnAdversary(6, backbone, candidates=[(0, 5)], p_on=1.0)
        assert [0, 5] in adv.edges(1).tolist()


class TestRepairedMobility:
    def test_positions_deterministic_and_bounded(self):
        adv = RepairedMobilityAdversary(20, T=2, seed=5)
        p1 = adv.positions(7)
        p2 = RepairedMobilityAdversary(20, T=2, seed=5).positions(7)
        assert np.allclose(p1, p2)
        assert (p1 >= 0).all() and (p1 <= 1).all()

    def test_positions_move(self):
        adv = RepairedMobilityAdversary(20, T=2, seed=5)
        assert not np.allclose(adv.positions(1), adv.positions(50))

    @pytest.mark.parametrize("T", [1, 2, 4])
    def test_promise(self, T):
        adv = RepairedMobilityAdversary(14, T=T, seed=3)
        ok, _ = verify_t_interval_connectivity(adv, T, horizon=5 * T + 8)
        assert ok

    def test_geometric_edges_respect_radius(self):
        adv = RepairedMobilityAdversary(20, T=2, radius=0.0001, seed=5)
        # With a tiny radius almost all edges come from the backbone path.
        assert len(adv.edges(1)) <= 2 * 20
