"""One-call facade over the library.

For users who want answers rather than protocol plumbing::

    from repro.api import solve
    from repro.dynamics import OverlapHandoffAdversary

    net = OverlapHandoffAdversary(100, T=2, seed=1)
    print(solve("count", net).output)                      # 100
    print(solve("max", net, inputs=range(100)).output)     # 99
    print(solve("consensus", net, inputs=["a"] * 100).output)

``solve`` picks the right core algorithm, runs the simulator with sane
stop conditions, validates unanimity, and returns a :class:`SolveResult`
with the answer and the complexity accounting.  Three knowledge modes:

* ``mode="stabilizing"`` (default) — zero knowledge; measures the round
  of the last final decision;
* ``mode="known_bound"`` — pass ``rounds_bound`` (a known upper bound on
  the dynamic diameter) for a truly halting run;
* ``mode="approx"`` (Count/Sum/Mean only) — sketch-based, pass
  ``eps``/``delta``.

For parameter studies rather than single runs, the facade also re-exports
the :mod:`repro.exec` entry points — :class:`TrialSpec` (declarative,
picklable trial descriptions), :class:`ParallelExecutor` (process-pool
execution with crash-safe resume), and :class:`ResultCache`
(content-addressed rows, so reruns only execute missing cells)::

    from repro.api import TrialSpec, ParallelExecutor

    spec = TrialSpec(schedule="lowdiam_handoff",
                     schedule_params={"n": 64, "T": 2},
                     nodes="exact_count", node_params={"n": 64},
                     max_rounds=4000, until="quiescent",
                     quiescence_window=64, oracle="count_exact")
    report = ParallelExecutor(workers=4, cache=".repro-cache").run(
        [(spec, seed) for seed in (1, 2, 3)])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ._validate import require_choice, require_positive_int
from .errors import ConfigurationError
from .exec import ParallelExecutor, ResultCache, TrialSpec
from .simnet.engine import Simulator
from .simnet.metrics import RunMetrics
from .simnet.rng import RngRegistry
from .core.approx_count import ApproxCount
from .core.consensus import ConsensusKnownBound, SublinearConsensus
from .core.exact_count import ExactCount, ExactCountKnownBound
from .core.generalized import ApproxMean, ApproxSum, LeaderElect, TopK
from .core.max_compute import MaxKnownBound, SublinearMax

__all__ = ["solve", "SolveResult", "PROBLEMS",
           "TrialSpec", "ParallelExecutor", "ResultCache"]

PROBLEMS = ("count", "max", "consensus", "sum", "mean", "top_k", "leader")


@dataclass(frozen=True)
class SolveResult:
    """Outcome of :func:`solve`.

    Attributes
    ----------
    output:
        The unanimous answer.
    decision_round:
        Round by which every node had fixed its final decision.
    rounds_executed:
        Total rounds the simulation ran (≥ ``decision_round`` for
        stabilizing runs, which wait out a quiescence window).
    metrics:
        Full complexity accounting.
    """

    output: Any
    decision_round: int
    rounds_executed: int
    metrics: RunMetrics

    def __str__(self) -> str:
        return (f"{self.output!r} (decided by round {self.decision_round}, "
                f"{self.metrics.broadcast_bits} bits broadcast)")


def _build_nodes(problem: str, n: int, mode: str,
                 inputs: Optional[Sequence[Any]],
                 rounds_bound: Optional[int],
                 eps: float, delta: float, k: int):
    needs_inputs = problem in ("max", "consensus", "sum", "mean", "top_k")
    if needs_inputs:
        if inputs is None:
            raise ConfigurationError(
                f"problem {problem!r} needs inputs= (one value per node)")
        inputs = list(inputs)
        if len(inputs) != n:
            raise ConfigurationError(
                f"inputs has {len(inputs)} values for {n} nodes")
    if mode == "known_bound":
        if rounds_bound is None:
            raise ConfigurationError(
                "mode='known_bound' needs rounds_bound= (a bound >= d)")
        require_positive_int(rounds_bound, "rounds_bound")

    if problem == "count":
        if mode == "approx":
            return [ApproxCount(i, eps=eps, delta=delta) for i in range(n)]
        if mode == "known_bound":
            return [ExactCountKnownBound(i, rounds_bound) for i in range(n)]
        return [ExactCount(i) for i in range(n)]
    if problem == "max":
        if mode == "known_bound":
            return [MaxKnownBound(i, inputs[i], rounds_bound)
                    for i in range(n)]
        return [SublinearMax(i, inputs[i]) for i in range(n)]
    if problem == "consensus":
        if mode == "known_bound":
            return [ConsensusKnownBound(i, inputs[i], rounds_bound)
                    for i in range(n)]
        return [SublinearConsensus(i, inputs[i]) for i in range(n)]
    if problem == "sum":
        return [ApproxSum(i, float(inputs[i]), eps=eps, delta=delta)
                for i in range(n)]
    if problem == "mean":
        return [ApproxMean(i, float(inputs[i]), eps=eps, delta=delta)
                for i in range(n)]
    if problem == "top_k":
        return [TopK(i, inputs[i], k=k) for i in range(n)]
    # leader
    return [LeaderElect(i) for i in range(n)]


def solve(problem: str, schedule, inputs: Optional[Sequence[Any]] = None,
          mode: str = "stabilizing", rounds_bound: Optional[int] = None,
          eps: float = 0.25, delta: float = 0.05, k: int = 3,
          seed: int = 0, max_rounds: Optional[int] = None,
          quiescence_window: int = 64) -> SolveResult:
    """Solve *problem* on *schedule* and return the unanimous answer.

    Parameters
    ----------
    problem:
        One of :data:`PROBLEMS`.
    schedule:
        Any :class:`~repro.dynamics.schedule.GraphSchedule`.
    inputs:
        Per-node inputs (by node index), required for max / consensus /
        sum / mean / top_k.
    mode:
        ``"stabilizing"`` (default), ``"known_bound"``, or ``"approx"``
        (count only; sum/mean are inherently approximate).
    rounds_bound, eps, delta, k, seed:
        Mode-specific knobs (see the module docstring).
    max_rounds:
        Simulation budget; defaults to ``40·N + 4000``.
    """
    require_choice(problem, "problem", PROBLEMS)
    require_choice(mode, "mode", ("stabilizing", "known_bound", "approx"))
    if mode == "approx" and problem not in ("count",):
        raise ConfigurationError(
            "mode='approx' applies to 'count' (sum/mean are always "
            "sketch-based; the others are exact)")
    n = schedule.num_nodes
    nodes = _build_nodes(problem, n, mode, inputs, rounds_bound,
                         eps, delta, k)
    if max_rounds is None:
        max_rounds = 40 * n + 4000
    sim = Simulator(schedule, nodes, rng=RngRegistry(seed))
    if mode == "known_bound":
        result = sim.run(max_rounds=max_rounds, until="halted")
    else:
        result = sim.run(max_rounds=max_rounds, until="quiescent",
                         quiescence_window=quiescence_window)
    output = result.unanimous_output()
    return SolveResult(
        output=output,
        decision_round=int(result.metrics.last_decision_round or 0),
        rounds_executed=result.rounds,
        metrics=result.metrics,
    )
