"""S6 — analysis utilities for the reconstructed evaluation.

* :mod:`~repro.analysis.complexity` — closed-form round-complexity
  predictors for every algorithm (what theory says the curves should be)
  and crossover computation;
* :mod:`~repro.analysis.fitting` — log-log slope estimation (the
  "exponent" each measured curve exhibits, for F1);
* :mod:`~repro.analysis.stats` — replicate summaries (mean / std /
  confidence intervals);
* :mod:`~repro.analysis.tables` — ASCII / Markdown / CSV table rendering;
* :mod:`~repro.analysis.plotting` — dependency-free ASCII charts for the
  figure experiments (matplotlib is not available offline).
"""

from .complexity import (
    klo_rounds,
    flood_rounds,
    quiescence_rounds_bound,
    tdm_rounds_bound,
    crossover_n,
)
from .fitting import loglog_slope, power_law_fit
from .stats import summarize, Summary
from .tables import render_table, render_markdown, rows_to_csv
from .plotting import ascii_plot, ascii_series
from .graphstats import (
    characterize,
    degree_stats,
    edge_churn_rate,
    spectral_gap,
)
from .comparisons import Comparison, bootstrap_diff_ci, compare, mann_whitney

__all__ = [
    "klo_rounds",
    "flood_rounds",
    "quiescence_rounds_bound",
    "tdm_rounds_bound",
    "crossover_n",
    "loglog_slope",
    "power_law_fit",
    "summarize",
    "Summary",
    "render_table",
    "render_markdown",
    "rows_to_csv",
    "ascii_plot",
    "ascii_series",
    "characterize",
    "degree_stats",
    "edge_churn_rate",
    "spectral_gap",
    "Comparison",
    "bootstrap_diff_ci",
    "compare",
    "mann_whitney",
]
