"""Schedule characterisation: degree, churn, and spectral statistics.

Evaluation sections of dynamic-network papers characterise their
adversaries with a few structural numbers; this module computes them for
any :class:`~repro.dynamics.schedule.GraphSchedule`:

* :func:`degree_stats` — min/mean/max degree over a window of rounds;
* :func:`edge_churn_rate` — 1 − Jaccard similarity of consecutive edge
  sets, averaged (0 = static, → 1 = fully fresh every round);
* :func:`spectral_gap` — the algebraic connectivity (second-smallest
  normalised-Laplacian eigenvalue, via SciPy) averaged over rounds: the
  per-round mixing strength that explains why "fresh random" adversaries
  have tiny dynamic diameters;
* :func:`characterize` — all of the above plus the exact dynamic
  diameter, as one row ready for a results table.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .._validate import require_positive_int
from ..dynamics.diameter import dynamic_diameter
from ..dynamics.schedule import GraphSchedule

__all__ = ["degree_stats", "edge_churn_rate", "spectral_gap", "characterize"]


def degree_stats(schedule: GraphSchedule, rounds: int = 16) -> Dict[str, float]:
    """Min / mean / max node degree over the first *rounds* rounds."""
    require_positive_int(rounds, "rounds")
    mins, means, maxes = [], [], []
    for r in range(1, rounds + 1):
        deg = schedule.degrees(r)
        mins.append(float(deg.min()))
        means.append(float(deg.mean()))
        maxes.append(float(deg.max()))
    return {
        "degree_min": min(mins),
        "degree_mean": float(np.mean(means)),
        "degree_max": max(maxes),
    }


def edge_churn_rate(schedule: GraphSchedule, rounds: int = 16) -> float:
    """Mean ``1 - |E_r ∩ E_{r+1}| / |E_r ∪ E_{r+1}|`` over the window.

    0 for a static schedule; close to 1 when each round's edge set is
    almost disjoint from the previous round's.
    """
    require_positive_int(rounds, "rounds")
    if rounds < 2:
        return 0.0
    n = schedule.num_nodes
    rates = []
    prev = None
    for r in range(1, rounds + 1):
        edges = schedule.edges(r)
        current = set((edges[:, 0].astype(np.int64) * n + edges[:, 1]).tolist())
        if prev is not None:
            union = prev | current
            if union:
                rates.append(1.0 - len(prev & current) / len(union))
            else:
                rates.append(0.0)
        prev = current
    return float(np.mean(rates)) if rates else 0.0


def spectral_gap(schedule: GraphSchedule, rounds: int = 8) -> float:
    """Mean algebraic connectivity (λ₂ of the normalised Laplacian).

    Computed densely with :func:`numpy.linalg.eigvalsh` — fine for the
    evaluation's sizes (N ≤ a few thousand); 0 whenever a round's graph
    is disconnected.
    """
    require_positive_int(rounds, "rounds")
    n = schedule.num_nodes
    if n == 1:
        return 0.0
    gaps = []
    for r in range(1, rounds + 1):
        edges = schedule.edges(r)
        adj = np.zeros((n, n), dtype=np.float64)
        if edges.size:
            adj[edges[:, 0], edges[:, 1]] = 1.0
            adj[edges[:, 1], edges[:, 0]] = 1.0
        deg = adj.sum(axis=1)
        with np.errstate(divide="ignore"):
            inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-12)),
                                0.0)
        lap = np.eye(n) - inv_sqrt[:, None] * adj * inv_sqrt[None, :]
        # isolated nodes give a 0 row in adj -> their Laplacian row is e_i,
        # eigenvalue 1; connectivity detection still works via lambda_2=0
        # only for disconnected-but-nonisolated structure, so guard:
        if (deg == 0).any():
            gaps.append(0.0)
            continue
        eigs = np.linalg.eigvalsh(lap)
        gaps.append(float(max(0.0, eigs[1])))
    return float(np.mean(gaps))


def characterize(schedule: GraphSchedule, rounds: int = 16,
                 include_spectral: bool = True,
                 diameter: Optional[int] = None) -> Dict[str, float]:
    """One characterisation row: degrees, churn, spectral gap, diameter."""
    row: Dict[str, float] = {}
    row.update(degree_stats(schedule, rounds))
    row["edge_churn"] = edge_churn_rate(schedule, rounds)
    if include_spectral:
        row["spectral_gap"] = spectral_gap(schedule, min(rounds, 8))
    row["dynamic_diameter"] = float(
        dynamic_diameter(schedule) if diameter is None else diameter)
    return row
