"""Power-law fits for the scaling figures.

Experiment F1 reports, for each algorithm, the exponent ``b`` of the best
power-law fit ``rounds ≈ a · N^b`` over the measured ``(N, rounds)``
points — ``b ≈ 2`` for KLO, ``b ≈ 1`` for flooding, ``b ≈ 0`` (polylog)
for the core algorithms on low-diameter dynamics.  Fitting happens in
log-log space with ordinary least squares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["loglog_slope", "power_law_fit", "PowerLawFit"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``y ≈ coefficient · x^exponent``.

    ``r_squared`` is the coefficient of determination in log-log space.
    """

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted law at *x*."""
        return self.coefficient * float(x) ** self.exponent


def _validate(xs: Sequence[float], ys: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"xs and ys must be equal-length 1-D, got {x.shape} vs {y.shape}")
    if len(x) < 2:
        raise ValueError("need at least 2 points to fit")
    if (x <= 0).any() or (y <= 0).any():
        raise ValueError("power-law fits need strictly positive data")
    return x, y


def power_law_fit(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """OLS fit of ``log y = log a + b log x``; returns (b, a, R²)."""
    x, y = _validate(xs, ys)
    lx, ly = np.log(x), np.log(y)
    b, loga = np.polyfit(lx, ly, 1)
    resid = ly - (loga + b * lx)
    ss_res = float((resid ** 2).sum())
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=float(b), coefficient=float(np.exp(loga)),
                       r_squared=r2)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Just the exponent ``b`` of :func:`power_law_fit`."""
    return power_law_fit(xs, ys).exponent
