"""Closed-form round-complexity predictors.

One function per algorithm family, each returning the number of rounds
theory predicts for given model parameters.  The evaluation overlays
these on the measured curves: reproduction success is the *shape match*
(who wins, what slope, where curves cross), not absolute constants.

============================  =====================================
algorithm                     predictor
============================  =====================================
KLO k-committee Count         :func:`klo_rounds` — exact, ``Θ(N²)``
flooding Max/Consensus        :func:`flood_rounds` — ``N - 1``
(known ``N``)
quiescence-controlled core    :func:`quiescence_rounds_bound` —
(stabilizing, zero knowledge)  ``≤ (1 + growth)·d + O(1)``
TDM-pipelined sketch          :func:`tdm_rounds_bound` —
                               ``d·⌈k/w⌉ + window``
============================  =====================================
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from .._validate import require_positive_int
from ..baselines.klo import total_rounds_prediction

__all__ = [
    "klo_rounds",
    "flood_rounds",
    "quiescence_rounds_bound",
    "tdm_rounds_bound",
    "crossover_n",
]


def klo_rounds(n: int, initial_guess: int = 1) -> int:
    """Exact rounds of :class:`~repro.baselines.klo.KCommitteeCount`.

    The algorithm is deterministic and topology-oblivious, so this is an
    equality, not a bound (verified by the integration tests); asymptotic
    order ``Θ(N²)``.
    """
    return total_rounds_prediction(n, initial_guess)


def flood_rounds(n: int) -> int:
    """Rounds of the known-``N`` flooding baselines: exactly ``N - 1``."""
    require_positive_int(n, "n")
    return max(1, n - 1)


def quiescence_rounds_bound(d: int, growth: int = 2,
                            initial_window: int = 1) -> int:
    """Upper bound on last-final-decision round for the stabilizing core.

    From the proof in :mod:`repro.core.termination`: last state change at
    round ``≤ d``; retraction windows sum to ``< d`` so the final window
    is ``< growth · d`` (but at least ``initial_window``); the final
    decision lands within that window after the last change.
    """
    require_positive_int(d, "d")
    return d + max(initial_window, growth * d) + 1


def tdm_rounds_bound(d: int, width: int, words_per_message: int,
                     initial_window: Optional[int] = None) -> int:
    """Upper bound for TDM-pipelined sketch aggregation.

    Each coordinate's min-flood progresses once per ``⌈k/w⌉``-round
    cycle, so convergence within ``d`` cycles; add the quiescence window
    (defaulting to one cycle) for the decision.
    """
    require_positive_int(d, "d")
    cycle = math.ceil(width / words_per_message)
    window = cycle if initial_window is None else initial_window
    return d * cycle + window + 1


def crossover_n(f: Callable[[int], float], g: Callable[[int], float],
                n_min: int = 2, n_max: int = 1 << 22) -> Optional[int]:
    """Smallest ``n`` in ``[n_min, n_max]`` with ``f(n) < g(n)``.

    Used by experiment F5 to locate where the core algorithms start
    beating each baseline.  Linear scan with geometric refinement: first
    find a power-of-two bracket, then binary-search the first crossing
    inside it (assumes ``g - f`` changes sign at most once in the
    bracket, which holds for the monotone-difference curves compared
    here).  Returns ``None`` if no crossover occurs in range.
    """
    if n_min > n_max:
        raise ValueError(f"n_min {n_min} > n_max {n_max}")
    if f(n_min) < g(n_min):
        return n_min
    lo = n_min
    hi = n_min
    while True:
        hi = min(max(hi * 2, n_min + 1), n_max)
        if f(hi) < g(hi):
            break
        if hi == n_max:
            return None
        lo = hi
    # binary search the first n in (lo, hi] with f(n) < g(n)
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if f(mid) < g(mid):
            hi = mid
        else:
            lo = mid
    return hi
