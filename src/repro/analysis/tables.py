"""Table rendering for experiment output.

Experiments produce rows as lists of dicts; these helpers render them as
aligned ASCII (for the terminal / bench logs), GitHub Markdown (for
EXPERIMENTS.md), and CSV (for archival under ``results/``).
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "render_markdown", "rows_to_csv"]


def _columns(rows: Sequence[Dict[str, object]],
             columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    seen: List[str] = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def _fmt(value: object, float_fmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def render_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_fmt: str = ".4g",
                 title: Optional[str] = None) -> str:
    """Aligned fixed-width ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = _columns(rows, columns)
    cells = [[_fmt(row.get(c), float_fmt) for c in cols] for row in rows]
    widths = [max(len(c), *(len(line[i]) for line in cells))
              for i, c in enumerate(cols)]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for line in cells:
        out.write("  ".join(line[i].ljust(widths[i])
                            for i in range(len(cols))) + "\n")
    return out.getvalue().rstrip("\n")


def render_markdown(rows: Sequence[Dict[str, object]],
                    columns: Optional[Sequence[str]] = None,
                    float_fmt: str = ".4g") -> str:
    """GitHub-flavoured Markdown table.

    Literal ``|`` characters in cell values are escaped so free-text
    columns (e.g. claim evidence strings) cannot break the row grid.
    """
    if not rows:
        return "(no rows)"

    def cell(value: object) -> str:
        return _fmt(value, float_fmt).replace("|", "\\|")

    cols = _columns(rows, columns)
    out = io.StringIO()
    out.write("| " + " | ".join(cols) + " |\n")
    out.write("|" + "|".join("---" for _ in cols) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(cell(row.get(c)) for c in cols) + " |\n")
    return out.getvalue().rstrip("\n")


def rows_to_csv(rows: Sequence[Dict[str, object]],
                columns: Optional[Sequence[str]] = None) -> str:
    """CSV text (RFC-ish quoting via the stdlib csv module)."""
    import csv

    cols = _columns(rows, columns) if rows else list(columns or [])
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=cols, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({c: row.get(c) for c in cols})
    return out.getvalue()
