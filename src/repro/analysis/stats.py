"""Replicate summaries for the experiment harness.

Every experiment runs several seeds; :func:`summarize` condenses the
replicate values into mean / standard deviation / a Student-t confidence
interval (SciPy), which is what the tables report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Mean/std/CI of one measured quantity across replicates."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float

    def __str__(self) -> str:
        if self.n == 1:
            return f"{self.mean:.6g}"
        return f"{self.mean:.6g} ± {self.ci_high - self.mean:.2g}"


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Summarise replicate *values* with a ``confidence`` t-interval.

    With one replicate the interval degenerates to the point itself.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return Summary(1, mean, 0.0, mean, mean, mean, mean, confidence)
    std = float(arr.std(ddof=1))
    from scipy.stats import t

    half = float(t.ppf(0.5 + confidence / 2.0, df=arr.size - 1)
                 * std / math.sqrt(arr.size))
    return Summary(
        n=int(arr.size), mean=mean, std=std,
        minimum=float(arr.min()), maximum=float(arr.max()),
        ci_low=mean - half, ci_high=mean + half, confidence=confidence,
    )
