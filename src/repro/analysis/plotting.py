"""Dependency-free ASCII charts.

matplotlib is unavailable offline, so the figure experiments render their
series as terminal scatter/line charts: logarithmic or linear axes, one
glyph per series, a legend, and axis tick labels.  The output is plain
text suitable for bench logs and EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ascii_plot", "ascii_series"]

_GLYPHS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError(f"log axis requires positive values, got {value}")
        return math.log10(value)
    return value


def _ticks(lo: float, hi: float, log: bool, count: int) -> List[float]:
    if count < 2:
        count = 2
    raw = [lo + (hi - lo) * i / (count - 1) for i in range(count)]
    return [10 ** v if log else v for v in raw]


def ascii_series(xs: Sequence[float], ys: Sequence[float], **kwargs) -> str:
    """Single-series convenience wrapper over :func:`ascii_plot`."""
    return ascii_plot({"series": (list(xs), list(ys))}, **kwargs)


def ascii_plot(series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
               width: int = 72, height: int = 20,
               logx: bool = False, logy: bool = False,
               xlabel: str = "x", ylabel: str = "y",
               title: Optional[str] = None) -> str:
    """Render named ``(xs, ys)`` series as an ASCII scatter chart.

    Parameters
    ----------
    series:
        Mapping series-name → (xs, ys); up to 8 series get distinct glyphs.
    width, height:
        Plot-area size in characters.
    logx, logy:
        Logarithmic axes (all values must then be positive).
    """
    if not series:
        raise ValueError("series must be non-empty")
    if len(series) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} series supported")
    pts: List[Tuple[str, float, float]] = []
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: xs and ys lengths differ")
        for x, y in zip(xs, ys):
            pts.append((name, _transform(float(x), logx),
                        _transform(float(y), logy)))
    if not pts:
        raise ValueError("no data points")
    tx = [p[1] for p in pts]
    ty = [p[2] for p in pts]
    x_lo, x_hi = min(tx), max(tx)
    y_lo, y_hi = min(ty), max(ty)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    glyph_of = {name: _GLYPHS[i] for i, name in enumerate(series)}
    for name, x, y in pts:
        col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
        grid[height - 1 - row][col] = glyph_of[name]

    def fmt(v: float) -> str:
        return f"{v:.3g}"

    y_ticks = _ticks(y_lo, y_hi, logy, 5)
    x_ticks = _ticks(x_lo, x_hi, logx, 5)
    label_w = max(len(fmt(v)) for v in y_ticks)

    lines: List[str] = []
    if title:
        lines.append(title)
    tick_rows = {0: y_ticks[4], (height - 1) // 4: y_ticks[3],
                 (height - 1) // 2: y_ticks[2],
                 3 * (height - 1) // 4: y_ticks[1],
                 height - 1: y_ticks[0]}
    for r in range(height):
        label = fmt(tick_rows[r]) if r in tick_rows else ""
        lines.append(label.rjust(label_w) + " |" + "".join(grid[r]))
    lines.append(" " * label_w + " +" + "-" * width)
    # x tick labels spread under the axis
    tick_line = [" "] * (width + label_w + 2)
    for i, v in enumerate(x_ticks):
        pos = label_w + 2 + int(i * (width - 1) / (len(x_ticks) - 1))
        text = fmt(v)
        for j, ch in enumerate(text):
            k = min(pos + j, len(tick_line) - 1)
            tick_line[k] = ch
    lines.append("".join(tick_line))
    axes = f"{'log ' if logx else ''}{xlabel} vs {'log ' if logy else ''}{ylabel}"
    legend = "   ".join(f"{glyph_of[name]}={name}" for name in series)
    lines.append(f"[{axes}]  {legend}")
    return "\n".join(lines)
