"""Statistical comparison of algorithms across replicate runs.

T2/T3-style tables report per-algorithm means; when two variants are
close, the evaluation needs a defensible statement about whether the
difference is real.  This module provides the two standard tools:

* :func:`mann_whitney` — the non-parametric Mann–Whitney U test on two
  replicate samples (rounds are discrete and skewed, so rank-based
  beats a t-test here);
* :func:`bootstrap_diff_ci` — a seeded percentile-bootstrap confidence
  interval for the difference of means (effect *size*, which a p-value
  alone does not give);
* :func:`compare` — both at once, flattened into a results row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from .._validate import require_positive_int, require_probability

__all__ = ["Comparison", "mann_whitney", "bootstrap_diff_ci", "compare"]


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing samples A and B (e.g. rounds of two variants).

    ``diff_*`` fields describe ``mean(A) - mean(B)``: negative means A is
    faster/smaller.  ``significant`` applies the caller's alpha to the
    Mann–Whitney p-value.
    """

    mean_a: float
    mean_b: float
    diff: float
    diff_ci_low: float
    diff_ci_high: float
    u_statistic: float
    p_value: float
    significant: bool

    def as_row(self) -> Dict[str, object]:
        """Flatten for results tables."""
        return {
            "mean_a": self.mean_a,
            "mean_b": self.mean_b,
            "diff": self.diff,
            "diff_ci": f"[{self.diff_ci_low:.4g}, {self.diff_ci_high:.4g}]",
            "p_value": self.p_value,
            "significant": self.significant,
        }


def _clean(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size < 2:
        raise ValueError(f"{name} needs at least 2 replicates, got {arr.size}")
    return arr


def mann_whitney(a: Sequence[float],
                 b: Sequence[float]) -> Tuple[float, float]:
    """Two-sided Mann–Whitney U test; returns ``(U, p_value)``."""
    from scipy.stats import mannwhitneyu

    arr_a, arr_b = _clean(a, "a"), _clean(b, "b")
    result = mannwhitneyu(arr_a, arr_b, alternative="two-sided")
    return float(result.statistic), float(result.pvalue)


def bootstrap_diff_ci(a: Sequence[float], b: Sequence[float],
                      confidence: float = 0.95, resamples: int = 10_000,
                      seed: int = 0) -> Tuple[float, float]:
    """Percentile bootstrap CI for ``mean(a) - mean(b)`` (seeded)."""
    require_probability(confidence, "confidence")
    require_positive_int(resamples, "resamples")
    arr_a, arr_b = _clean(a, "a"), _clean(b, "b")
    rng = np.random.default_rng(seed)
    idx_a = rng.integers(0, arr_a.size, size=(resamples, arr_a.size))
    idx_b = rng.integers(0, arr_b.size, size=(resamples, arr_b.size))
    diffs = arr_a[idx_a].mean(axis=1) - arr_b[idx_b].mean(axis=1)
    lo = float(np.quantile(diffs, (1 - confidence) / 2))
    hi = float(np.quantile(diffs, 1 - (1 - confidence) / 2))
    return lo, hi


def compare(a: Sequence[float], b: Sequence[float], alpha: float = 0.05,
            confidence: float = 0.95, resamples: int = 10_000,
            seed: int = 0) -> Comparison:
    """Full comparison of replicate samples A and B (see module docs)."""
    require_probability(alpha, "alpha")
    arr_a, arr_b = _clean(a, "a"), _clean(b, "b")
    u, p = mann_whitney(arr_a, arr_b)
    lo, hi = bootstrap_diff_ci(arr_a, arr_b, confidence=confidence,
                               resamples=resamples, seed=seed)
    return Comparison(
        mean_a=float(arr_a.mean()),
        mean_b=float(arr_b.mean()),
        diff=float(arr_a.mean() - arr_b.mean()),
        diff_ci_low=lo,
        diff_ci_high=hi,
        u_statistic=u,
        p_value=p,
        significant=bool(p < alpha),
    )
