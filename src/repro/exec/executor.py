"""Process-pool experiment executor.

:class:`ParallelExecutor` runs a list of *cells* — ``(TrialSpec, seed)``
pairs — through up to four result sources, cheapest first:

1. the **journal** (``resume=True``): cells completed by a previous,
   possibly crashed, run of the same sweep;
2. the **result cache**: content-addressed rows from *any* previous run
   sharing the cache directory;
3. **deduplication**: identical cells inside one sweep execute once;
4. **execution**: serial in-process when ``workers <= 1``, otherwise a
   ``concurrent.futures.ProcessPoolExecutor``.

Determinism guarantee: a cell's row depends only on (spec, seed) — every
trial derives all randomness from ``RngRegistry(seed)`` inside
:func:`repro.harness.runner.run_trial` — and rows are assembled in input
order, so ``workers=4`` output is byte-identical to ``workers=1`` output
(asserted by the test suite).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .._validate import require_choice
from ..errors import ConfigurationError, ReproError
from .cache import ResultCache
from .journal import SweepJournal
from .progress import ConsoleProgress, ProgressCallback, ProgressSnapshot
from .specs import TrialSpec

__all__ = ["Cell", "ExecutionError", "ExecutionReport", "ExecOptions",
           "ParallelExecutor", "execute_cell"]

Cell = Tuple[TrialSpec, int]


class ExecutionError(ReproError):
    """A cell raised and the executor was configured to stop."""


def execute_cell(spec: TrialSpec, seed: int) -> Dict[str, Any]:
    """Run one cell and return its *measured* row (tags not merged).

    This is the unit of work shipped to worker processes; it is also the
    unit that gets cached, which is why tags — pure row labels — are
    merged only afterwards, letting relabelled grids share cache entries.

    The spec is handed to :func:`~repro.harness.runner.run_trial`
    unresolved so the runner can stamp event streams with the spec's
    label and content-address hash (see :mod:`repro.obs`).
    """
    from ..harness.runner import run_trial

    return run_trial(spec, seed).as_row()


def _record_worker_phases(row: Dict[str, Any]) -> None:
    """Fold a worker-executed row's ``phase.*`` timings and ``engine.*``
    tier counts into the parent process's accumulators (worker-side
    accumulators die with the pool)."""
    phases = {key[len("phase."):-len("_s")]: value
              for key, value in row.items()
              if key.startswith("phase.") and key.endswith("_s")
              and isinstance(value, (int, float))}
    if phases:
        from ..harness.runner import record_phase_seconds

        record_phase_seconds(phases)
    tiers = {key[len("engine."):-len("_rounds")]: value
             for key, value in row.items()
             if key.startswith("engine.") and key.endswith("_rounds")
             and isinstance(value, int)}
    if tiers:
        from ..harness.runner import record_engine_stats

        record_engine_stats(tiers)


def _pool_run_cell(payload: Cell) -> Tuple[str, Any]:
    """Worker-process entry point: never raises across the pipe."""
    spec, seed = payload
    try:
        return "ok", execute_cell(spec, seed)
    except Exception as exc:  # noqa: BLE001 - faithfully forwarded
        return "error", f"{type(exc).__name__}: {exc}"


def _error_row(seed: int, message: str) -> Dict[str, Any]:
    return {"seed": seed, "error": message}


@dataclass
class ExecutionReport:
    """Outcome of one :meth:`ParallelExecutor.run` call.

    ``rows`` is in input-cell order with each spec's tags merged in;
    the counters satisfy ``executed + cache_hits + resumed + deduped ==
    total`` on a clean run.
    """

    rows: List[Dict[str, Any]] = field(default_factory=list)
    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    deduped: int = 0
    errors: int = 0
    elapsed: float = 0.0

    def summary(self) -> str:
        """One-line accounting string for logs and the CLI."""
        return (f"{self.total} rows in {self.elapsed:.1f}s "
                f"(executed {self.executed}, cache {self.cache_hits}, "
                f"resumed {self.resumed}, deduped {self.deduped}, "
                f"errors {self.errors})")


@dataclass(frozen=True)
class ExecOptions:
    """Executor knobs threaded through the harness and CLIs.

    A plain bag of settings so experiment functions can accept one
    optional argument instead of five; ``None`` everywhere means the
    historical serial behaviour.
    """

    workers: int = 1
    cache_dir: Optional[str] = None
    journal_dir: Optional[str] = None
    resume: bool = False
    on_error: str = "raise"
    progress: bool = False

    def make_executor(self, label: str = "sweep") -> "ParallelExecutor":
        """Build the executor these options describe.

        *label* names the journal file (``<journal_dir>/<label>.jsonl``)
        and the console progress prefix.
        """
        journal = None
        if self.journal_dir is not None:
            journal = os.path.join(self.journal_dir, f"{label}.jsonl")
        return ParallelExecutor(
            workers=self.workers,
            cache=self.cache_dir,
            journal=journal,
            resume=self.resume,
            on_error=self.on_error,
            progress=ConsoleProgress(label) if self.progress else None,
        )


class ParallelExecutor:
    """Run trial cells across worker processes with caching and resume.

    Parameters
    ----------
    workers:
        Process count; ``<= 1`` runs serially in-process (no pool, no
        pickling — the historical code path).
    cache:
        A :class:`ResultCache`, a cache-directory path, or ``None``.
    journal:
        A :class:`SweepJournal`, a journal-file path, or ``None``.
        Completions are appended as they happen, so a crashed run is
        resumable from its journal.
    resume:
        Replay the journal before executing anything; only cells absent
        from it run.
    on_error:
        ``"raise"`` (default) aborts on the first failing cell — already
        completed cells stay journaled/cached, so the sweep is
        resumable; ``"record"`` captures the failure into an ``error``
        column and keeps going.
    progress:
        Optional callback receiving :class:`ProgressSnapshot` updates.
    """

    def __init__(self, workers: int = 1,
                 cache: Optional[Any] = None,
                 journal: Optional[Any] = None,
                 resume: bool = False,
                 on_error: str = "raise",
                 progress: Optional[ProgressCallback] = None) -> None:
        self.workers = max(1, int(workers))
        self.cache: Optional[ResultCache] = (
            ResultCache(cache) if isinstance(cache, (str, os.PathLike))
            else cache)
        self.journal: Optional[SweepJournal] = (
            SweepJournal(journal) if isinstance(journal, (str, os.PathLike))
            else journal)
        self.resume = bool(resume)
        self.on_error = require_choice(on_error, "on_error",
                                       ("raise", "record"))
        self.progress = progress

    # -- main entry point --------------------------------------------------

    def run(self, cells: Sequence[Cell]) -> ExecutionReport:
        """Execute *cells*, returning rows in input order."""
        cells = list(cells)
        for spec, seed in cells:
            if not isinstance(spec, TrialSpec):
                raise ConfigurationError(
                    "ParallelExecutor cells must be (TrialSpec, seed) "
                    f"pairs; got {type(spec).__name__} — lambda-based "
                    "TrialConfig objects cannot cross process boundaries "
                    "or be content-addressed")
        report = ExecutionReport(total=len(cells))
        started = time.monotonic()
        keys = [self._key(spec, seed) for spec, seed in cells]

        # Result slots by input index; filled from journal, cache, then
        # execution.  A separate per-key index drives deduplication.
        results: Dict[int, Dict[str, Any]] = {}
        by_key: Dict[str, List[int]] = {}
        for idx, key in enumerate(keys):
            by_key.setdefault(key, []).append(idx)

        journaled = (self.journal.load()
                     if (self.resume and self.journal is not None) else {})
        pending: List[int] = []     # first index of each key still to run
        for key, idxs in by_key.items():
            row = journaled.get(key)
            if row is not None:
                report.resumed += 1
            elif self.cache is not None:
                row = self.cache.get(key)
                if row is not None:
                    report.cache_hits += 1
                    self._journal(key, row)
            if row is not None:
                for idx in idxs:
                    results[idx] = row
            else:
                pending.append(idxs[0])
            report.deduped += len(idxs) - 1

        self._notify(report, started, results, ())
        try:
            if pending:
                if self.workers == 1 or len(pending) == 1:
                    self._run_serial(cells, keys, by_key, pending,
                                     results, report, started)
                else:
                    self._run_pool(cells, keys, by_key, pending,
                                   results, report, started)
        finally:
            if self.journal is not None:
                self.journal.close()

        report.rows = [
            {**results[idx], **dict(cells[idx][0].tags)}
            for idx in range(len(cells))
        ]
        report.elapsed = time.monotonic() - started
        self._notify(report, started, results, ())
        return report

    # -- result-source helpers ---------------------------------------------

    def _key(self, spec: TrialSpec, seed: int) -> str:
        if self.cache is not None:
            return self.cache.key(spec, seed)
        return spec.key(seed)

    def _journal(self, key: str, row: Dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.append(key, row)

    def _complete(self, key: str, row: Dict[str, Any],
                  by_key: Dict[str, List[int]],
                  results: Dict[int, Dict[str, Any]],
                  cacheable: bool = True) -> None:
        for idx in by_key[key]:
            results[idx] = row
        # Profiled trials carry wall-clock phase.* columns and engine.*
        # tier counts; recorded trials carry obs.* event counters and
        # cache.* hit/miss counters.  None of that is deterministic row
        # data (the tier split and cache behaviour are implementation
        # observables that may change across engine versions, and
        # recording is a run-mode choice), so it stays in the in-memory
        # rows but never enters the journal or the content-addressed
        # cache — which promise identical rows for identical
        # (spec, seed), however the row was produced.
        from ..harness.runner import durable_row

        durable = durable_row(row)
        self._journal(key, durable)
        if cacheable and self.cache is not None:
            self.cache.put(key, durable)

    def _notify(self, report: ExecutionReport, started: float,
                results: Dict[int, Dict[str, Any]],
                in_flight: Tuple[str, ...]) -> None:
        if self.progress is None:
            return
        self.progress(ProgressSnapshot(
            total=report.total,
            done=len(results),
            executed=report.executed,
            cache_hits=report.cache_hits,
            resumed=report.resumed,
            errors=report.errors,
            elapsed=time.monotonic() - started,
            in_flight=in_flight,
        ))

    def _failure(self, cells: Sequence[Cell], idx: int, key: str,
                 message: str, by_key: Dict[str, List[int]],
                 results: Dict[int, Dict[str, Any]],
                 report: ExecutionReport) -> None:
        spec, seed = cells[idx]
        if self.on_error == "raise":
            raise ExecutionError(
                f"cell {spec.label()} seed={seed} failed: {message} "
                f"(completed cells are journaled/cached; re-run with "
                f"resume to skip them)")
        report.errors += 1
        # Error rows are journaled (the sweep is complete on resume) but
        # never cached — a fixed bug should re-execute the cell.
        self._complete(key, _error_row(seed, message), by_key, results,
                       cacheable=False)

    # -- serial path ---------------------------------------------------------

    def _run_serial(self, cells: Sequence[Cell], keys: Sequence[str],
                    by_key: Dict[str, List[int]], pending: Sequence[int],
                    results: Dict[int, Dict[str, Any]],
                    report: ExecutionReport, started: float) -> None:
        for idx in pending:
            spec, seed = cells[idx]
            self._notify(report, started, results, (spec.label(),))
            try:
                row = execute_cell(spec, seed)
            except Exception as exc:  # noqa: BLE001
                report.executed += 1
                self._failure(cells, idx, keys[idx],
                              f"{type(exc).__name__}: {exc}",
                              by_key, results, report)
                continue
            report.executed += 1
            self._complete(keys[idx], row, by_key, results)
            self._notify(report, started, results, ())

    # -- parallel path -------------------------------------------------------

    def _run_pool(self, cells: Sequence[Cell], keys: Sequence[str],
                  by_key: Dict[str, List[int]], pending: Sequence[int],
                  results: Dict[int, Dict[str, Any]],
                  report: ExecutionReport, started: float) -> None:
        workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for idx in pending:
                spec, seed = cells[idx]
                futures[pool.submit(_pool_run_cell, (spec, seed))] = idx
            try:
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                    for fut in done:
                        idx = futures[fut]
                        status, payload = fut.result()
                        report.executed += 1
                        if status == "ok":
                            _record_worker_phases(payload)
                            self._complete(keys[idx], payload, by_key,
                                           results)
                        else:
                            self._failure(cells, idx, keys[idx], payload,
                                          by_key, results, report)
                        in_flight = tuple(
                            cells[futures[f]][0].label() for f in not_done)
                        self._notify(report, started, results, in_flight)
            except BaseException:
                for fut in futures:
                    fut.cancel()
                raise
