"""Sweep progress reporting.

The executor emits a :class:`ProgressSnapshot` after every state change
(cell dispatched, cell completed, cache hit, resume replay).  Any
callable accepting a snapshot can observe a run; :class:`ConsoleProgress`
is the built-in reporter that renders a single live status line::

    [t1] 31/45 rows | 12.4/s | ETA 0:00:01 | exec 19 cache 8 resume 4 | 4 in flight: exact_count/lowdiam_handoff[n=128] …

Rates and ETAs count *executed* cells only (cache and journal hits are
effectively free), so the ETA stays honest on warm reruns.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, TextIO, Tuple

__all__ = ["ProgressSnapshot", "ProgressCallback", "ConsoleProgress"]


@dataclass(frozen=True)
class ProgressSnapshot:
    """One observation of a running sweep."""

    total: int                       #: cells in the sweep
    done: int                        #: cells finished (any source)
    executed: int                    #: cells actually simulated this run
    cache_hits: int                  #: cells answered by the result cache
    resumed: int                     #: cells replayed from the journal
    errors: int                      #: cells that raised (on_error="record")
    elapsed: float                   #: seconds since the run started
    in_flight: Tuple[str, ...] = ()  #: labels of cells currently running

    @property
    def rate(self) -> float:
        """Executed cells per second (0 until the first completion)."""
        if self.elapsed <= 0 or self.executed == 0:
            return 0.0
        return self.executed / self.elapsed

    @property
    def eta_seconds(self) -> Optional[float]:
        """Predicted seconds to finish, from the executed-cell rate."""
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        rate = self.rate
        if rate <= 0:
            return None
        return remaining / rate


ProgressCallback = Callable[[ProgressSnapshot], None]


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--:--"
    seconds = int(seconds)
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}" if h else f"{m:02d}:{s:02d}"


class ConsoleProgress:
    """Render snapshots as a single carriage-return status line.

    Parameters
    ----------
    label:
        Prefix identifying the sweep (e.g. the experiment id).
    stream:
        Defaults to ``sys.stderr`` so progress never pollutes piped
        result output.
    min_interval:
        Minimum seconds between repaints (the final snapshot always
        paints).
    """

    def __init__(self, label: str = "sweep", stream: Optional[TextIO] = None,
                 min_interval: float = 0.1) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_paint = 0.0
        self._last_len = 0

    def __call__(self, snap: ProgressSnapshot) -> None:
        now = time.monotonic()
        finished = snap.done >= snap.total
        if not finished and now - self._last_paint < self.min_interval:
            return
        self._last_paint = now
        parts = [
            f"[{self.label}] {snap.done}/{snap.total} rows",
            f"{snap.rate:.1f}/s",
            f"ETA {_fmt_eta(snap.eta_seconds)}",
            f"exec {snap.executed} cache {snap.cache_hits} "
            f"resume {snap.resumed}",
        ]
        if snap.errors:
            parts.append(f"errors {snap.errors}")
        if snap.in_flight:
            shown = ", ".join(snap.in_flight[:3])
            more = len(snap.in_flight) - 3
            if more > 0:
                shown += f" (+{more})"
            parts.append(f"{len(snap.in_flight)} in flight: {shown}")
        line = " | ".join(parts)
        pad = max(0, self._last_len - len(line))
        self._last_len = len(line)
        end = "\n" if finished else ""
        self.stream.write("\r" + line + " " * pad + end)
        self.stream.flush()
