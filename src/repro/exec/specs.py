"""Declarative, picklable trial specifications.

A :class:`TrialSpec` is plain data: registered builder *names* plus
JSON-serializable parameter dicts.  That buys three properties the
lambda-based :class:`~repro.harness.runner.TrialConfig` cannot offer:

1. **process mobility** — a spec pickles cleanly, so trials can be
   shipped to worker processes by the
   :class:`~repro.exec.executor.ParallelExecutor`;
2. **content addressing** — :meth:`TrialSpec.key` hashes the canonical
   JSON encoding of the spec (plus seed and a code-version salt) into a
   stable cache key, the basis of :class:`~repro.exec.cache.ResultCache`;
3. **replayability** — a spec written to a journal or a spec file can be
   rebuilt and re-run bit-for-bit later (RNG derivation stays inside
   :class:`~repro.simnet.rng.RngRegistry`, never ambient).

Builder names resolve through three module-level registries — schedules,
node sets, and oracles — populated here with the builders the
reconstructed evaluation uses and extensible via the ``register_*``
decorators::

    from repro.exec import TrialSpec, register_nodes

    @register_nodes("my_nodes")
    def _my_nodes(schedule, seed, *, n):
        return [MyAlgorithm(i) for i in range(n)]

    spec = TrialSpec(schedule="fresh_spanning", schedule_params={"n": 16},
                     nodes="my_nodes", node_params={"n": 16},
                     max_rounds=4000, until="quiescent",
                     quiescence_window=32)

Custom builders must be registered in every process that executes the
spec; under the default ``fork`` start method on Linux workers inherit
the parent's registries, and the built-in builders below are registered
at import time in any case.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .._validate import require_choice, require_positive_int
from ..errors import ConfigurationError

__all__ = [
    "CODE_VERSION_SALT",
    "TrialSpec",
    "canonical_json",
    "register_schedule",
    "register_nodes",
    "register_oracle",
    "schedule_builders",
    "node_builders",
    "oracle_builders",
]

#: Version salt mixed into every cache key.  Bump whenever the semantics
#: of a builder, the simulator, or a core algorithm change in a way that
#: invalidates previously measured rows.
CODE_VERSION_SALT = "repro-exec-v1"

_UNTIL_CHOICES = ("halted", "decided", "quiescent")

# --------------------------------------------------------------------------
# builder registries
# --------------------------------------------------------------------------

ScheduleBuilder = Callable[..., object]          # (seed, **params) -> schedule
NodeBuilder = Callable[..., Sequence[Any]]       # (schedule, seed, **params)
OracleBuilder = Callable[..., bool]              # (outputs, schedule, **params)

_SCHEDULES: Dict[str, ScheduleBuilder] = {}
_NODES: Dict[str, NodeBuilder] = {}
_ORACLES: Dict[str, OracleBuilder] = {}


def _register(table: Dict[str, Any], kind: str, name: str):
    def deco(fn):
        if name in table:
            raise ConfigurationError(
                f"{kind} builder {name!r} is already registered")
        table[name] = fn
        return fn
    return deco


def register_schedule(name: str):
    """Decorator: register ``fn(seed, **params) -> schedule`` under *name*."""
    return _register(_SCHEDULES, "schedule", name)


def register_nodes(name: str):
    """Decorator: register ``fn(schedule, seed, **params) -> nodes``."""
    return _register(_NODES, "nodes", name)


def register_oracle(name: str):
    """Decorator: register ``fn(outputs, schedule, **params) -> bool``."""
    return _register(_ORACLES, "oracle", name)


def schedule_builders() -> List[str]:
    """Names of all registered schedule builders (sorted)."""
    return sorted(_SCHEDULES)


def node_builders() -> List[str]:
    """Names of all registered node-set builders (sorted)."""
    return sorted(_NODES)


def oracle_builders() -> List[str]:
    """Names of all registered oracle builders (sorted)."""
    return sorted(_ORACLES)


def _lookup(table: Mapping[str, Any], kind: str, name: str):
    try:
        return table[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown {kind} builder {name!r}; registered: "
            f"{sorted(table)}") from None


# --------------------------------------------------------------------------
# canonical encoding + hashing
# --------------------------------------------------------------------------

def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    Only plain JSON data is accepted — this is what makes spec hashes
    stable across processes and platforms.  numpy scalars, sets, and
    arbitrary objects are rejected so they cannot sneak platform- or
    process-dependent reprs into a cache key.
    """
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"spec parameters must be plain JSON data "
            f"(str/int/float/bool/None/list/dict): {exc}") from None


@dataclass(frozen=True)
class TrialSpec:
    """Everything needed to run one trial, as registry names + plain data.

    Attributes
    ----------
    schedule / schedule_params:
        Name of a registered schedule builder and its keyword params; the
        builder is called as ``builder(seed, **schedule_params)``.
    nodes / node_params:
        Name of a registered node-set builder, called as
        ``builder(schedule, seed, **node_params)``.
    max_rounds / until / quiescence_window / allow_timeout / bandwidth_bits:
        Stop configuration, exactly as on
        :class:`~repro.harness.runner.TrialConfig`.
    oracle / oracle_params:
        Optional registered correctness oracle, called as
        ``oracle(outputs, schedule, **oracle_params)``.
    tags:
        Extra row columns (e.g. the grid point) merged into the result
        row by the executor.  Tags are **excluded** from the content
        address: two specs differing only in tags share one cache entry.
    """

    schedule: str
    nodes: str
    max_rounds: int
    schedule_params: Mapping[str, Any] = field(default_factory=dict)
    node_params: Mapping[str, Any] = field(default_factory=dict)
    until: str = "halted"
    quiescence_window: int = 1
    oracle: Optional[str] = None
    oracle_params: Mapping[str, Any] = field(default_factory=dict)
    allow_timeout: bool = False
    bandwidth_bits: Optional[int] = None
    tags: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_positive_int(self.max_rounds, "max_rounds")
        require_choice(self.until, "until", _UNTIL_CHOICES)
        require_positive_int(self.quiescence_window, "quiescence_window")
        # Fail fast on unhashable params (and tags, which enter rows).
        canonical_json(self.payload())
        canonical_json(dict(self.tags))

    # -- identity ----------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """The hashed portion of the spec (everything except ``tags``)."""
        out = dataclasses.asdict(self)
        out.pop("tags")
        return out

    def key(self, seed: int, salt: str = CODE_VERSION_SALT) -> str:
        """Stable content address of (spec, seed, code version).

        The sha256 of the canonical JSON of the spec payload plus the
        trial seed and the *salt*.  Equal on every platform and in every
        process for equal inputs — verified by the test suite across an
        actual process boundary.
        """
        blob = canonical_json(
            {"spec": self.payload(), "seed": int(seed), "salt": salt})
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable form for progress displays."""
        tag = ",".join(f"{k}={v}" for k, v in self.tags.items())
        return f"{self.nodes}/{self.schedule}" + (f"[{tag}]" if tag else "")

    # -- construction ------------------------------------------------------

    def with_tags(self, **tags: Any) -> "TrialSpec":
        """A copy with extra row tags merged in (new keys win)."""
        return dataclasses.replace(self, tags={**self.tags, **tags})

    def to_config(self):
        """Resolve registry names into a runnable ``TrialConfig``."""
        from ..harness.runner import TrialConfig

        sched_builder = _lookup(_SCHEDULES, "schedule", self.schedule)
        node_builder = _lookup(_NODES, "nodes", self.nodes)
        sched_params = dict(self.schedule_params)
        node_params = dict(self.node_params)
        oracle = None
        if self.oracle is not None:
            oracle_fn = _lookup(_ORACLES, "oracle", self.oracle)
            oracle_params = dict(self.oracle_params)
            oracle = (lambda outputs, schedule:
                      bool(oracle_fn(outputs, schedule, **oracle_params)))
        return TrialConfig(
            schedule_factory=lambda seed: sched_builder(seed, **sched_params),
            node_factory=lambda schedule, seed: node_builder(
                schedule, seed, **node_params),
            max_rounds=self.max_rounds,
            until=self.until,
            quiescence_window=self.quiescence_window,
            oracle=oracle,
            bandwidth_bits=self.bandwidth_bits,
            allow_timeout=self.allow_timeout,
        )


# --------------------------------------------------------------------------
# built-in schedule builders (the evaluation's adversaries)
# --------------------------------------------------------------------------

@register_schedule("lowdiam_handoff")
def _build_lowdiam(seed: int, *, n: int, T: int,
                   noise_edges: Optional[int] = None):
    """The evaluation's default low-``d`` T-interval adversary."""
    from ..dynamics import OverlapHandoffAdversary

    if noise_edges is None:
        noise_edges = max(1, n // 8)
    return OverlapHandoffAdversary(n, T, noise_edges=noise_edges, seed=seed)


@register_schedule("overlap_handoff")
def _build_overlap(seed: int, *, n: int, T: int, noise_edges: int = 0):
    from ..dynamics import OverlapHandoffAdversary

    return OverlapHandoffAdversary(n, T, noise_edges=noise_edges, seed=seed)


@register_schedule("fresh_spanning")
def _build_fresh(seed: int, *, n: int, noise_edges: int = 0):
    from ..dynamics import FreshSpanningAdversary

    return FreshSpanningAdversary(n, noise_edges=noise_edges, seed=seed)


@register_schedule("static")
def _build_static(seed: int, *, n: int, topology: str):
    """A static graph from :func:`repro.dynamics.build_topology`."""
    from ..dynamics import StaticAdversary, build_topology

    return StaticAdversary(
        n, build_topology(topology, n, np.random.default_rng(seed)))


@register_schedule("static_ring_of_cliques")
def _build_ring_of_cliques(seed: int, *, n: int, num_cliques: int):
    from ..dynamics import StaticAdversary, ring_of_cliques

    return StaticAdversary(n, ring_of_cliques(n, num_cliques))


@register_schedule("static_line")
def _build_static_line(seed: int, *, n: int):
    from ..dynamics import StaticAdversary, line_graph

    return StaticAdversary(n, line_graph(n))


@register_schedule("alternating_matchings")
def _build_alternating(seed: int, *, n: int):
    from ..dynamics import AlternatingMatchingsAdversary

    return AlternatingMatchingsAdversary(n)


@register_schedule("repaired_mobility")
def _build_mobility(seed: int, *, n: int, T: int = 2):
    from ..dynamics import RepairedMobilityAdversary

    return RepairedMobilityAdversary(n, T=T, seed=seed)


@register_schedule("windowed_throttle")
def _build_windowed_throttle(seed: int, *, n: int, T: int):
    from ..dynamics import WindowedThrottleAdversary

    return WindowedThrottleAdversary(n, T)


# --------------------------------------------------------------------------
# built-in node-set builders (the evaluation's algorithms)
# --------------------------------------------------------------------------

def _modvalue(i: int, mult: int, mod: int) -> int:
    """The evaluation's deterministic node input (``_value`` in T1/F3)."""
    return (i * mult) % mod


@register_nodes("exact_count")
def _nodes_exact_count(schedule, seed: int, *, n: int,
                       initial_window: int = 1, window_growth: int = 2):
    from ..core.exact_count import ExactCount

    return [ExactCount(i, initial_window=initial_window,
                       window_growth=window_growth) for i in range(n)]


@register_nodes("approx_count")
def _nodes_approx_count(schedule, seed: int, *, n: int,
                        eps: float = 0.25, delta: float = 0.05):
    from ..core.approx_count import ApproxCount

    return [ApproxCount(i, eps=eps, delta=delta) for i in range(n)]


@register_nodes("hybrid_count")
def _nodes_hybrid_count(schedule, seed: int, *, n: int):
    from ..core.hybrid_count import HybridCount

    return [HybridCount(i) for i in range(n)]


@register_nodes("klo_count")
def _nodes_klo_count(schedule, seed: int, *, n: int,
                     initial_guess: int = 1, guess_growth: int = 2):
    from ..baselines.klo import KCommitteeCount

    return [KCommitteeCount(i, initial_guess=initial_guess,
                            guess_growth=guess_growth) for i in range(n)]


@register_nodes("token_dissemination")
def _nodes_token(schedule, seed: int, *, n: int,
                 known_count: bool = True):
    from ..baselines.token import RandomTokenDissemination

    target = n if known_count else None
    return [RandomTokenDissemination(i, target_count=target)
            for i in range(n)]


@register_nodes("sublinear_max_modvalue")
def _nodes_max(schedule, seed: int, *, n: int,
               mult: int = 37, mod: int = 1009):
    from ..core.max_compute import SublinearMax

    return [SublinearMax(i, _modvalue(i, mult, mod)) for i in range(n)]


@register_nodes("sublinear_consensus")
def _nodes_consensus(schedule, seed: int, *, n: int, prefix: str = "p"):
    from ..core.consensus import SublinearConsensus

    return [SublinearConsensus(i, f"{prefix}{i}") for i in range(n)]


@register_nodes("pipelined_approx_count")
def _nodes_pipelined_approx(schedule, seed: int, *, n: int,
                            words_per_message: int = 4, width: int = 40,
                            strategy: str = "tdm"):
    from ..core.pipelining import PipelinedApproxCount

    return [PipelinedApproxCount(i, words_per_message=words_per_message,
                                 width=width, strategy=strategy)
            for i in range(n)]


@register_nodes("pipelined_exact_count")
def _nodes_pipelined_exact(schedule, seed: int, *, n: int,
                           ids_per_message: int = 4):
    from ..core.pipelined_exact import PipelinedExactCount

    return [PipelinedExactCount(i, ids_per_message=ids_per_message)
            for i in range(n)]


# --------------------------------------------------------------------------
# built-in oracles
# --------------------------------------------------------------------------

@register_oracle("count_exact")
def _oracle_count(outputs, schedule) -> bool:
    n = schedule.num_nodes
    return len(outputs) == n and all(v == n for v in outputs.values())


@register_oracle("count_approx")
def _oracle_count_approx(outputs, schedule, *, eps: float) -> bool:
    n = schedule.num_nodes
    return (len(outputs) == n
            and all(abs(v / n - 1.0) <= eps for v in outputs.values()))


@register_oracle("max_modvalue")
def _oracle_max(outputs, schedule, *, mult: int = 37,
                mod: int = 1009) -> bool:
    n = schedule.num_nodes
    true = max(_modvalue(i, mult, mod) for i in range(n))
    return len(outputs) == n and all(v == true for v in outputs.values())


@register_oracle("consensus_valid")
def _oracle_consensus(outputs, schedule, *, prefix: str = "p") -> bool:
    n = schedule.num_nodes
    values = set(outputs.values())
    proposals = {f"{prefix}{i}" for i in range(n)}
    return (len(outputs) == n and len(values) == 1
            and next(iter(values)) in proposals)
