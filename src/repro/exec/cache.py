"""Content-addressed result cache.

Each completed trial row is stored as one JSON file under a cache root,
named by the trial's content address (see :meth:`TrialSpec.key`): the
sha256 of spec + seed + code-version salt.  Re-running a sweep against
the same cache directory therefore executes only the cells whose
addresses are missing — edits to a grid, extra seeds, or a crash leave
all previously measured cells warm.

Writes are atomic (temp file + ``os.replace``) so a killed process never
leaves a torn entry; a corrupt or unreadable entry is treated as a miss
and overwritten on the next run.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from .specs import CODE_VERSION_SALT, TrialSpec

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss/write accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}


class ResultCache:
    """Disk cache of trial rows keyed by content address.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  Entries live two
        levels deep (``root/ab/ab12…ef.json``) to keep directories small
        on big sweeps.
    salt:
        Code-version salt mixed into every key; changing it orphans all
        existing entries without deleting them.
    """

    def __init__(self, root: str, salt: str = CODE_VERSION_SALT) -> None:
        self.root = str(root)
        self.salt = salt
        self.stats = CacheStats()

    # -- keying ------------------------------------------------------------

    def key(self, spec: TrialSpec, seed: int) -> str:
        """Content address of (spec, seed) under this cache's salt."""
        return spec.key(seed, salt=self.salt)

    def path(self, key: str) -> str:
        """Filesystem path of a cache entry."""
        return os.path.join(self.root, key[:2], key + ".json")

    # -- access ------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached row for *key*, or ``None`` (counted as hit/miss)."""
        try:
            with open(self.path(key), "r", encoding="utf-8") as fh:
                row = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        if not isinstance(row, dict):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return row

    def put(self, key: str, row: Dict[str, Any]) -> None:
        """Store *row* under *key* atomically."""
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(row, fh, default=str)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    # -- maintenance -------------------------------------------------------

    def iter_keys(self) -> Iterator[str]:
        """All keys currently stored (directory walk)."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def size_bytes(self) -> int:
        """Total bytes of all stored entries."""
        total = 0
        for key in self.iter_keys():
            try:
                total += os.path.getsize(self.path(key))
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in list(self.iter_keys()):
            try:
                os.unlink(self.path(key))
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache(root={self.root!r}, salt={self.salt!r}, "
                f"stats={self.stats.as_dict()})")
