"""Module entry point: ``python -m repro.exec``."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:  # e.g. ``... builders | head``
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
