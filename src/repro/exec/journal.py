"""Crash-safe sweep journal.

The executor appends one JSONL record per completed cell —
``{"key": <content address>, "row": <measured row>}`` — flushing after
every line, so a crash (or Ctrl-C) loses at most the trial that was in
flight.  On resume the journal is replayed and only the missing cells
execute.  A torn final line (the classic kill-mid-write artefact) is
tolerated and simply dropped.

:func:`write_rows_atomic` is the companion for *final* artefacts: the
complete row set is written to a temp file and published with a single
``os.replace``, so readers never observe a half-written result file.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["SweepJournal", "write_rows_atomic"]


class SweepJournal:
    """Append-only JSONL record of completed sweep cells.

    Usable as a context manager; :meth:`load` may be called before or
    after opening for append (resume reads the previous run's lines,
    then new completions append to the same file).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = None

    # -- replay ------------------------------------------------------------

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Replay the journal: ``{content address: row}``.

        Unparseable lines (a torn tail after a crash) are skipped; later
        records for the same key win, so re-appending is harmless.
        """
        completed: Dict[str, Dict[str, Any]] = {}
        try:
            fh = open(self.path, "r", encoding="utf-8")
        except OSError:
            return completed
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail — crash mid-append
                key = record.get("key")
                row = record.get("row")
                if isinstance(key, str) and isinstance(row, dict):
                    completed[key] = row
        return completed

    # -- append ------------------------------------------------------------

    def append(self, key: str, row: Dict[str, Any]) -> None:
        """Record one completed cell; flushed immediately."""
        if self._fh is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps({"key": key, "row": row}, default=str)
                       + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepJournal(path={self.path!r})"


def write_rows_atomic(path: str, rows: Sequence[Dict[str, Any]],
                      meta: Optional[Dict[str, Any]] = None) -> str:
    """Publish a complete row set atomically (temp file + rename).

    Writes ``{"meta": …, "rows": […]}`` as JSON; returns *path*.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump({"meta": meta or {}, "rows": list(rows)}, fh,
                      indent=2, default=str)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
