"""S9 — parallel experiment execution.

The executor subsystem turns the harness's serial trial loops into
resumable, cacheable, multi-process sweeps:

* :mod:`~repro.exec.specs` — :class:`TrialSpec`, the declarative,
  picklable trial description (registry names + plain-data params) that
  replaces lambda-only ``TrialConfig`` factories as the canonical way
  experiments describe work;
* :mod:`~repro.exec.cache` — :class:`ResultCache`, content-addressed
  rows on disk (sha256 of spec + seed + code-version salt), so reruns
  execute only missing cells;
* :mod:`~repro.exec.journal` — :class:`SweepJournal`, an append-only
  JSONL checkpoint making interrupted sweeps resumable, plus atomic
  publication of final artefacts;
* :mod:`~repro.exec.executor` — :class:`ParallelExecutor`, the process
  pool that composes all of the above (``workers=1`` preserves the
  historical serial path) with a byte-identical determinism guarantee;
* :mod:`~repro.exec.progress` — live rows/rate/ETA/per-worker reporting;
* :mod:`~repro.exec.cli` — ``python -m repro.exec`` verbs (``run``,
  ``builders``, ``cache``).

See ``docs/EXECUTOR.md`` for the architecture tour.
"""

from .specs import (
    CODE_VERSION_SALT,
    TrialSpec,
    canonical_json,
    node_builders,
    oracle_builders,
    register_nodes,
    register_oracle,
    register_schedule,
    schedule_builders,
)
from .cache import CacheStats, ResultCache
from .journal import SweepJournal, write_rows_atomic
from .progress import ConsoleProgress, ProgressSnapshot
from .executor import (
    ExecOptions,
    ExecutionError,
    ExecutionReport,
    ParallelExecutor,
    execute_cell,
)

__all__ = [
    "CODE_VERSION_SALT",
    "TrialSpec",
    "canonical_json",
    "register_schedule",
    "register_nodes",
    "register_oracle",
    "schedule_builders",
    "node_builders",
    "oracle_builders",
    "CacheStats",
    "ResultCache",
    "SweepJournal",
    "write_rows_atomic",
    "ConsoleProgress",
    "ProgressSnapshot",
    "ExecOptions",
    "ExecutionError",
    "ExecutionReport",
    "ParallelExecutor",
    "execute_cell",
]
