"""``python -m repro.exec`` — run declarative sweeps from the shell.

Verbs::

    python -m repro.exec run SWEEP.json --workers 4 --cache-dir .repro-cache \\
        --journal sweep.jsonl --resume --out rows.json
    python -m repro.exec builders          # list registered spec builders
    python -m repro.exec cache --dir .repro-cache [--clear]

A sweep file describes a grid, seeds, and one spec template; ``"$name"``
strings in the template substitute the grid point's value for ``name``::

    {
      "grid": {"n": [16, 32], "T": [1, 2]},
      "seeds": [1, 2, 3],
      "spec": {
        "schedule": "lowdiam_handoff",
        "schedule_params": {"n": "$n", "T": "$T"},
        "nodes": "exact_count",
        "node_params": {"n": "$n"},
        "max_rounds": 4000,
        "until": "quiescent",
        "quiescence_window": 64,
        "oracle": "count_exact"
      }
    }

``"seeds"`` may also be ``{"root": R, "count": C}``, expanded through
:func:`repro.simnet.rng.derive_seeds`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Mapping, Optional

from ..errors import ConfigurationError
from .cache import ResultCache
from .executor import Cell, ParallelExecutor
from .journal import write_rows_atomic
from .progress import ConsoleProgress
from .specs import (
    TrialSpec,
    node_builders,
    oracle_builders,
    schedule_builders,
)

__all__ = ["main", "spec_from_template", "load_sweep_file"]


def spec_from_template(template: Mapping[str, Any],
                       point: Mapping[str, Any]) -> TrialSpec:
    """Instantiate a spec template at one grid point.

    Every string of the form ``"$name"`` anywhere in the template is
    replaced by ``point[name]``; the grid point itself becomes the
    spec's row tags.
    """

    def subst(value: Any) -> Any:
        if isinstance(value, str) and value.startswith("$"):
            name = value[1:]
            if name not in point:
                raise ConfigurationError(
                    f"template references ${name} but the grid has no "
                    f"key {name!r} (keys: {sorted(point)})")
            return point[name]
        if isinstance(value, dict):
            return {k: subst(v) for k, v in value.items()}
        if isinstance(value, list):
            return [subst(v) for v in value]
        return value

    resolved = {k: subst(v) for k, v in dict(template).items()}
    resolved.setdefault("tags", {})
    resolved["tags"] = {**dict(point), **dict(resolved["tags"])}
    try:
        return TrialSpec(**resolved)
    except TypeError as exc:
        raise ConfigurationError(f"bad spec template: {exc}") from None


def _expand_seeds(seeds: Any) -> List[int]:
    if isinstance(seeds, dict):
        from ..simnet.rng import derive_seeds

        return derive_seeds(int(seeds.get("root", 0)),
                            int(seeds.get("count", 1)))
    if isinstance(seeds, list):
        return [int(s) for s in seeds]
    raise ConfigurationError(
        'sweep "seeds" must be a list of ints or {"root": R, "count": C}')


def load_sweep_file(path: str) -> List[Cell]:
    """Parse a sweep description file into executor cells."""
    from ..harness.sweeps import grid_points

    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if "spec" not in doc:
        raise ConfigurationError(f'{path}: missing "spec" template')
    grid = doc.get("grid", {})
    seeds = _expand_seeds(doc.get("seeds", [1]))
    cells: List[Cell] = []
    for point in grid_points(grid):
        spec = spec_from_template(doc["spec"], point)
        cells.extend((spec, seed) for seed in seeds)
    return cells


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-exec",
        description="Parallel, cached, resumable experiment execution.")
    sub = parser.add_subparsers(dest="verb")

    run = sub.add_parser("run", help="execute a sweep description file")
    run.add_argument("sweep", help="sweep JSON file (grid + seeds + spec)")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes (1 = serial)")
    run.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="content-addressed result cache directory")
    run.add_argument("--journal", default=None, metavar="FILE",
                     help="append-only JSONL checkpoint file")
    run.add_argument("--resume", action="store_true",
                     help="replay the journal; execute only missing cells")
    run.add_argument("--on-error", choices=("raise", "record"),
                     default="raise",
                     help="abort on a failing cell, or record an "
                          "error column and continue")
    run.add_argument("--out", default=None, metavar="FILE",
                     help="write rows as JSON (atomic rename)")
    run.add_argument("--no-progress", action="store_true",
                     help="suppress the live status line")
    run.add_argument("--events", default=None, metavar="DIR",
                     help="record per-trial JSONL event streams under DIR "
                          "and merge them into DIR/events.jsonl (cached "
                          "cells execute no trial, so they emit no "
                          "events); see docs/OBSERVABILITY.md")
    from ..simnet.backends import available_engines

    run.add_argument("--engine", default=None, choices=available_engines(),
                     help="engine for every trial (exported as "
                          "REPRO_ENGINE so worker processes inherit it; "
                          "all built-in choices produce identical rows)")

    sub.add_parser("builders",
                   help="list registered schedule/node/oracle builders")
    sub.add_parser("engines",
                   help="list registered engine backends (priorities and "
                        "capability flags; see docs/ENGINES.md)")

    cache = sub.add_parser("cache", help="inspect or clear a result cache")
    cache.add_argument("--dir", required=True, metavar="DIR",
                       help="cache directory")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cached entry")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    cells = load_sweep_file(args.sweep)
    if args.engine:
        import os

        # The environment variable is the spawn-safe channel: worker
        # processes inherit it, and engine_default() gives it precedence
        # over any in-process set_engine_default() call.
        os.environ["REPRO_ENGINE"] = args.engine
    if args.events:
        import os

        from ..obs.recorder import set_events_dir

        os.makedirs(args.events, exist_ok=True)
        set_events_dir(args.events)  # exported; worker processes inherit
    executor = ParallelExecutor(
        workers=args.workers,
        cache=args.cache_dir,
        journal=args.journal,
        resume=args.resume,
        on_error=args.on_error,
        progress=None if args.no_progress else ConsoleProgress("run"),
    )
    report = executor.run(cells)
    print(report.summary())
    if args.events:
        from ..obs.merge import merge_event_streams

        merged, summary = merge_event_streams(args.events)
        print(f"events -> {merged}: {summary.render()}")
    if args.out:
        path = write_rows_atomic(args.out, report.rows,
                                 meta={"sweep": args.sweep,
                                       "workers": args.workers})
        print(f"rows -> {path}")
    else:
        for row in report.rows:
            print(json.dumps(row, default=str))
    return 1 if report.errors else 0


def _cmd_builders() -> int:
    for kind, names in [("schedules", schedule_builders()),
                        ("nodes", node_builders()),
                        ("oracles", oracle_builders())]:
        print(f"{kind}:")
        for name in names:
            print(f"  {name}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.dir)
    entries = len(cache)
    print(f"{args.dir}: {entries} entries, {cache.size_bytes()} bytes "
          f"(salt {cache.salt!r})")
    if args.clear:
        print(f"cleared {cache.clear()} entries")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parser().parse_args(argv)
    if args.verb == "run":
        return _cmd_run(args)
    if args.verb == "builders":
        return _cmd_builders()
    if args.verb == "engines":
        from ..harness.cli import render_engine_list

        print(render_engine_list())
        return 0
    if args.verb == "cache":
        return _cmd_cache(args)
    _parser().print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
