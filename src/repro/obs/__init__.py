"""Structured observability for simulation runs (``repro.obs``).

The subsystem has four parts, each in its own module:

* :mod:`repro.obs.events` — the versioned, schema-validated event model
  (``RoundEvent``, ``DeliveryEvent``, ``DecisionEvent``,
  ``EngineTierEvent``, ``CacheEvent``, plus ``trial``/``summary``
  provenance records);
* :mod:`repro.obs.recorder` — the zero-overhead-when-disabled
  :class:`Recorder` hook the engine emits through, and the
  process-wide ``--events DIR`` plumbing;
* :mod:`repro.obs.export` — JSONL / CSV / in-memory sinks;
* :mod:`repro.obs.merge` — the executor-level merge folding per-trial
  streams into one deterministic artifact with trial provenance, and
  the run-summary aggregator.

Quick tour::

    from repro.obs import Recorder
    rec = Recorder.in_memory()
    Simulator(schedule, nodes, recorder=rec).run(5000, until="quiescent",
                                                 quiescence_window=64)
    rec.summary()            # {'engine_tier': 1, 'round': 9, ...}
    rec.of_kind("cache")     # adjacency + payload-bits hit/miss counters

See ``docs/OBSERVABILITY.md`` for the event schema reference and the
CLI workflow (``repro-experiments ... --events DIR``).
"""

from .events import (
    SCHEMA_VERSION,
    CacheEvent,
    DecisionEvent,
    DeliveryEvent,
    EngineTierEvent,
    Event,
    EventSchemaError,
    RoundEvent,
    SummaryEvent,
    TrialEvent,
    event_from_dict,
    event_from_json,
    event_to_json,
    validate_event,
)
from .export import CsvSink, EventSink, JsonlSink, MemorySink
from .merge import (
    StreamSummary,
    iter_stream,
    merge_event_streams,
    summarize_streams,
)
from .recorder import Recorder, events_dir, set_events_dir

__all__ = [
    "SCHEMA_VERSION",
    "Event",
    "EventSchemaError",
    "TrialEvent",
    "RoundEvent",
    "DeliveryEvent",
    "DecisionEvent",
    "EngineTierEvent",
    "CacheEvent",
    "SummaryEvent",
    "validate_event",
    "event_from_dict",
    "event_from_json",
    "event_to_json",
    "EventSink",
    "MemorySink",
    "JsonlSink",
    "CsvSink",
    "Recorder",
    "set_events_dir",
    "events_dir",
    "StreamSummary",
    "iter_stream",
    "merge_event_streams",
    "summarize_streams",
]
