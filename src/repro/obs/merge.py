"""Merging and summarizing per-trial event streams.

Parallel experiment runs produce one ``trial-*.jsonl`` stream per trial
(each worker process writes its own files, so there is no cross-process
lock to take).  :func:`merge_event_streams` folds them into **one**
artifact, ordered deterministically by each stream's provenance header
(trial label, then seed, then file name) so the merged file is
byte-identical regardless of which worker finished first — the same
input-order guarantee the executor gives for result rows.

:func:`summarize_streams` is the run-summary aggregator: per-kind event
counts, total rounds, per-tier round counts, and per-trial provenance
rows, computed from the streams without loading them fully into memory.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .events import (Event, EventSchemaError, SummaryEvent, TrialEvent,
                     event_from_json, event_to_json)

__all__ = ["StreamSummary", "iter_stream", "merge_event_streams",
           "summarize_streams", "trial_stream_paths"]

#: File pattern the runner uses for per-trial streams.
TRIAL_GLOB = "trial-*.jsonl"


def trial_stream_paths(events_dir: str) -> List[str]:
    """The per-trial stream files under *events_dir*, sorted by name."""
    return sorted(glob.glob(os.path.join(events_dir, TRIAL_GLOB)))


def iter_stream(path: str) -> Iterator[Event]:
    """Parse one JSONL stream, validating every line.

    A torn final line (a run killed mid-write) is dropped silently,
    matching the executor journal's crash posture; any other malformed
    line raises :class:`~repro.obs.events.EventSchemaError` with the
    line number.
    """
    with open(path) as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines, 1):
        try:
            yield event_from_json(line)
        except EventSchemaError:
            if lineno == len(lines):
                return  # torn tail from a killed writer
            raise EventSchemaError(
                f"{path}:{lineno}: invalid event line") from None


def _stream_sort_key(path: str) -> Tuple[str, int, str]:
    """(trial label, seed, basename) from the stream's header event."""
    label, seed = "", -1
    try:
        for event in iter_stream(path):
            if isinstance(event, TrialEvent):
                label, seed = event.label, event.seed
            break
    except EventSchemaError:
        pass
    return (label, seed, os.path.basename(path))


@dataclass
class StreamSummary:
    """Aggregate view of one or more event streams."""

    streams: int = 0
    events: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    rounds: int = 0
    tier_rounds: Dict[str, int] = field(default_factory=dict)
    trials: List[Dict[str, object]] = field(default_factory=list)

    def render(self) -> str:
        """One-paragraph accounting string for CLI output."""
        kinds = ", ".join(f"{k} {v}" for k, v in sorted(self.by_kind.items()))
        tiers = ", ".join(
            f"{k} {v}" for k, v in sorted(self.tier_rounds.items()))
        return (f"{self.streams} trial streams, {self.events} events "
                f"({kinds}); {self.rounds} rounds"
                + (f" by tier: {tiers}" if tiers else ""))


def summarize_streams(paths: List[str]) -> StreamSummary:
    """Aggregate per-kind counts, rounds, and tier splits over *paths*."""
    summary = StreamSummary()
    for path in paths:
        summary.streams += 1
        provenance: Dict[str, object] = {"stream": os.path.basename(path)}
        for event in iter_stream(path):
            summary.events += 1
            summary.by_kind[event.kind] = (
                summary.by_kind.get(event.kind, 0) + 1)
            if isinstance(event, TrialEvent):
                provenance.update(label=event.label, seed=event.seed,
                                  spec=event.spec, engine=event.engine)
            elif isinstance(event, SummaryEvent):
                summary.rounds += event.rounds
                for tier in ("batch", "fast", "reference"):
                    count = getattr(event, f"{tier}_rounds")
                    if count:
                        summary.tier_rounds[tier] = (
                            summary.tier_rounds.get(tier, 0) + count)
                provenance.update(rounds=event.rounds,
                                  stop_reason=event.stop_reason)
        summary.trials.append(provenance)
    return summary


def merge_event_streams(events_dir: str,
                        out_path: Optional[str] = None) -> Tuple[str, StreamSummary]:
    """Merge every per-trial stream under *events_dir* into one artifact.

    Streams are concatenated in (label, seed, file-name) order — each
    trial's events stay contiguous, prefixed by its provenance header —
    and every line is re-validated on the way through.  Returns the
    merged path (default ``<events_dir>/events.jsonl``) and the
    aggregate :class:`StreamSummary`.
    """
    paths = trial_stream_paths(events_dir)
    if out_path is None:
        out_path = os.path.join(events_dir, "events.jsonl")
    ordered = sorted(paths, key=_stream_sort_key)
    tmp = out_path + ".tmp"
    with open(tmp, "w") as out:
        for path in ordered:
            for event in iter_stream(path):
                out.write(event_to_json(event) + "\n")
    os.replace(tmp, out_path)
    return out_path, summarize_streams(ordered)
