"""Event sinks: where a :class:`~repro.obs.recorder.Recorder` streams to.

Three targets cover the use cases:

* :class:`MemorySink` — a list, for tests and interactive inspection;
* :class:`JsonlSink` — one validated JSON object per line, flushed per
  event; the canonical archival format (and what the executor merge in
  :mod:`repro.obs.merge` consumes);
* :class:`CsvSink` — a flattened CSV with the union of all field names
  as columns, for spreadsheet-style slicing.  Rows are buffered until
  :meth:`CsvSink.close` because the column set is only known then.

All sinks are append-only and close idempotently.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Any, Dict, List, Union

from .events import Event, event_to_json

__all__ = ["EventSink", "MemorySink", "JsonlSink", "CsvSink"]


class EventSink:
    """Sink interface: ``write(event)`` per event, ``close()`` once."""

    def write(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Default: nothing to release."""


class MemorySink(EventSink):
    """Keeps the events in a plain list (:attr:`events`)."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def write(self, event: Event) -> None:
        self.events.append(event)


class JsonlSink(EventSink):
    """Streams events as JSON lines to a path or an open text file.

    Each line is written and flushed immediately, so a crashed run
    leaves a readable prefix (same crash posture as the executor's
    journal).
    """

    def __init__(self, target: Union[str, os.PathLike, io.TextIOBase]) -> None:
        if isinstance(target, (str, os.PathLike)):
            parent = os.path.dirname(os.fspath(target))
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh: Any = open(target, "w")
            self._owns = True
        else:
            self._fh = target
            self._owns = False

    def write(self, event: Event) -> None:
        self._fh.write(event_to_json(event) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._owns and not self._fh.closed:
            self._fh.close()


class CsvSink(EventSink):
    """Flattens events into one CSV with the union of fields as columns.

    Every row carries ``kind`` and ``v`` plus each event's own fields;
    fields an event does not have are left empty.  The header is the
    sorted field union, so output is deterministic for a given stream.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._path = os.fspath(path)
        self._rows: List[Dict[str, Any]] = []
        self._closed = False

    def write(self, event: Event) -> None:
        self._rows.append(event.to_dict())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        lead = ["kind", "v"]
        rest: List[str] = sorted(
            {key for row in self._rows for key in row} - set(lead))
        with open(self._path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=lead + rest,
                                    extrasaction="ignore")
            writer.writeheader()
            for row in self._rows:
                writer.writerow(row)
