"""The :class:`Recorder` — the engine's observability hook.

A recorder is attached to a :class:`~repro.simnet.engine.Simulator` (or
threaded process-wide through :func:`set_events_dir`, which is what the
CLIs' ``--events DIR`` flags do).  **When no recorder is attached the
engine pays nothing**: the hot loops are guarded by a single
``recorder is None`` check per round and no event object is ever
allocated — ``tests/test_obs.py`` asserts this by making every event
constructor explode and running an unrecorded simulation.

When one *is* attached, the engine routes each round through an
instrumented wrapper that emits :class:`~repro.obs.events.RoundEvent` /
:class:`~repro.obs.events.DeliveryEvent` / per-node
:class:`~repro.obs.events.DecisionEvent` streams,
:class:`~repro.obs.events.EngineTierEvent` dispatch decisions with their
reasons, and end-of-run :class:`~repro.obs.events.CacheEvent` counters.
Recording disables the engine's fused round loop (phase boundaries
become observable, same rule as profiling), so recorded runs trade some
throughput for the stream — results stay bit-identical, only wall-clock
changes.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

from .events import Event, event_to_json
from .export import EventSink, JsonlSink

__all__ = ["Recorder", "set_events_dir", "events_dir"]

_EVENTS_DIR: Optional[str] = os.environ.get("REPRO_EVENTS_DIR") or None


def set_events_dir(path: Optional[str]) -> None:
    """Set the process-wide event-stream directory (``None`` disables).

    When set, every :func:`repro.harness.runner.run_trial` attaches a
    fresh JSONL recorder writing ``trial-*.jsonl`` under *path*; the
    ``REPRO_EVENTS_DIR`` environment variable seeds the initial value so
    executor worker processes inherit the setting.  The CLIs' ``--events
    DIR`` flags call this (and export the variable for spawn-safety)
    before running anything.
    """
    global _EVENTS_DIR
    _EVENTS_DIR = path or None
    if path:
        os.environ["REPRO_EVENTS_DIR"] = path
    else:
        os.environ.pop("REPRO_EVENTS_DIR", None)


def events_dir() -> Optional[str]:
    """Current process-wide event-stream directory (``None`` = disabled)."""
    return _EVENTS_DIR


class Recorder:
    """Collects events, tallies per-kind counters, forwards to sinks.

    Parameters
    ----------
    sinks:
        Zero or more :class:`~repro.obs.export.EventSink` targets; every
        emitted event is forwarded to each in order.
    keep:
        Also retain events in memory (:attr:`events`).  Default on —
        turn off for long streaming runs where only the sinks matter.

    The recorder is also a context manager; leaving the ``with`` block
    closes every sink.
    """

    def __init__(self, sinks: Sequence[EventSink] = (),
                 keep: bool = True) -> None:
        self.sinks: List[EventSink] = list(sinks)
        self.events: List[Event] = []
        self.counters: Dict[str, int] = {}
        self._keep = bool(keep)
        self._closed = False

    # -- construction helpers ------------------------------------------------

    @classmethod
    def to_jsonl(cls, path: str, keep: bool = False) -> "Recorder":
        """A recorder streaming straight to a JSONL file (memory off)."""
        return cls(sinks=[JsonlSink(path)], keep=keep)

    @classmethod
    def in_memory(cls) -> "Recorder":
        """A recorder that only retains events in memory."""
        return cls(sinks=[], keep=True)

    # -- emission ------------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Record one event: count it, retain it, forward it."""
        kind = event.kind
        self.counters[kind] = self.counters.get(kind, 0) + 1
        if self._keep:
            self.events.append(event)
        for sink in self.sinks:
            sink.write(event)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a free-form counter (no event emitted)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- introspection -------------------------------------------------------

    def of_kind(self, kind: str) -> List[Event]:
        """Retained events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def summary(self) -> Dict[str, int]:
        """Per-kind (and free-form) counter totals."""
        return dict(self.counters)

    def to_jsonl_lines(self) -> Iterable[str]:
        """Serialize the retained events as JSONL lines."""
        return (event_to_json(e) for e in self.events)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Recorder events={sum(self.counters.values())} "
                f"sinks={len(self.sinks)}>")
