"""The observability event model.

Every observable occurrence in a simulation run — a round completing,
messages being delivered, a node deciding, the engine switching dispatch
tiers, a cache serving or missing — is described by one of the frozen
dataclasses below.  Events are a *versioned, schema-validated* wire
format: :meth:`Event.to_dict` produces a plain-JSON dict carrying the
event ``kind`` and the schema version ``v``, :func:`event_from_dict`
parses and validates it back into the exact dataclass, and the two are
inverse round-trips (asserted by ``tests/test_obs.py``).

The schema is deliberately dependency-free: :data:`EVENT_SCHEMAS` maps
each kind to its ``field -> (types, required)`` table and
:func:`validate_event` enforces it, so a JSONL stream can be checked
without jsonschema or pydantic (neither of which this repository
depends on).

Event catalogue
---------------
=================  =========================================================
kind               meaning
=================  =========================================================
``trial``          provenance header: which trial produced the stream
``round``          one engine round completed (per-round broadcast totals)
``delivery``       the round's delivered-message/bit totals
``decision``       a node decided, retracted, or halted
``engine_tier``    dispatch-tier selection, activation, or fallback + reason
``cache``          hit/miss/build counters of one internal cache
``summary``        end-of-run totals (rounds, stop reason, tier split)
=================  =========================================================

See ``docs/OBSERVABILITY.md`` for the full field reference.
"""

from __future__ import annotations

import json
from dataclasses import MISSING, asdict, dataclass, fields
from typing import Any, Dict, Mapping, Tuple, Type

from ..errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "EventSchemaError",
    "Event",
    "TrialEvent",
    "RoundEvent",
    "DeliveryEvent",
    "DecisionEvent",
    "EngineTierEvent",
    "CacheEvent",
    "SummaryEvent",
    "EVENT_TYPES",
    "EVENT_SCHEMAS",
    "validate_event",
    "event_from_dict",
    "event_to_json",
    "event_from_json",
]

#: Version stamped into every serialized event as ``"v"``.  Bump on any
#: backwards-incompatible field change; :func:`validate_event` rejects
#: streams from a different major version.
SCHEMA_VERSION = 1


class EventSchemaError(ReproError, ValueError):
    """A serialized event does not conform to the versioned schema."""


@dataclass(frozen=True)
class Event:
    """Base class: every event has a ``kind`` tag and serializes to JSON."""

    #: overridden per subclass; the wire-format discriminator
    kind = "event"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON dict with the ``kind`` tag and schema version."""
        out: Dict[str, Any] = {"kind": self.kind, "v": SCHEMA_VERSION}
        out.update(asdict(self))
        return out


@dataclass(frozen=True)
class TrialEvent(Event):
    """Stream header: provenance of the trial that emitted what follows.

    ``label`` is the human-readable trial identity and ``spec`` the
    content-address hash (:meth:`repro.exec.TrialSpec.key`) when the
    trial came through a declarative spec — the same key the executor's
    result cache uses, tying the event stream to the cached row;
    ``engine`` is the engine argument the simulator was built with
    (``"default"`` when deferred to the process default).
    """

    kind = "trial"

    seed: int
    label: str = ""
    spec: str = ""
    engine: str = "default"
    until: str = "halted"
    max_rounds: int = 0


@dataclass(frozen=True)
class RoundEvent(Event):
    """One round completed: the round's broadcast-side totals.

    ``tier`` is the dispatch tier that executed the round (``"batch"``,
    ``"fast"``, or ``"reference"``); bit totals are this round's deltas,
    not cumulative sums.
    """

    kind = "round"

    round: int
    tier: str
    broadcasts: int
    broadcast_bits: int
    max_broadcast_bits: int


@dataclass(frozen=True)
class DeliveryEvent(Event):
    """The round's receive-side totals (directed deliveries and bits)."""

    kind = "delivery"

    round: int
    messages: int
    bits: int


@dataclass(frozen=True)
class DecisionEvent(Event):
    """A node's decision lifecycle advanced.

    ``action`` is ``"decide"``, ``"retract"``, or ``"halt"``;
    ``value`` is the decided output for ``"decide"`` (JSON-encodable by
    construction of the algorithms' outputs), ``None`` otherwise.
    """

    kind = "decision"

    round: int
    node_id: int
    action: str
    value: Any = None


@dataclass(frozen=True)
class EngineTierEvent(Event):
    """The engine selected, engaged, or fell back from a dispatch tier.

    ``action`` is ``"select"`` (the tier chosen when ``run()`` starts)
    or ``"fallback"`` (a mid-run deactivation, e.g. the batch kernel
    retiring on the first halt event); ``reason`` says why, in the
    engine's own words — the strings the dispatch conditions produce,
    e.g. ``"population has no batch kernel"`` or ``"halt event
    deactivated the batch kernel"``.

    ``declined`` is the structured form of ``reason``: a list of
    capability diffs (``{"backend", "missing", "detail"}`` dicts, see
    :meth:`repro.simnet.backends.base.CapabilityDiff.to_payload`), one
    per backend the negotiator passed over — ``None`` when nothing was
    declined.
    """

    kind = "engine_tier"

    round: int
    tier: str
    action: str
    reason: str = ""
    declined: Any = None


@dataclass(frozen=True)
class CacheEvent(Event):
    """Cumulative hit/miss counters of one internal cache at run end.

    ``cache`` names which one: ``"adjacency"`` (the schedule's
    interval-aware CSR cache — ``detail`` splits hits into stable-span
    vs content-fingerprint) or ``"payload_bits"`` (the engine's
    payload bit-size memo).
    """

    kind = "cache"

    round: int
    cache: str
    hits: int
    misses: int
    detail: str = ""


@dataclass(frozen=True)
class SummaryEvent(Event):
    """End-of-run totals: the per-trial aggregate a merge can group by."""

    kind = "summary"

    rounds: int
    stop_reason: str
    broadcast_bits: int
    delivered_messages: int
    batch_rounds: int = 0
    fast_rounds: int = 0
    reference_rounds: int = 0


#: kind -> event class, the wire-format dispatch table.
EVENT_TYPES: Dict[str, Type[Event]] = {
    cls.kind: cls
    for cls in (TrialEvent, RoundEvent, DeliveryEvent, DecisionEvent,
                EngineTierEvent, CacheEvent, SummaryEvent)
}

def _schema_of(cls: Type[Event]) -> Dict[str, Tuple[Tuple[type, ...], bool]]:
    schema: Dict[str, Tuple[Tuple[type, ...], bool]] = {}
    for f in fields(cls):
        required = f.default is MISSING and f.default_factory is MISSING
        # Under ``from __future__ import annotations`` the stored type is
        # the annotation string itself.
        hint = f.type if isinstance(f.type, str) else getattr(
            f.type, "__name__", str(f.type))
        if hint == "int":
            types: Tuple[type, ...] = (int,)
        elif hint == "str":
            types = (str,)
        else:  # Any — anything JSON-encodable goes
            types = ()
        schema[f.name] = (types, required)
    return schema


#: kind -> {field: ((accepted types) or () for any, required)}.  Derived
#: from the dataclass definitions, so the schema cannot drift from the
#: classes.
EVENT_SCHEMAS: Dict[str, Dict[str, Tuple[Tuple[type, ...], bool]]] = {
    kind: _schema_of(cls) for kind, cls in EVENT_TYPES.items()
}


def validate_event(data: Mapping[str, Any]) -> str:
    """Validate one serialized event dict; returns its kind.

    Raises :class:`EventSchemaError` on an unknown kind, a schema-version
    mismatch, a missing required field, an unknown field, or a
    wrongly-typed value.
    """
    kind = data.get("kind")
    if kind not in EVENT_SCHEMAS:
        raise EventSchemaError(
            f"unknown event kind {kind!r} (known: {sorted(EVENT_SCHEMAS)})")
    version = data.get("v")
    if version != SCHEMA_VERSION:
        raise EventSchemaError(
            f"event schema version {version!r} != supported {SCHEMA_VERSION}")
    schema = EVENT_SCHEMAS[kind]
    for name, (types, required) in schema.items():
        if name not in data:
            if required:
                raise EventSchemaError(
                    f"{kind} event missing required field {name!r}")
            continue
        value = data[name]
        if types and not isinstance(value, types):
            # bool is an int subclass; counters must be real ints
            if isinstance(value, bool) and int in types:
                raise EventSchemaError(
                    f"{kind}.{name} must be {types}, got bool")
            raise EventSchemaError(
                f"{kind}.{name} must be {'/'.join(t.__name__ for t in types)},"
                f" got {type(value).__name__}")
        if int in types and isinstance(value, bool):
            raise EventSchemaError(f"{kind}.{name} must be int, got bool")
    extra = set(data) - set(schema) - {"kind", "v"}
    if extra:
        raise EventSchemaError(
            f"{kind} event carries unknown fields {sorted(extra)}")
    return kind


def event_from_dict(data: Mapping[str, Any]) -> Event:
    """Parse (and validate) one serialized event dict back into its class."""
    kind = validate_event(data)
    cls = EVENT_TYPES[kind]
    kwargs = {k: v for k, v in data.items() if k not in ("kind", "v")}
    return cls(**kwargs)


def event_to_json(event: Event) -> str:
    """One compact JSON line (no trailing newline) for a JSONL stream."""
    return json.dumps(event.to_dict(), sort_keys=True,
                      separators=(",", ":"), default=str)


def event_from_json(line: str) -> Event:
    """Inverse of :func:`event_to_json`, validation included."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise EventSchemaError(f"malformed event line: {exc}") from exc
    if not isinstance(data, dict):
        raise EventSchemaError(
            f"event line must be a JSON object, got {type(data).__name__}")
    return event_from_dict(data)
