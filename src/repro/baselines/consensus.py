"""Flood consensus with a known round bound (the ``O(N)`` baseline).

The folklore consensus for 1-interval connected dynamic networks: every
node floods ``(id, input)`` pairs, keeping the pair with the smallest id;
after ``rounds_bound`` rounds every node has the globally smallest id's
pair (flooding completes within ``N - 1`` rounds), so all decide that
node's input — agreement and validity hold, and termination takes exactly
``rounds_bound`` rounds.  Correct whenever ``rounds_bound >= N - 1``
(known ``N``) or ``rounds_bound >= d`` (known diameter bound): another
baseline whose complexity carries the additive ``Θ(N)`` term under the
standard knowledge assumption.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from .._validate import require_positive_int
from ..simnet.message import NodeId
from ..simnet.node import Algorithm, RoundContext

__all__ = ["FloodConsensus"]


class FloodConsensus(Algorithm):
    """Minimum-id flood consensus (see module docstring).

    Parameters
    ----------
    node_id:
        Node id.
    proposal:
        The node's input value (validity: the decision is some node's
        input).
    rounds_bound:
        Rounds to flood before deciding; encode the knowledge assumption
        (``N - 1`` or a diameter bound) at the call site.
    """

    name = "flood_consensus"

    def __init__(self, node_id: int, proposal: Any,
                 rounds_bound: int) -> None:
        super().__init__(node_id)
        self.proposal = proposal
        self.rounds_bound = require_positive_int(rounds_bound, "rounds_bound")
        self.best: Tuple[int, Any] = (node_id, proposal)

    def compose(self, ctx: RoundContext) -> Any:
        return (NodeId(self.best[0]), self.best[1])

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        changed = False
        for sender, value in inbox:
            if int(sender) < self.best[0]:
                self.best = (int(sender), value)
                changed = True
        self.mark_changed(changed)
        if ctx.round_index >= self.rounds_bound:
            self.decide(self.best[1])
            self.halt()
