"""All-to-all token dissemination by random forwarding (bounded bandwidth).

Token dissemination ("gossip") is the substrate of the pipelined
``O(N + N²/T)`` counting upper bounds for T-interval dynamic networks
(Kuhn–Lynch–Oshman): every node holds a token and every node must learn
every token, but each message may carry only **one** token (``Θ(log N)``
bits).  This module implements the classic randomized forwarding protocol
— each round every node broadcasts a token drawn uniformly from the set it
knows — which adapts automatically to whatever stability the schedule
offers (stable backbones let tokens pipeline; fully fresh graphs do not).

As a Count baseline it comes in two knowledge flavours:

* ``target_count=N`` (known ``N``): a node decides ``N`` once it has
  collected ``N`` distinct tokens (run with ``until="decided"`` — nodes
  keep forwarding after deciding so laggards can finish);
* ``target_count=None`` (oracle-measured): nodes never decide; the
  experiment harness measures the round in which the last node completed
  via :func:`dissemination_complete`.  This matches how dissemination
  *time* (the quantity the ``Ω(N²/T)`` lower bounds speak about) is
  reported in the literature.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .._validate import require_positive_int
from ..simnet.message import NodeId
from ..simnet.node import Algorithm, RoundContext

__all__ = ["RandomTokenDissemination", "dissemination_complete"]


class RandomTokenDissemination(Algorithm):
    """One-token-per-round random forwarding (see module docstring).

    The public ``progress`` attribute (number of distinct tokens known) is
    what :class:`~repro.dynamics.adaptive.CutThrottleAdversary` throttles.
    """

    name = "token_dissemination"

    def __init__(self, node_id: int,
                 target_count: Optional[int] = None) -> None:
        super().__init__(node_id)
        if target_count is not None:
            require_positive_int(target_count, "target_count")
        self.target_count = target_count
        self.tokens = {node_id}

    @property
    def progress(self) -> int:
        """Distinct tokens known (adaptive adversaries sort by this)."""
        return len(self.tokens)

    def compose(self, ctx: RoundContext) -> Any:
        known = sorted(self.tokens)
        pick = known[int(ctx.rng.integers(0, len(known)))]
        return NodeId(pick)

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        before = len(self.tokens)
        for token in inbox:
            self.tokens.add(int(token))
        self.mark_changed(len(self.tokens) != before)
        if (self.target_count is not None and not self.decided
                and len(self.tokens) >= self.target_count):
            self.decide(len(self.tokens))


def dissemination_complete(nodes: List[RandomTokenDissemination],
                           universe_size: int) -> bool:
    """Oracle predicate: every node knows every one of the ``N`` tokens.

    Pass as ``stop_when`` to :meth:`repro.simnet.engine.Simulator.run`
    (wrapped over the simulator) to measure pure dissemination time.
    """
    return all(len(node.tokens) >= universe_size for node in nodes)
