"""S4 — prior-work baseline algorithms.

These are the algorithms the paper's abstract positions itself against:

* :mod:`~repro.baselines.flooding` — epidemic token flooding and the
  classic ``O(N)``-round known-``N`` Max/Broadcast (folklore; analysed for
  1-interval dynamic networks by Kuhn–Lynch–Oshman);
* :mod:`~repro.baselines.klo` — Kuhn–Lynch–Oshman **k-committee counting**
  (STOC 2010): deterministic, assumption-free, halting exact Count in
  ``Θ(N²)`` rounds — the ``Ω(N)``-term baseline of experiment T1;
* :mod:`~repro.baselines.token` — all-to-all token dissemination by
  random forwarding in the bounded-bandwidth regime (the substrate of the
  ``O(N + N²/T)`` pipelined counting bounds);
* :mod:`~repro.baselines.consensus` — flood consensus with known ``N``
  (or a known round bound).

Each class documents the knowledge assumptions it makes (``N`` known, a
bound known, or nothing) — comparing those assumptions against
:mod:`repro.core` is part of the evaluation story.
"""

from .flooding import FloodToken, FloodMax, FloodBroadcast
from .klo import KCommitteeCount
from .token import RandomTokenDissemination
from .token_det import DeterministicTokenDissemination
from .consensus import FloodConsensus

__all__ = [
    "FloodToken",
    "FloodMax",
    "FloodBroadcast",
    "KCommitteeCount",
    "RandomTokenDissemination",
    "DeterministicTokenDissemination",
    "FloodConsensus",
]
