"""Kuhn–Lynch–Oshman-style k-committee counting (the ``Θ(N²)`` baseline).

This is the assumption-free, deterministic, **halting** exact-Count
algorithm of the kind introduced by Kuhn, Lynch & Oshman (STOC 2010) for
1-interval connected dynamic networks.  It needs *no* knowledge of ``N``,
``d``, or the topology, and it is the algorithm whose ``Ω(N)`` (indeed
``Θ(N²)``) round complexity the paper's contribution removes for
low-dynamic-diameter networks.

Algorithm (guess-and-verify, doubling guesses ``k = 1, 2, 4, …``):

**k-committee election** (``k`` cycles × 3 phases × ``k`` rounds).  Every
node starts each epoch uncommitted.  In each cycle:

1. *poll* (``k`` rounds): uncommitted nodes min-flood the smallest
   uncommitted id they have heard;
2. *request* (``k`` rounds): an uncommitted node whose poll-min is its own
   id considers itself a leader; every other uncommitted node floods a
   join request addressed to its poll-min (nodes forward, per addressee,
   the lexicographically smallest request heard);
3. *grant* (``k`` rounds): each leader grants exactly **one** received
   request; grants are flooded; a granted node joins the leader's
   committee.

After ``k`` cycles, still-uncommitted nodes form singleton committees.
Since a leader grants at most one node per cycle, **every committee has
size ≤ k + 1**.

**k-verification** (``k + 2`` rounds).  Every node broadcasts its
committee id; a node that hears a different id (or the pollution marker)
becomes *polluted* and broadcasts the marker from then on.  Two
invariants make the outcome globally consistent without coordination:

* *single committee ⇒ nobody is ever polluted* (nobody ever broadcasts a
  different id);
* *≥ 2 committees ⇒ every node is polluted within ``k + 1`` rounds*: for
  any committee ``c``, the set of its still-clean members loses at least
  one member per round (the per-round connectivity cut from that set has
  an edge whose far endpoint broadcasts a different id or the marker), and
  the set starts at size ≤ ``k + 1``.

**dissemination** (``k + 2`` rounds, success only).  On success there is a
unique leader (the one node whose committee id is its own id); it knows it
granted exactly ``g = N - 1`` members, floods ``g + 1``, and every node
decides that exact count and halts.  On failure all nodes are polluted, so
all (consistently) skip dissemination and start the next epoch with ``2k``.

Correctness: a committee containing all ``N`` nodes needs ``k + 1 >= N``,
so success implies the disseminated count is exact; completeness holds for
any ``k >= N - 1`` (each cycle then commits one new member to the global
minimum-id leader and floods complete), so the first successful guess is
at most ``2(N - 1)`` and the total round complexity is ``Θ(N²)`` —
independent of how small the dynamic diameter is.

Messages carry sets of requests/grants, so this baseline (exactly like the
original) lives in the unbounded-bandwidth regime; the metrics record its
true bit cost for experiment F6.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .._validate import require_positive_int
from ..errors import AlgorithmViolation
from ..simnet.message import NodeId
from ..simnet.node import Algorithm, RoundContext

__all__ = ["KCommitteeCount", "epoch_length", "total_rounds_prediction"]


def epoch_length(k: int, success: bool) -> int:
    """Rounds consumed by one guess-``k`` epoch."""
    base = 3 * k * k + (k + 2)
    return base + (k + 2) if success else base


def total_rounds_prediction(n: int, initial_guess: int = 1,
                            guess_growth: int = 2) -> int:
    """Exact number of rounds KCommitteeCount takes for a given ``N``.

    The algorithm is deterministic and oblivious to the topology until the
    successful epoch, so its round complexity is a pure function of ``N``
    (assuming, as is the case for every 1-interval schedule, that epochs
    with ``k < N - 1`` fail and the first ``k >= N - 1`` succeeds).
    Used by :mod:`repro.analysis.complexity` to extrapolate the ``Θ(N²)``
    curve beyond simulatable sizes, and by the T3 ablation of the guess
    growth factor (larger growth overshoots the successful ``k`` harder;
    growth 2 is within 4x of optimal for the quadratic epoch cost).
    """
    require_positive_int(n, "n")
    require_positive_int(guess_growth, "guess_growth")
    if guess_growth < 2:
        raise ValueError("guess_growth must be >= 2")
    total = 0
    k = require_positive_int(initial_guess, "initial_guess")
    while True:
        success = k >= n - 1
        total += epoch_length(k, success)
        if success:
            return total
        k *= guess_growth


# Phases within a cycle, in order.
_POLL, _REQUEST, _GRANT = 0, 1, 2
# Epoch-level stages.
_STAGE_CYCLES, _STAGE_VERIFY, _STAGE_DISSEMINATE = 0, 1, 2

_POLLUTED = "!"  # the pollution marker broadcast during verification


class KCommitteeCount(Algorithm):
    """Exact Count via k-committee election (see module docstring).

    Parameters
    ----------
    node_id:
        Unique node id (any int; ordering is what matters).
    initial_guess:
        First committee-size guess; 1 matches the classic algorithm.
    guess_growth:
        Multiplier applied to the guess after a failed epoch (default 2;
        ablated in T3 — larger growth means fewer epochs but a worse
        overshoot of the successful guess, whose epoch costs ``Θ(k²)``).
    """

    name = "klo_count"

    def __init__(self, node_id: int, initial_guess: int = 1,
                 guess_growth: int = 2) -> None:
        super().__init__(node_id)
        self.k = require_positive_int(initial_guess, "initial_guess")
        self.guess_growth = require_positive_int(guess_growth, "guess_growth")
        if self.guess_growth < 2:
            raise ValueError("guess_growth must be >= 2")
        self._epoch_round = 0  # rounds already completed in this epoch
        self._reset_epoch_state()

    # -- epoch bookkeeping ---------------------------------------------------

    def _reset_epoch_state(self) -> None:
        self.committee: Optional[int] = None
        self.grants_made = 0
        self.granted_ids: set = set()
        self.poll_min: Optional[int] = None
        self.request_best: Dict[int, int] = {}  # addressee -> smallest requester
        self.grant_seen: Dict[int, int] = {}    # leader -> granted node
        self.polluted = False
        self.count_heard: Optional[int] = None

    def _position(self) -> Tuple[int, int, int]:
        """(stage, cycle, round-within-phase) for the *current* round.

        The current round is ``self._epoch_round`` (0-based) within the
        epoch; all nodes compute identical positions because they share
        the global round counter.
        """
        k = self.k
        t = self._epoch_round
        cycles_len = 3 * k * k
        if t < cycles_len:
            cycle, rem = divmod(t, 3 * k)
            phase, pr = divmod(rem, k)
            return (_STAGE_CYCLES, cycle * 3 + phase, pr)
        t -= cycles_len
        if t < k + 2:
            return (_STAGE_VERIFY, 0, t)
        t -= k + 2
        if t < k + 2:
            return (_STAGE_DISSEMINATE, 0, t)
        raise AlgorithmViolation(
            f"node {self.node_id}: round {self._epoch_round} beyond epoch "
            f"length for k={self.k}")

    # -- compose ---------------------------------------------------------------

    def compose(self, ctx: RoundContext) -> Any:
        stage, cycphase, _ = self._position()
        k = self.k
        if stage == _STAGE_CYCLES:
            phase = cycphase % 3
            cycle = cycphase // 3
            if phase == _POLL:
                # Min-flood the smallest uncommitted id heard so far this
                # phase (first poll round: own id if uncommitted).
                value = self.poll_min
                if self.committee is None:
                    own = self.node_id
                    value = own if value is None else min(value, own)
                if value is None:
                    return None
                return ("P", k, cycle, NodeId(value))
            if phase == _REQUEST:
                items = tuple(
                    (NodeId(addr), NodeId(req))
                    for addr, req in sorted(self.request_best.items())
                )
                return ("R", k, cycle, items) if items else None
            # _GRANT
            items = tuple(
                (NodeId(leader), NodeId(grantee))
                for leader, grantee in sorted(self.grant_seen.items())
            )
            return ("G", k, cycle, items) if items else None
        if stage == _STAGE_VERIFY:
            if self.polluted:
                return ("V", k, _POLLUTED)
            return ("V", k, NodeId(self.committee))
        # _STAGE_DISSEMINATE
        if self.count_heard is None:
            return None
        return ("C", k, self.count_heard)

    # -- deliver ---------------------------------------------------------------

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        stage, cycphase, pr = self._position()
        k = self.k
        changed = False

        if stage == _STAGE_CYCLES:
            phase = cycphase % 3
            cycle = cycphase // 3
            if phase == _POLL:
                best = self.poll_min
                if self.committee is None:
                    own = self.node_id
                    best = own if best is None else min(best, own)
                for msg in inbox:
                    if msg[0] == "P":
                        value = int(msg[3])
                        if best is None or value < best:
                            best = value
                if best != self.poll_min:
                    self.poll_min = best
                    changed = True
                if pr == k - 1:
                    # Poll phase ends: uncommitted non-leaders register
                    # their own join request for the request phase.
                    self.request_best = {}
                    if (self.committee is None and self.poll_min is not None
                            and self.poll_min != self.node_id):
                        self.request_best[self.poll_min] = self.node_id
                    changed = True
            elif phase == _REQUEST:
                for msg in inbox:
                    if msg[0] == "R":
                        for addr, req in msg[3]:
                            addr, req = int(addr), int(req)
                            cur = self.request_best.get(addr)
                            if cur is None or req < cur:
                                self.request_best[addr] = req
                                changed = True
                if pr == k - 1:
                    # Request phase ends: leaders grant one requester.
                    self.grant_seen = {}
                    if self.committee is None and self.poll_min == self.node_id:
                        req = self.request_best.get(self.node_id)
                        if req is not None and req != self.node_id:
                            self.grant_seen[self.node_id] = req
                            self.grants_made += 1
                            self.granted_ids.add(req)
                    changed = True
            else:  # _GRANT
                for msg in inbox:
                    if msg[0] == "G":
                        for leader, grantee in msg[3]:
                            leader, grantee = int(leader), int(grantee)
                            if leader not in self.grant_seen:
                                self.grant_seen[leader] = grantee
                                changed = True
                if pr == k - 1:
                    # Grant phase ends: a granted node joins; reset the
                    # per-cycle flood state.
                    if self.committee is None:
                        for leader, grantee in self.grant_seen.items():
                            if grantee == self.node_id:
                                self.committee = leader
                                break
                    self.poll_min = None
                    self.request_best = {}
                    self.grant_seen = {}
                    changed = True
                    if cycle == k - 1:
                        # All cycles done: singletons for the uncommitted.
                        if self.committee is None:
                            self.committee = self.node_id
        elif stage == _STAGE_VERIFY:
            if not self.polluted:
                for msg in inbox:
                    if msg[0] == "V":
                        payload = msg[2]
                        if payload == _POLLUTED or int(payload) != self.committee:
                            self.polluted = True
                            changed = True
                            break
            if pr == k + 1:
                # Verification ends.  Success: the unique leader seeds the
                # count for dissemination.
                if (not self.polluted and self.committee == self.node_id):
                    self.count_heard = self.grants_made + 1
                changed = True
        else:  # _STAGE_DISSEMINATE
            if self.polluted:
                # Failed epoch: dissemination is skipped entirely; this
                # branch is unreachable because _advance jumps straight to
                # the next epoch for polluted nodes.
                raise AlgorithmViolation(
                    f"node {self.node_id}: polluted node entered "
                    f"dissemination")
            for msg in inbox:
                if msg[0] == "C":
                    value = int(msg[2])
                    if self.count_heard is None:
                        self.count_heard = value
                        changed = True
                    elif self.count_heard != value:
                        raise AlgorithmViolation(
                            f"node {self.node_id}: conflicting counts "
                            f"{self.count_heard} vs {value}")
            if pr == k + 1:
                if self.count_heard is None:
                    raise AlgorithmViolation(
                        f"node {self.node_id}: dissemination ended without "
                        f"a count (k={k})")
                self.decide(self.count_heard)
                self.halt()

        self.mark_changed(changed)
        self._advance(stage)

    def _advance(self, stage: int) -> None:
        """Advance the epoch-round counter; jump epochs on failure."""
        self._epoch_round += 1
        k = self.k
        verify_end = 3 * k * k + (k + 2)
        if stage == _STAGE_VERIFY and self._epoch_round == verify_end:
            if self.polluted:
                # Globally consistent failure: restart with a grown guess.
                self.k *= self.guess_growth
                self._epoch_round = 0
                self._reset_epoch_state()
