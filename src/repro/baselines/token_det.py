"""Deterministic token dissemination: smallest-missing-first forwarding.

A second all-to-all dissemination baseline, deterministic where
:class:`~repro.baselines.token.RandomTokenDissemination` is randomized.
Each round every node broadcasts the **smallest token it knows that it
has not yet broadcast in the current sweep**; when it has cycled through
its whole set, the sweep restarts.  The schedule of broadcasts therefore
adapts to what a node has learned, and on stable subgraphs tokens
pipeline behind each other in id order.

This is the protocol family (token-forwarding: forward only whole tokens
you hold, one per round) that the ``Ω(N + N²/T)`` lower bounds of the
literature constrain, so it complements the randomized variant in the F2
experiments; being deterministic it also removes seed variance from the
T-sweeps.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .._validate import require_positive_int
from ..simnet.message import NodeId
from ..simnet.node import Algorithm, RoundContext

__all__ = ["DeterministicTokenDissemination"]


class DeterministicTokenDissemination(Algorithm):
    """Smallest-missing-first token forwarding (see module docstring).

    Parameters
    ----------
    node_id:
        Node id; doubles as the node's own token.
    target_count:
        Known ``N`` to decide at (as in the randomized variant); ``None``
        for oracle-measured runs.
    """

    name = "token_dissemination_det"

    def __init__(self, node_id: int,
                 target_count: Optional[int] = None) -> None:
        super().__init__(node_id)
        if target_count is not None:
            require_positive_int(target_count, "target_count")
        self.target_count = target_count
        self.tokens = {node_id}
        self._sent_this_sweep: set = set()

    @property
    def progress(self) -> int:
        """Distinct tokens known (adaptive adversaries sort on this)."""
        return len(self.tokens)

    def peek_broadcast(self) -> int:
        """The token the next ``compose`` will send (no side effects).

        Exposed for strongly adaptive adversaries
        (:class:`~repro.dynamics.adaptive.BottleneckBridgeAdversary`),
        which the model allows to predict deterministic protocols.
        """
        pending = self.tokens - self._sent_this_sweep
        if not pending:
            pending = self.tokens
        return min(pending)

    def compose(self, ctx: RoundContext) -> Any:
        pending = self.tokens - self._sent_this_sweep
        if not pending:
            self._sent_this_sweep = set()
            pending = self.tokens
        pick = min(pending)
        self._sent_this_sweep.add(pick)
        return NodeId(pick)

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        before = len(self.tokens)
        for token in inbox:
            self.tokens.add(int(token))
        self.mark_changed(len(self.tokens) != before)
        if (self.target_count is not None and not self.decided
                and len(self.tokens) >= self.target_count):
            self.decide(len(self.tokens))
