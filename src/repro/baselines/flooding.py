"""Flooding primitives and the classic known-``N`` baselines.

In a 1-interval connected dynamic network, flooding makes progress one
node per round in the worst case (every round's cut between informed and
uninformed nodes contains an edge), so:

* a token floods to all nodes within ``N - 1`` rounds — and an adaptive
  adversary (:class:`~repro.dynamics.adaptive.PathHiderAdversary`) forces
  exactly that;
* the max-of-inputs stabilises within ``N - 1`` rounds;

hence the classic baselines below decide after exactly ``rounds_bound``
rounds, where ``rounds_bound`` is ``N - 1`` when ``N`` is known (the
standard assumption of the folklore algorithm) or any known upper bound on
the dynamic diameter ``d``.  Their round complexity is ``Θ(N)``
regardless of how small ``d`` is — the additive ``Ω(N)`` term the paper
removes.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .._validate import require_positive_int
from ..simnet.batch import (
    FloodBroadcastBatchKernel,
    FloodMaxBatchKernel,
    FloodTokenBatchKernel,
)
from ..simnet.message import NodeId
from ..simnet.node import Algorithm, RoundContext

__all__ = ["FloodToken", "FloodMax", "FloodBroadcast"]


class FloodToken(Algorithm):
    """Epidemic spreading of a single bit ("have you heard the token?").

    The microscope used to *measure* flooding: seeded nodes start
    ``informed``; every informed node broadcasts the token every round; a
    node decides (value ``True``) the round it becomes informed.  The
    public ``informed`` attribute is what
    :class:`~repro.dynamics.adaptive.PathHiderAdversary` throttles.

    This node never halts on its own — run it with ``until="decided"``.
    """

    name = "flood_token"

    def __init__(self, node_id: int, informed: bool = False) -> None:
        super().__init__(node_id)
        self.informed = bool(informed)
        if self.informed:
            self.decide(True)

    def compose(self, ctx: RoundContext) -> Any:
        return True if self.informed else None

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        if not self.informed and inbox:
            self.informed = True
            self.decide(True)
            self.mark_changed(True)
        else:
            self.mark_changed(False)

    @classmethod
    def __batch_kernel__(cls, nodes, id_bits: int = 32):
        """Boolean-OR reach batch kernel (see :mod:`repro.simnet.batch`)."""
        if cls is not FloodToken:
            return None
        return FloodTokenBatchKernel.build(nodes)


class FloodMax(Algorithm):
    """Known-bound flooding Max: broadcast the running max, halt on a timer.

    Parameters
    ----------
    node_id:
        Node id.
    value:
        The node's input.
    rounds_bound:
        Number of rounds to run before deciding.  Correct whenever
        ``rounds_bound >= N - 1`` (the folklore known-``N`` setting) or
        ``rounds_bound >= d`` (known dynamic-diameter bound).  The caller
        chooses which knowledge assumption to encode.

    Complexity: exactly ``rounds_bound`` rounds; one ``(id, value)``-sized
    message per node per round.
    """

    name = "flood_max"

    def __init__(self, node_id: int, value: int, rounds_bound: int) -> None:
        super().__init__(node_id)
        self.value = value
        self.rounds_bound = require_positive_int(rounds_bound, "rounds_bound")
        self.best = value

    def compose(self, ctx: RoundContext) -> Any:
        return self.best

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        new_best = max(inbox, default=self.best)
        changed = new_best > self.best
        if changed:
            self.best = new_best
        self.mark_changed(changed)
        if ctx.round_index >= self.rounds_bound:
            self.decide(self.best)
            self.halt()

    @classmethod
    def __batch_kernel__(cls, nodes, id_bits: int = 32):
        """Segment-max batch kernel (see :mod:`repro.simnet.batch`)."""
        if cls is not FloodMax:
            return None
        return FloodMaxBatchKernel.build(nodes)


class FloodBroadcast(Algorithm):
    """Known-bound broadcast of a payload from source nodes to everyone.

    Source nodes carry a payload; all nodes forward any payload heard;
    every node decides on the (unique) payload after ``rounds_bound``
    rounds and halts.  Correct for ``rounds_bound >= N - 1`` (or ``>= d``).
    With several distinct sources, nodes decide on the payload attached to
    the smallest source id (deterministic tie-break), which makes this
    double as a leader-value broadcast.
    """

    name = "flood_broadcast"

    def __init__(self, node_id: int, rounds_bound: int,
                 payload: Optional[Any] = None) -> None:
        super().__init__(node_id)
        self.rounds_bound = require_positive_int(rounds_bound, "rounds_bound")
        # (source id, payload); smallest source id wins.
        self.best: Optional[tuple] = None
        if payload is not None:
            self.best = (NodeId(node_id), payload)

    def compose(self, ctx: RoundContext) -> Any:
        return self.best  # None when nothing heard yet

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        changed = False
        for item in inbox:
            if item is not None and (self.best is None or item < self.best):
                self.best = item
                changed = True
        self.mark_changed(changed)
        if ctx.round_index >= self.rounds_bound:
            self.decide(None if self.best is None else self.best[1])
            self.halt()

    @classmethod
    def __batch_kernel__(cls, nodes, id_bits: int = 32):
        """Min-source-id reach batch kernel (see :mod:`repro.simnet.batch`)."""
        if cls is not FloodBroadcast:
            return None
        return FloodBroadcastBatchKernel.build(nodes, id_bits)
