"""Compatibility shim: the batch-kernel tier moved to the backends package.

The kernel protocol, the concrete kernels, and the numeric helpers now
live in :mod:`repro.simnet.backends.batch`, where the batch tier is one
pluggable :class:`~repro.simnet.backends.base.EngineBackend` among the
registered execution tiers.  This module re-exports the public surface
so existing ``from repro.simnet.batch import ...`` imports (algorithm
hooks, tests, downstream code) keep working unchanged.
"""

from __future__ import annotations

from .backends.batch import (  # noqa: F401
    Events,
    _INT_SENTINEL,
    BatchContext,
    BatchKernel,
    BatchQuiescence,
    FloodBroadcastBatchKernel,
    FloodMaxBatchKernel,
    FloodTokenBatchKernel,
    IdSetBatchKernel,
    MaxBatchKernel,
    MinVectorBatchKernel,
    aggregate_batch_kernel,
    build_batch_kernel,
    describe_batch_ineligibility,
    int_payload_bits,
    popcount64,
    segment_counts,
    segment_reduce,
)

__all__ = [
    "BatchContext",
    "BatchKernel",
    "BatchQuiescence",
    "build_batch_kernel",
    "describe_batch_ineligibility",
    "aggregate_batch_kernel",
    "segment_reduce",
    "segment_counts",
    "int_payload_bits",
    "popcount64",
    "MaxBatchKernel",
    "IdSetBatchKernel",
    "MinVectorBatchKernel",
    "FloodMaxBatchKernel",
    "FloodTokenBatchKernel",
    "FloodBroadcastBatchKernel",
]
