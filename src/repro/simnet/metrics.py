"""Exact complexity accounting for simulation runs.

The experiments in this repository compare algorithms along three axes:

* **round complexity** — rounds until the *last* node decides (and, for
  stabilizing algorithms, decides *finally*);
* **message complexity** — directed deliveries (one per edge endpoint per
  round in which the sender broadcast something);
* **bit complexity** — bits *transmitted*, charged once per broadcast
  (local broadcast reaches all neighbours with one transmission), using
  :func:`repro.simnet.message.bit_size`.

:class:`MetricsCollector` accumulates these during a run;
:meth:`MetricsCollector.snapshot` freezes them into a :class:`RunMetrics`.
Algorithms may add their own named counters (restarts, phases, ...) through
:meth:`MetricsCollector.incr`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["MetricsCollector", "RunMetrics"]


@dataclass(frozen=True)
class RunMetrics:
    """Immutable summary of one simulation run.

    Attributes
    ----------
    rounds:
        Number of rounds executed.
    broadcasts:
        Number of (node, round) pairs in which the node transmitted.
    delivered_messages:
        Number of directed deliveries (sum over rounds of the degrees of
        transmitting nodes).
    broadcast_bits:
        Total bits transmitted (each broadcast charged once).
    delivered_bits:
        Total bits received (each broadcast charged once per neighbour).
    first_decision_round / last_decision_round:
        Rounds (1-based) at which the first/last node fixed its final
        decision; ``None`` if nobody decided.
    decision_rounds:
        Per-node final-decision round, keyed by node id.
    counters:
        Algorithm-defined named counters.
    phase_seconds:
        Wall-clock totals per engine phase (``compose`` / ``reveal`` /
        ``deliver`` / ``drain``), present only when the run was profiled
        (``Simulator(profile=True)`` or the harness ``--profile`` flag);
        ``None`` otherwise so unprofiled results stay byte-comparable.
    engine_stats:
        Rounds executed per engine dispatch tier (``batch`` / ``fast`` /
        ``reference``), present only when the run was profiled; ``None``
        otherwise for the same byte-comparability reason — the tier split
        is an implementation observable, not result data.
    """

    rounds: int
    broadcasts: int
    delivered_messages: int
    broadcast_bits: int
    delivered_bits: int
    first_decision_round: Optional[int]
    last_decision_round: Optional[int]
    decision_rounds: Mapping[int, int]
    counters: Mapping[str, int]
    phase_seconds: Optional[Mapping[str, float]] = None
    engine_stats: Optional[Mapping[str, int]] = None

    def as_dict(self) -> Dict[str, object]:
        """Flatten to a plain dict (for CSV/JSON export by the harness)."""
        out: Dict[str, object] = {
            "rounds": self.rounds,
            "broadcasts": self.broadcasts,
            "delivered_messages": self.delivered_messages,
            "broadcast_bits": self.broadcast_bits,
            "delivered_bits": self.delivered_bits,
            "first_decision_round": self.first_decision_round,
            "last_decision_round": self.last_decision_round,
        }
        for name, value in sorted(self.counters.items()):
            out[f"counter.{name}"] = value
        if self.phase_seconds is not None:
            for name, seconds in sorted(self.phase_seconds.items()):
                out[f"phase.{name}_s"] = seconds
        if self.engine_stats is not None:
            for name, rounds in sorted(self.engine_stats.items()):
                out[f"engine.{name}_rounds"] = rounds
        return out


@dataclass
class MetricsCollector:
    """Mutable accumulator used by the engine while a run executes."""

    rounds: int = 0
    broadcasts: int = 0
    delivered_messages: int = 0
    broadcast_bits: int = 0
    delivered_bits: int = 0
    #: Largest single broadcast seen (the CONGEST-style message-width
    #: measure the harness reports as ``max_message_bits``).
    max_broadcast_bits: int = 0
    _decision_rounds: Dict[int, int] = field(default_factory=dict)
    _counters: Dict[str, int] = field(default_factory=dict)

    def on_round_executed(self) -> None:
        """Record that one more round completed."""
        self.rounds += 1

    def on_broadcast(self, bits: int, degree: int) -> None:
        """Record one node transmitting a *bits*-bit message to *degree* neighbours."""
        self.broadcasts += 1
        self.delivered_messages += degree
        self.broadcast_bits += bits
        self.delivered_bits += bits * degree
        if bits > self.max_broadcast_bits:
            self.max_broadcast_bits = bits

    def on_decision(self, node_id: int, round_index: int) -> None:
        """Record *node_id* fixing its decision at 1-based *round_index*.

        Stabilizing algorithms may decide, retract, and re-decide; the
        engine calls this each time, so the stored value is the round of
        the **latest** (hence final) decision.
        """
        self._decision_rounds[node_id] = round_index

    def on_retraction(self, node_id: int) -> None:
        """Record *node_id* retracting a previous decision (restart)."""
        self._decision_rounds.pop(node_id, None)
        self.incr("retractions")

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment the algorithm-defined counter *name* by *amount*."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def decided_nodes(self) -> Tuple[int, ...]:
        """Node ids that currently hold a decision."""
        return tuple(sorted(self._decision_rounds))

    def snapshot(self,
                 phase_seconds: Optional[Dict[str, float]] = None,
                 engine_stats: Optional[Dict[str, int]] = None) -> RunMetrics:
        """Freeze the current totals into a :class:`RunMetrics`.

        *phase_seconds* and *engine_stats*, when given, carry the
        engine's per-phase profiling totals and per-tier round counts
        into the frozen record.
        """
        rounds = self._decision_rounds.values()
        return RunMetrics(
            rounds=self.rounds,
            broadcasts=self.broadcasts,
            delivered_messages=self.delivered_messages,
            broadcast_bits=self.broadcast_bits,
            delivered_bits=self.delivered_bits,
            first_decision_round=min(rounds) if rounds else None,
            last_decision_round=max(rounds) if rounds else None,
            decision_rounds=dict(self._decision_rounds),
            counters=dict(self._counters),
            phase_seconds=phase_seconds,
            engine_stats=engine_stats,
        )
