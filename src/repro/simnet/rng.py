"""Deterministic random-stream management.

Every randomised component of the library draws from a
:class:`numpy.random.Generator` obtained through an :class:`RngRegistry`.
The registry derives independent child streams from a single root seed via
:class:`numpy.random.SeedSequence`, keyed by a *component name* and an
optional *node id*.  Two consequences:

1. a whole experiment is reproducible from one integer seed, and
2. adding a new randomised component (or reordering draws inside one
   component) does not perturb the streams of the others — each key hashes
   to its own independent stream.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np

from .._validate import require_nonnegative_int, require_positive_int

__all__ = ["RngRegistry", "derive_seeds"]


def _key_entropy(name: str) -> int:
    """Stable 32-bit entropy derived from a component name.

    ``zlib.crc32`` is used instead of ``hash()`` because the latter is
    salted per process and would destroy reproducibility across runs.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


def derive_seeds(root_seed: int, count: int) -> List[int]:
    """Derive *count* independent trial seeds from one root seed.

    The canonical way to fan one experiment seed out into per-trial
    seeds (e.g. replicate seeds for a sweep): a
    :class:`numpy.random.SeedSequence` keyed only by *root_seed*, so the
    list is identical on every platform and in every process — never
    derived from ambient RNG state.  Each returned seed is a valid
    :class:`RngRegistry` root.
    """
    require_nonnegative_int(root_seed, "root_seed")
    require_positive_int(count, "count")
    state = np.random.SeedSequence(root_seed).generate_state(
        count, dtype=np.uint64)
    return [int(s % (1 << 62)) for s in state]


class RngRegistry:
    """Factory of independent, reproducible random generators.

    Parameters
    ----------
    seed:
        Root seed of the experiment.  Equal seeds yield identical streams
        for every ``(component, node)`` key, on every platform.

    Examples
    --------
    >>> reg = RngRegistry(7)
    >>> g1 = reg.for_component("adversary")
    >>> g2 = reg.for_node("sketch", 13)
    >>> reg2 = RngRegistry(7)
    >>> bool((reg2.for_node("sketch", 13).integers(1 << 30, size=4)
    ...       == g2.integers(1 << 30, size=4)).all())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = require_nonnegative_int(seed, "seed")
        self._root = np.random.SeedSequence(self._seed)
        self._cache: Dict[Tuple[str, int], np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was constructed with."""
        return self._seed

    def for_component(self, name: str) -> np.random.Generator:
        """Return the generator for a library component (e.g. an adversary).

        Repeated calls with the same name return the *same* generator
        object, so sequential draws continue a single stream.
        """
        return self._get(name, -1)

    def for_node(self, component: str, node_id: int) -> np.random.Generator:
        """Return the generator for (*component*, *node_id*).

        Streams for different nodes are mutually independent, which models
        each node holding its own private coin.
        """
        require_nonnegative_int(node_id, "node_id")
        return self._get(component, node_id)

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. for a nested sub-experiment)."""
        child_seed = int(
            np.random.SeedSequence(
                entropy=self._seed, spawn_key=(_key_entropy(name),)
            ).generate_state(1, dtype=np.uint64)[0]
            % (1 << 62)
        )
        return RngRegistry(child_seed)

    def _get(self, name: str, node_id: int) -> np.random.Generator:
        key = (name, node_id)
        gen = self._cache.get(key)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self._seed,
                spawn_key=(_key_entropy(name), node_id + 1),
            )
            gen = np.random.default_rng(seq)
            self._cache[key] = gen
        return gen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={len(self._cache)})"
