"""Protocol-node base class and per-round context.

An algorithm for the T-interval dynamic-network model is implemented as a
subclass of :class:`Algorithm`.  The engine drives every node through the
same two-step round:

1. :meth:`Algorithm.compose` — produce this round's broadcast payload
   *before* the adversary's graph for the round is revealed (returning
   ``None`` means "stay silent");
2. :meth:`Algorithm.deliver` — consume the inbox (the payloads of all
   current neighbours, in unspecified order, without sender annotation —
   senders who want to be identified must embed their id in the payload).

Decision lifecycle
------------------
Nodes report results through :meth:`decide`; *stabilizing* algorithms may
:meth:`retract` a tentative decision when contrary information arrives and
decide again later.  A node that is certain it is done calls :meth:`halt`;
halted nodes neither transmit nor receive.  The engine's stop conditions
are built from these flags (see :class:`~repro.simnet.engine.Simulator`).

Model enforcement
-----------------
Nodes only ever see their own state, their inbox, and the
:class:`RoundContext`.  The context exposes the node's private random
stream and a counter hook, but deliberately *not* the schedule, the other
nodes, or ``N`` — algorithms that need such knowledge must take it as an
explicit constructor parameter (so the knowledge assumptions of every
algorithm are visible in its signature).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

__all__ = ["Algorithm", "RoundContext"]


class RoundContext:
    """Per-round information handed to a node by the engine.

    Attributes
    ----------
    round_index:
        The 1-based index of the current round.
    rng:
        The node's private :class:`numpy.random.Generator`.

    Lifetime contract
    -----------------
    The engine's fast path keeps **one context per node** and rewrites
    ``round_index`` in place each round (the reference path allocates
    fresh ones; both are observably identical).  Nodes must therefore
    treat the context as valid only for the duration of the current
    ``compose``/``deliver`` call and never retain it across rounds.
    """

    __slots__ = ("round_index", "rng", "_incr")

    def __init__(self, round_index: int, rng: np.random.Generator,
                 incr: Callable[[str, int], None]) -> None:
        self.round_index = round_index
        self.rng = rng
        self._incr = incr

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment the run-level counter *name* (for metrics/ablations)."""
        self._incr(name, amount)


class Algorithm:
    """Base class for all protocol nodes.

    Parameters
    ----------
    node_id:
        The node's unique identifier.  Ids need not be contiguous or dense
        — algorithms must not assume ids are in ``range(N)``.

    Subclasses implement :meth:`compose` and :meth:`deliver`.
    """

    #: Short machine name used in metrics and result tables; subclasses
    #: should override.
    name: str = "algorithm"

    #: Optional batch-kernel hook (see :mod:`repro.simnet.batch`): a
    #: classmethod ``__batch_kernel__(cls, nodes, id_bits=32)`` returning
    #: a ``BatchKernel`` driving the whole homogeneous population with
    #: array operations, or ``None`` to decline (the engine then runs the
    #: ordinary per-node path).  Implementations must guard
    #: ``if cls is not TheExactClass: return None`` so subclasses with
    #: changed semantics are never silently batched.
    __batch_kernel__ = None

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self._decided = False
        self._output: Any = None
        self._halted = False
        self._events: List[tuple] = []
        self._state_changed = True  # conservative: unknown before round 1

    # -- interface implemented by subclasses --------------------------------

    def compose(self, ctx: RoundContext) -> Any:
        """Return this round's broadcast payload, or ``None`` to stay silent."""
        raise NotImplementedError

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        """Consume the payloads received from current neighbours."""
        raise NotImplementedError

    # -- decision lifecycle --------------------------------------------------

    def decide(self, value: Any) -> None:
        """Fix (tentatively, for stabilizing algorithms) the node's output."""
        self._decided = True
        self._output = value
        self._events.append(("decide", value))

    def retract(self) -> None:
        """Withdraw a previous tentative decision."""
        if self._decided:
            self._decided = False
            self._output = None
            self._events.append(("retract",))

    def halt(self) -> None:
        """Permanently stop participating.  Implies the decision is final."""
        self._halted = True
        self._events.append(("halt",))

    @property
    def decided(self) -> bool:
        """Whether the node currently holds a (possibly tentative) decision."""
        return self._decided

    @property
    def output(self) -> Any:
        """The node's current decision value (``None`` when undecided)."""
        return self._output

    @property
    def halted(self) -> bool:
        """Whether the node has permanently stopped."""
        return self._halted

    # -- quiescence (used by the engine's ``until='quiescent'`` stop rule) --

    def mark_changed(self, changed: bool = True) -> None:
        """Subclass hook: report whether local state changed this round."""
        self._state_changed = bool(changed)

    @property
    def state_changed(self) -> bool:
        """Whether the node reported a state change in the last round."""
        return self._state_changed

    # -- engine plumbing -----------------------------------------------------

    def _drain_events(self) -> List[tuple]:
        """Return and clear decision-lifecycle events (engine use only)."""
        events, self._events = self._events, []
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "halted" if self._halted else (
            f"decided={self._output!r}" if self._decided else "running")
        return f"<{type(self).__name__} id={self.node_id} {status}>"


class FunctionalNode(Algorithm):
    """Adapter turning a pair of callables into an :class:`Algorithm`.

    Useful in tests and examples for tiny ad-hoc protocols::

        node = FunctionalNode(3, compose=lambda s, ctx: s["x"],
                              deliver=my_deliver, state={"x": 0})
    """

    name = "functional"

    def __init__(self, node_id: int,
                 compose: Callable[[dict, RoundContext], Any],
                 deliver: Callable[[dict, RoundContext, List[Any]], None],
                 state: Optional[dict] = None) -> None:
        super().__init__(node_id)
        self.state = dict(state or {})
        self._compose = compose
        self._deliver = deliver

    def compose(self, ctx: RoundContext) -> Any:
        return self._compose(self.state, ctx)

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        self._deliver(self.state, ctx, inbox)


__all__.append("FunctionalNode")
