"""Message costing for CONGEST-style bandwidth accounting.

Algorithms in this repository exchange plain Python values (ints, floats,
tuples, frozensets, dataclasses with ``__msg_fields__``).  To compare
*bit complexity* between algorithms we need a consistent, model-level cost
for each message — the number of bits an implementation on a real
`B`-bit-per-round channel would need.  :func:`bit_size` defines that cost.

Conventions (documented here once, relied on by the metrics module):

* ``None`` costs 1 bit (a presence flag).
* ``bool`` costs 1 bit.
* ``int`` costs ``max(1, value.bit_length()) + 1`` bits (sign/terminator),
  unless an ``id_bits`` override is given and the int is tagged as a node
  id via :class:`NodeId` — then it costs exactly ``id_bits``.
* ``float`` costs 64 bits (IEEE double).
* containers (tuple/list/frozenset/set/dict) cost the sum of their items
  plus 8 bits of framing per container, matching a length-prefixed
  encoding up to constants.
* ``bytes``/``str`` cost 8 bits per byte plus framing.
* objects exposing ``__msg_bits__()`` cost whatever that returns — protocol
  message dataclasses use this to charge their true field widths.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["bit_size", "NodeId"]

_CONTAINER_FRAMING_BITS = 8


class NodeId(int):
    """An ``int`` subtype marking a value as a node identifier.

    In the bounded-bandwidth model node ids are charged a fixed width of
    ``id_bits = ceil(log2(id_space))`` rather than their numeric
    bit-length, so that complexity accounting matches the ``Θ(log N)``
    word size of the CONGEST-style model.
    """

    __slots__ = ()


def bit_size(obj: Any, id_bits: int = 32) -> int:
    """Return the model-level cost in bits of sending *obj*.

    Parameters
    ----------
    obj:
        The message payload (any composition of the supported types).
    id_bits:
        Fixed width charged for :class:`NodeId` values.

    Raises
    ------
    TypeError
        If *obj* (or something nested in it) is of an unsupported type and
        does not provide ``__msg_bits__``.
    """
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, NodeId):
        return id_bits
    if isinstance(obj, int):
        return max(1, obj.bit_length()) + 1
    if isinstance(obj, float):
        return 64
    # NumPy scalars cost the same as the Python value they box, so batch
    # kernels that leak an np.int64/np.float32 into a payload (or into
    # node state later re-encoded) charge identical bits to the per-node
    # tiers.  np.float64 is a float subclass and is caught above; np.bool_
    # and the integer scalars are not subclasses of their Python kin.
    if isinstance(obj, np.bool_):
        return 1
    if isinstance(obj, np.integer):
        return max(1, int(obj).bit_length()) + 1
    if isinstance(obj, np.floating):
        return 64
    if isinstance(obj, (bytes, bytearray)):
        return 8 * len(obj) + _CONTAINER_FRAMING_BITS
    if isinstance(obj, str):
        return 8 * len(obj.encode("utf-8")) + _CONTAINER_FRAMING_BITS
    meth = getattr(obj, "__msg_bits__", None)
    if meth is not None:
        bits = meth() if callable(meth) else meth
        if not isinstance(bits, int) or bits < 0:
            raise TypeError(
                f"__msg_bits__ of {type(obj).__name__} must return a "
                f"non-negative int, got {bits!r}"
            )
        return bits
    if isinstance(obj, dict):
        total = _CONTAINER_FRAMING_BITS
        for key, value in obj.items():
            total += bit_size(key, id_bits) + bit_size(value, id_bits)
        return total
    if isinstance(obj, (tuple, list, set, frozenset)):
        total = _CONTAINER_FRAMING_BITS
        for item in obj:
            total += bit_size(item, id_bits)
        return total
    raise TypeError(
        f"unsupported message type {type(obj).__name__!r}; add "
        f"__msg_bits__ to cost it explicitly"
    )
