"""S1 — the lock-step synchronous dynamic-network simulator.

This subpackage is the execution substrate every algorithm in this
repository runs on.  It implements the communication model of the paper
(and of Kuhn–Lynch–Oshman T-interval dynamic networks generally):

* ``N`` anonymous-count nodes with unique ids proceed in lock-step rounds;
* each round, every node composes **one** broadcast message *before*
  learning who its neighbours are;
* the adversary's graph for the round then delivers that message to every
  current neighbour;
* nodes consume their inbox and update local state.

Public surface:

* :class:`~repro.simnet.engine.Simulator` — the round engine.
* :class:`~repro.simnet.node.Algorithm` — base class for protocol nodes.
* :class:`~repro.simnet.node.RoundContext` — per-round info handed to nodes.
* :class:`~repro.simnet.metrics.RunMetrics` / :class:`~repro.simnet.metrics.MetricsCollector`
  — exact rounds/messages/bits accounting.
* :class:`~repro.simnet.rng.RngRegistry` — deterministic per-component,
  per-node random streams.
* :func:`~repro.simnet.message.bit_size` — CONGEST-style message costing.
"""

from .engine import Simulator, RunResult, profile_default, set_profile_default
from .node import Algorithm, RoundContext
from .metrics import MetricsCollector, RunMetrics
from .rng import RngRegistry, derive_seeds
from .message import bit_size
from .trace import TraceRecorder, TraceEvent

__all__ = [
    "Simulator",
    "RunResult",
    "profile_default",
    "set_profile_default",
    "Algorithm",
    "RoundContext",
    "MetricsCollector",
    "RunMetrics",
    "RngRegistry",
    "derive_seeds",
    "bit_size",
    "TraceRecorder",
    "TraceEvent",
]
