"""The batch backend: struct-of-arrays kernels, CSR segment-reduce delivery.

The engine's per-node fast path (see :mod:`repro.simnet.backends.fast`)
still makes one Python ``compose()`` and one ``deliver()`` call per
active node per round, so for the aggregate-style algorithms the
*algorithm layer* dominates at large ``N``.  Their per-round updates,
however, are associative reductions over neighbour payloads — max,
boolean OR, set union, coordinate-wise min — which evaluate in one shot
as NumPy segment-reduces over the CSR adjacency the fast engine already
caches.

This module defines the opt-in **batch kernel protocol**:

* an algorithm class exposes a classmethod hook ``__batch_kernel__(nodes,
  id_bits=...)`` returning a :class:`BatchKernel` (or ``None`` when the
  concrete node population is not eligible — heterogeneous bounds,
  exotic state types, subclasses with overridden semantics);
* the kernel holds the whole population's state as struct-of-arrays
  (values, bitsets, sketch matrices, decided flags, quiescence windows)
  and implements ``compose``/``deliver`` over the entire active set;
* the :class:`BatchBackend` engages the kernel when the run's
  capability negotiation allows it (see
  :mod:`repro.simnet.backends.registry`), reconciles
  decisions/halts/metrics from the arrays, and writes the state back
  into the node objects before anything else can observe them.

Equivalence contract
--------------------
A kernel must be *bit-for-bit* equivalent to running the per-node
``compose``/``deliver`` fold: same per-round changed flags (quiescence),
same decide/retract/halt events with the same values, the same payload
bit costs (:func:`repro.simnet.message.bit_size` of the per-node
encoding), and the same per-node RNG consumption.  The three-way golden
grid in ``tests/test_fastpath_equivalence.py`` and the fold-matching
property tests in ``tests/test_batch_kernels.py`` enforce this.

Message loss
------------
The batch tier executes lossy runs (``loss_rate > 0``) natively: the
per-edge Bernoulli keep mask is drawn **vectorised** from the shared
``"loss"`` RNG stream and applied by handing every kernel a filtered
*delivery view* of the round's CSR (:func:`lossy_delivery_view`).  The
draw order is bit-identical to the per-node engines' — those draw
``rng.random(len(inbox))`` per non-halted receiver in ascending receiver
order, where each inbox holds exactly the payload-bearing edges of the
receiver's CSR row in row order; since NumPy's ``Generator.random``
consumes one state increment per double, one flat draw over the
concatenated sender-edges reproduces the per-receiver stream exactly.
Broadcast accounting stays on the *unfiltered* CSR (loss happens at
delivery; ``delivered_messages`` counts pre-loss degrees, exactly as the
per-node paths do), and the total dropped count feeds the same
``messages_lost`` counter.

Segment reduction over CSR
--------------------------
``np.ufunc.reduceat(data, indptr[:-1])`` mishandles empty segments (it
returns ``data[start]`` for them), so :func:`segment_reduce` passes only
the *non-empty* starts: consecutive non-empty starts span the empty
segments between them correctly, and the results scatter back through
the non-empty mask while empty segments keep the receiver's own state —
exactly the semantics of a node with an empty inbox.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..message import bit_size
from .base import Capabilities, CapabilityDiff, EngineBackend

__all__ = [
    "BatchBackend",
    "BatchContext",
    "BatchKernel",
    "BatchQuiescence",
    "build_batch_kernel",
    "describe_batch_ineligibility",
    "ineligibility_diff",
    "aggregate_batch_kernel",
    "lossy_delivery_view",
    "segment_reduce",
    "segment_counts",
    "int_payload_bits",
    "popcount64",
    "MaxBatchKernel",
    "IdSetBatchKernel",
    "MinVectorBatchKernel",
    "FloodMaxBatchKernel",
    "FloodTokenBatchKernel",
    "FloodBroadcastBatchKernel",
]

#: Events a kernel reports back: ``(kind, node_index, value)`` with kind
#: one of ``"decide"`` / ``"retract"`` / ``"halt"`` (value ``None`` for
#: the latter two), in ascending node-index order per kind.
Events = List[Tuple[str, int, Any]]

#: Sentinel for "no value" in int64 payload arrays; larger than any
#: eligible real value (eligibility requires ``|v| < 2**62``).
_INT_SENTINEL = np.int64(2 ** 62)

_CONTAINER_FRAMING_BITS = 8  # matches repro.simnet.message


# --------------------------------------------------------------------------
# numeric helpers
# --------------------------------------------------------------------------

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    def popcount64(x: np.ndarray) -> np.ndarray:
        """Per-element population count of a uint64 array (int64 result)."""
        return np.bitwise_count(x).astype(np.int64)
else:  # pragma: no cover - exercised only on numpy < 2
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)

    def popcount64(x: np.ndarray) -> np.ndarray:
        """Per-element population count of a uint64 array (int64 result)."""
        flat = np.ascontiguousarray(x).view(np.uint8)
        return _POP8[flat].reshape(x.shape + (8,)).sum(axis=-1)


def int_payload_bits(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`~repro.simnet.message.bit_size` for int payloads.

    ``bit_size(int)`` is ``max(1, v.bit_length()) + 1``; Python's
    ``bit_length`` of a negative int is that of its absolute value.  The
    bit length is computed *exactly* via an OR-smear + popcount on the
    uint64 view — float tricks (``frexp``/``log2``) are inexact near the
    2**53 mantissa boundary and would silently mis-cost large payloads.
    """
    x = np.abs(values.astype(np.int64, copy=True)).astype(np.uint64)
    for shift in (1, 2, 4, 8, 16, 32):
        x |= x >> np.uint64(shift)
    lengths = popcount64(x)
    return np.maximum(lengths, 1) + 1


def segment_reduce(ufunc: np.ufunc, data: np.ndarray, indptr: np.ndarray,
                   out: np.ndarray) -> np.ndarray:
    """Merge per-segment reductions of *data* into *out* (in place).

    ``data`` holds one row per delivered message in receiver-grouped CSR
    order; segment ``j`` is ``data[indptr[j]:indptr[j+1]]``.  ``out``
    must be pre-initialised with each receiver's own state: non-empty
    segments are reduced with *ufunc* and merged into the receiver's row
    (again with *ufunc*), empty segments — empty inboxes — are left
    untouched.
    """
    starts = indptr[:-1]
    nonempty = indptr[1:] > starts
    if not nonempty.any():
        return out
    reduced = ufunc.reduceat(data, starts[nonempty], axis=0)
    out[nonempty] = ufunc(out[nonempty], reduced)
    return out


def segment_counts(values: np.ndarray, indptr: np.ndarray,
                   indices: np.ndarray) -> np.ndarray:
    """Per-receiver sum of ``values[sender]`` over its CSR neighbours.

    Uses a prefix sum (cumsum is total, so empty segments need no
    special-casing, unlike ``reduceat``).
    """
    cum = np.zeros(len(indices) + 1, dtype=np.int64)
    np.cumsum(values[indices], out=cum[1:])
    return cum[indptr[1:]] - cum[indptr[:-1]]


# --------------------------------------------------------------------------
# lossy delivery views
# --------------------------------------------------------------------------

class _DeliveryView:
    """A filtered CSR the kernels consume in place of the round's graph.

    Kernels read only ``indices`` / ``indptr``, so a loss-filtered (or
    sender-filtered) edge set presents as an ordinary CSR — no kernel
    needs to know loss exists.
    """

    __slots__ = ("indices", "indptr")

    def __init__(self, indices: np.ndarray, indptr: np.ndarray) -> None:
        self.indices = indices
        self.indptr = indptr


def lossy_delivery_view(csr: Any, sender_mask: Optional[np.ndarray],
                        loss_rng: np.random.Generator,
                        loss_rate: float) -> Tuple[Any, int]:
    """Draw the round's per-edge Bernoulli loss; returns ``(view, dropped)``.

    The keep mask is drawn over the *sender-bearing* edges (edges whose
    sender broadcast this round) in CSR row-major order — exactly the
    concatenation of the per-receiver inboxes the per-node engines draw
    over, receiver-ascending with in-row inbox order, so the shared
    ``"loss"`` stream is consumed bit-identically.  The returned view's
    rows contain only the kept sender edges; receivers whose inbox was
    emptied become empty CSR segments, which every kernel already treats
    as "keep your own state".
    """
    indices = csr.indices
    indptr = csr.indptr
    if sender_mask is None:
        edge_has_sender = None
        sender_edges = indices
    else:
        edge_has_sender = sender_mask[indices]
        sender_edges = indices[edge_has_sender]
    total = int(sender_edges.shape[0])
    if total == 0:
        empty_indptr = np.zeros(len(indptr), dtype=np.int64)
        return _DeliveryView(indices[:0], empty_indptr), 0
    kept = loss_rng.random(total) >= loss_rate
    dropped = total - int(kept.sum())
    if edge_has_sender is None:
        if dropped == 0:
            return csr, 0
        kept_edges = kept
    else:
        kept_edges = np.zeros(indices.shape[0], dtype=bool)
        kept_edges[edge_has_sender] = kept
    cum = np.zeros(indices.shape[0] + 1, dtype=np.int64)
    np.cumsum(kept_edges, out=cum[1:])
    return _DeliveryView(indices[kept_edges], cum[indptr]), dropped


# --------------------------------------------------------------------------
# the protocol
# --------------------------------------------------------------------------

class BatchContext:
    """Round information handed to a batch kernel by the engine.

    Mirrors :class:`~repro.simnet.node.RoundContext` at the population
    level: the 1-based ``round_index``, the per-node private generators
    (``rngs[i]`` is node *i*'s stream — kernels must consume exactly the
    draws the per-node path would, in ascending node order within a
    round), and the run-level counter hook ``incr``.
    """

    __slots__ = ("round_index", "rngs", "incr")

    def __init__(self, round_index: int,
                 rngs: Sequence[np.random.Generator],
                 incr: Callable[..., None]) -> None:
        self.round_index = round_index
        self.rngs = rngs
        self.incr = incr


class BatchKernel:
    """Base class for whole-population round kernels.

    Subclasses maintain struct-of-arrays state for all ``n`` nodes and
    implement:

    * :meth:`compose` — advance the compose phase for every node at
      once, returning ``(sender_mask, bits)``: a boolean mask of nodes
      that broadcast this round (``None`` means *everyone*) and an int64
      array of per-node payload bit costs (read only at sender
      positions), exactly matching ``bit_size(node.compose(ctx))``;
    * :meth:`deliver` — fold every inbox via the CSR in one shot,
      returning ``(changed_any, events)`` where ``changed_any`` mirrors
      the engine's quiescence tracking (true iff any node's
      ``mark_changed(True)``) and *events* reports the round's
      decide/retract/halt lifecycle per node index;
    * :meth:`finalize` — write the array state back into the node
      objects (state, controller fields, changed flags), so that after
      the engine leaves batch mode the nodes are indistinguishable from
      having run the per-node path.

    The ``decided`` attribute (bool array) must mirror
    ``node._decided`` at all times — the engine's stop conditions read
    it instead of touching the node objects.
    """

    decided: np.ndarray

    def compose(self, ctx: BatchContext
                ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        raise NotImplementedError

    def deliver(self, ctx: BatchContext, csr: Any,
                sender_mask: Optional[np.ndarray]) -> Tuple[bool, Events]:
        raise NotImplementedError

    def finalize(self, nodes: Sequence[Any]) -> None:
        raise NotImplementedError


def build_batch_kernel(nodes: Sequence[Any],
                       id_bits: int = 32) -> Optional[BatchKernel]:
    """Build a kernel for a homogeneous, eligible node population.

    Returns ``None`` — and the engine transparently stays on the
    per-node fast path — when the population is heterogeneous, any node
    has already halted, the class exposes no ``__batch_kernel__`` hook,
    or the hook itself declines (state it cannot represent exactly).
    """
    if not nodes:
        return None
    cls = type(nodes[0])
    hook = getattr(cls, "__batch_kernel__", None)
    if hook is None:
        return None
    for node in nodes:
        if type(node) is not cls or node._halted:
            return None
    return hook(nodes, id_bits=id_bits)


def ineligibility_diff(nodes: Sequence[Any]) -> CapabilityDiff:
    """Why :func:`build_batch_kernel` returned ``None``, as a diff.

    The observability layer surfaces this through
    :class:`~repro.obs.events.EngineTierEvent` decline payloads, so
    "why didn't the kernels engage?" is answerable from the event
    stream alone.  The checks mirror :func:`build_batch_kernel` exactly.
    """
    if not nodes:
        return CapabilityDiff(backend="batch",
                              missing=("kernel-population",),
                              detail="empty node population")
    cls = type(nodes[0])
    if getattr(cls, "__batch_kernel__", None) is None:
        return CapabilityDiff(
            backend="batch", missing=("kernel-population",),
            detail=f"{cls.__name__} exposes no __batch_kernel__ hook")
    for node in nodes:
        if type(node) is not cls:
            return CapabilityDiff(
                backend="batch", missing=("mixed-population",),
                detail=(f"heterogeneous population "
                        f"({cls.__name__} + {type(node).__name__})"))
        if node._halted:
            return CapabilityDiff(
                backend="batch", missing=("pre-halted",),
                detail="population already contains halted nodes")
    return CapabilityDiff(
        backend="batch", missing=("kernel-population",),
        detail=(f"{cls.__name__}.__batch_kernel__ declined the population "
                f"(state it cannot represent exactly)"))


def describe_batch_ineligibility(nodes: Sequence[Any]) -> str:
    """Human-readable form of :func:`ineligibility_diff` (compat shim)."""
    return ineligibility_diff(nodes).detail


# --------------------------------------------------------------------------
# vectorised quiescence controller
# --------------------------------------------------------------------------

class BatchQuiescence:
    """Struct-of-arrays mirror of per-node ``QuiescenceController`` state.

    :meth:`observe` advances every node's controller one round and
    returns the ``(decide, retract)`` verdict masks; the update rule is
    the exact vectorisation of
    :meth:`repro.core.termination.QuiescenceController.observe`.
    """

    __slots__ = ("growth", "window", "quiet", "holding", "retractions")

    def __init__(self, controllers: Sequence[Any]) -> None:
        self.growth = controllers[0].growth
        self.window = np.array([c.window for c in controllers],
                               dtype=np.int64)
        self.quiet = np.array([c.quiet_streak for c in controllers],
                              dtype=np.int64)
        self.holding = np.array([c.holding for c in controllers], dtype=bool)
        self.retractions = np.array([c.retraction_count for c in controllers],
                                    dtype=np.int64)

    @classmethod
    def from_controllers(cls, controllers: Sequence[Any]
                         ) -> "Optional[BatchQuiescence]":
        growth = controllers[0].growth
        if any(c.growth != growth for c in controllers):
            return None
        return cls(controllers)

    def observe(self, changed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        retract = changed & self.holding
        np.add(self.quiet, 1, out=self.quiet)
        self.quiet[changed] = 0
        self.holding &= ~changed
        if retract.any():
            self.retractions[retract] += 1
            self.window[retract] *= self.growth
        decide = ~changed & ~self.holding & (self.quiet >= self.window)
        self.holding |= decide
        return decide, retract

    def restore(self, controllers: Sequence[Any]) -> None:
        window = self.window.tolist()
        quiet = self.quiet.tolist()
        holding = self.holding.tolist()
        retractions = self.retractions.tolist()
        for i, controller in enumerate(controllers):
            controller.window = window[i]
            controller.quiet_streak = quiet[i]
            controller.holding = holding[i]
            controller.retraction_count = retractions[i]


# --------------------------------------------------------------------------
# aggregate-family kernels (SublinearMax / ExactCount / ApproxCount + the
# *KnownBound halting variants)
# --------------------------------------------------------------------------

def _uniform_contributed(nodes: Sequence[Any]) -> Optional[bool]:
    """All-or-nothing ``_contributed`` flag, or ``None`` when mixed."""
    first = nodes[0]._contributed
    if any(node._contributed is not first for node in nodes):
        return None
    return bool(first)


class _AggregateKernel(BatchKernel):
    """Common decide/retract/halt plumbing for aggregate-style kernels.

    Subclasses supply the array representation: ``_contribute`` (first
    compose — must draw from ``ctx.rngs`` in ascending node order),
    ``_merge`` (one delivery fold, returns the per-node changed mask),
    ``_bits`` (per-node payload cost), ``_output`` (decide value for one
    node), and ``_restore_state`` (write node *i*'s state back).
    """

    def __init__(self, algs: Sequence[Any],
                 controller: Optional[BatchQuiescence],
                 rounds_bound: Optional[int]) -> None:
        self._algs = list(algs)
        self.n = len(algs)
        self.name = type(algs[0]).name
        self.controller = controller
        self.rounds_bound = rounds_bound
        self.decided = np.array([a._decided for a in algs], dtype=bool)
        self.changed_last = np.array([a._state_changed for a in algs],
                                     dtype=bool)
        self._need_contribution = not algs[0]._contributed

    # hooks ------------------------------------------------------------------
    def _contribute(self, ctx: BatchContext) -> None:
        raise NotImplementedError

    def _merge(self, csr: Any) -> np.ndarray:
        raise NotImplementedError

    def _bits(self) -> np.ndarray:
        raise NotImplementedError

    def _output(self, i: int) -> Any:
        raise NotImplementedError

    def _restore_state(self, node: Any, i: int) -> None:
        raise NotImplementedError

    # protocol ---------------------------------------------------------------
    def compose(self, ctx: BatchContext
                ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        if self._need_contribution:
            self._contribute(ctx)
            self._need_contribution = False
        return None, self._bits()

    def deliver(self, ctx: BatchContext, csr: Any,
                sender_mask: Optional[np.ndarray]) -> Tuple[bool, Events]:
        changed = self._merge(csr)
        self.changed_last = changed
        events: Events = []
        if self.controller is not None:
            decide, retract = self.controller.observe(changed)
            if retract.any():
                # The per-node path bumps the counter on every retract
                # verdict but emits the event only when actually decided.
                ctx.incr(f"{self.name}.retractions", int(retract.sum()))
                retract_ev = retract & self.decided
                self.decided &= ~retract
                for i in np.nonzero(retract_ev)[0].tolist():
                    events.append(("retract", i, None))
            decide &= ~self.decided
            if decide.any():
                self.decided |= decide
                for i in np.nonzero(decide)[0].tolist():
                    events.append(("decide", i, self._output(i)))
        elif ctx.round_index >= self.rounds_bound:
            for i in range(self.n):
                events.append(("decide", i, self._output(i)))
                events.append(("halt", i, None))
            self.decided[:] = True
        return bool(changed.any()), events

    def finalize(self, nodes: Sequence[Any]) -> None:
        changed = self.changed_last.tolist()
        contributed = not self._need_contribution
        for i, node in enumerate(nodes):
            self._restore_state(node, i)
            node._contributed = contributed
            node._state_changed = changed[i]
        if self.controller is not None:
            self.controller.restore([node.controller for node in nodes])


def _eligible_int(value: Any) -> bool:
    """Exactly-int payloads the int64 kernels can cost and compare."""
    return type(value) is int and -2 ** 62 < value < 2 ** 62


class MaxBatchKernel(_AggregateKernel):
    """Segment-max kernel for the ``MaxAggregate`` family (int values)."""

    def __init__(self, algs: Sequence[Any],
                 controller: Optional[BatchQuiescence],
                 rounds_bound: Optional[int],
                 values: np.ndarray, state: Optional[np.ndarray]) -> None:
        super().__init__(algs, controller, rounds_bound)
        self._values = values
        self._state = state

    @classmethod
    def build(cls, algs: Sequence[Any],
              controller: Optional[BatchQuiescence],
              rounds_bound: Optional[int]) -> "Optional[MaxBatchKernel]":
        contributed = _uniform_contributed(algs)
        if contributed is None:
            return None
        if not all(_eligible_int(a.value) for a in algs):
            return None
        values = np.array([a.value for a in algs], dtype=np.int64)
        if contributed:
            if not all(_eligible_int(a.state) for a in algs):
                return None
            state = np.array([a.state for a in algs], dtype=np.int64)
        else:
            if any(a.state is not None for a in algs):
                return None
            state = None
        return cls(algs, controller, rounds_bound, values, state)

    def _contribute(self, ctx: BatchContext) -> None:
        # make_contribution returns self.value and draws nothing; the
        # merge with the (None) initial state is the value itself.
        self._state = self._values.copy()

    def _merge(self, csr: Any) -> np.ndarray:
        gathered = self._state[csr.indices]
        new = self._state.copy()
        segment_reduce(np.maximum, gathered, csr.indptr, new)
        changed = new > self._state
        self._state = new
        return changed

    def _bits(self) -> np.ndarray:
        return int_payload_bits(self._state)

    def _output(self, i: int) -> int:
        return int(self._state[i])

    def _restore_state(self, node: Any, i: int) -> None:
        node.state = int(self._state[i]) if self._state is not None else None


class IdSetBatchKernel(_AggregateKernel):
    """uint64-bitset kernel for the id-set union family (exact Count)."""

    def __init__(self, algs: Sequence[Any],
                 controller: Optional[BatchQuiescence],
                 rounds_bound: Optional[int], id_bits: int,
                 ids: List[int], rows: Optional[np.ndarray]) -> None:
        super().__init__(algs, controller, rounds_bound)
        self.id_bits = id_bits
        self._ids = np.array(ids, dtype=np.int64)
        self._rows = rows  # (n, W) uint64, None before contribution
        self._words = (self.n + 63) // 64

    @classmethod
    def build(cls, algs: Sequence[Any],
              controller: Optional[BatchQuiescence],
              rounds_bound: Optional[int],
              id_bits: int) -> "Optional[IdSetBatchKernel]":
        contributed = _uniform_contributed(algs)
        if contributed is None:
            return None
        ids = [a.node_id for a in algs]
        pos = {node_id: k for k, node_id in enumerate(ids)}
        n, words = len(algs), (len(algs) + 63) // 64
        rows: Optional[np.ndarray] = None
        if contributed:
            rows = np.zeros((n, words), dtype=np.uint64)
            for i, alg in enumerate(algs):
                state = alg.state
                if not isinstance(state, frozenset):
                    return None
                for member in state:
                    k = pos.get(member)
                    if k is None:  # id outside the population: bail
                        return None
                    rows[i, k >> 6] |= np.uint64(1) << np.uint64(k & 63)
        elif any(a.state is not None for a in algs):
            return None
        return cls(algs, controller, rounds_bound, id_bits, ids, rows)

    def _contribute(self, ctx: BatchContext) -> None:
        rows = np.zeros((self.n, self._words), dtype=np.uint64)
        k = np.arange(self.n)
        rows[k, k >> 6] = np.uint64(1) << (k & 63).astype(np.uint64)
        self._rows = rows

    def _merge(self, csr: Any) -> np.ndarray:
        gathered = self._rows[csr.indices]
        new = self._rows.copy()
        segment_reduce(np.bitwise_or, gathered, csr.indptr, new)
        changed = (new != self._rows).any(axis=1)
        self._rows = new
        return changed

    def _counts(self) -> np.ndarray:
        return popcount64(self._rows).sum(axis=1)

    def _bits(self) -> np.ndarray:
        return _CONTAINER_FRAMING_BITS + self.id_bits * self._counts()

    def _output(self, i: int) -> int:
        return int(popcount64(self._rows[i]).sum())

    def finalize(self, nodes: Sequence[Any]) -> None:
        self._members = None
        if self._rows is not None:
            unpacked = np.unpackbits(
                np.ascontiguousarray(self._rows).view(np.uint8),
                bitorder="little").reshape(self.n, -1)
            self._members = unpacked
        super().finalize(nodes)

    def _restore_state(self, node: Any, i: int) -> None:
        if self._rows is None:
            node.state = None
            return
        positions = np.nonzero(self._members[i][:self.n])[0]
        node.state = frozenset(self._ids[positions].tolist())


class MinVectorBatchKernel(_AggregateKernel):
    """Coordinate-wise-minimum kernel for the sketch family (approx Count)."""

    def __init__(self, algs: Sequence[Any],
                 controller: Optional[BatchQuiescence],
                 rounds_bound: Optional[int],
                 width: int, matrix: Optional[np.ndarray]) -> None:
        super().__init__(algs, controller, rounds_bound)
        self.width = width
        self._matrix = matrix  # (n, width) float64, None before contribution

    @classmethod
    def build(cls, algs: Sequence[Any],
              controller: Optional[BatchQuiescence],
              rounds_bound: Optional[int]) -> "Optional[MinVectorBatchKernel]":
        contributed = _uniform_contributed(algs)
        if contributed is None:
            return None
        width = algs[0].aggregate.width
        if any(a.aggregate.width != width for a in algs):
            return None
        matrix: Optional[np.ndarray] = None
        if contributed:
            states = [a.state for a in algs]
            if any(not isinstance(s, np.ndarray) or s.shape != (width,)
                   for s in states):
                return None
            matrix = np.array(states, dtype=np.float64)
        elif any(a.state is not None for a in algs):
            return None
        return cls(algs, controller, rounds_bound, width, matrix)

    def _contribute(self, ctx: BatchContext) -> None:
        # One draw per node from its private stream, ascending node
        # order — byte-identical RNG consumption to the per-node path.
        rows = [alg.make_contribution(ctx.rngs[i])
                for i, alg in enumerate(self._algs)]
        self._matrix = np.array(rows, dtype=np.float64)

    def _merge(self, csr: Any) -> np.ndarray:
        gathered = self._matrix[csr.indices]
        new = self._matrix.copy()
        segment_reduce(np.minimum, gathered, csr.indptr, new)
        changed = (new < self._matrix).any(axis=1)
        self._matrix = new
        return changed

    def _bits(self) -> np.ndarray:
        bits = _CONTAINER_FRAMING_BITS + 64 * self.width
        return np.full(self.n, bits, dtype=np.int64)

    def _output(self, i: int) -> float:
        return self._algs[i].sketch.estimate(self._matrix[i])

    def _restore_state(self, node: Any, i: int) -> None:
        node.state = (self._matrix[i].copy()
                      if self._matrix is not None else None)


def aggregate_batch_kernel(build: Callable[..., Optional[BatchKernel]],
                           nodes: Sequence[Any], *,
                           known_bound: bool) -> Optional[BatchKernel]:
    """Shared eligibility plumbing for the aggregate-family hooks.

    *build* is a ``SomeKernel.build``-shaped callable taking
    ``(nodes, controller, rounds_bound)``.  Stabilizing populations get a
    :class:`BatchQuiescence` (bailing on mixed growth factors); halting
    populations require a uniform ``rounds_bound`` — staggered halting
    would break the kernels' all-alive invariant.
    """
    if known_bound:
        bound = nodes[0].rounds_bound
        if any(node.rounds_bound != bound for node in nodes):
            return None
        return build(nodes, None, bound)
    controller = BatchQuiescence.from_controllers(
        [node.controller for node in nodes])
    if controller is None:
        return None
    return build(nodes, controller, None)


# --------------------------------------------------------------------------
# flooding kernels
# --------------------------------------------------------------------------

class FloodMaxBatchKernel(BatchKernel):
    """Segment-max kernel for the known-bound flooding Max baseline."""

    def __init__(self, algs: Sequence[Any], best: np.ndarray,
                 rounds_bound: int) -> None:
        self._algs = list(algs)
        self.n = len(algs)
        self.rounds_bound = rounds_bound
        self._best = best
        self.decided = np.array([a._decided for a in algs], dtype=bool)
        self.changed_last = np.array([a._state_changed for a in algs],
                                     dtype=bool)

    @classmethod
    def build(cls, algs: Sequence[Any]) -> "Optional[FloodMaxBatchKernel]":
        bound = algs[0].rounds_bound
        if any(a.rounds_bound != bound for a in algs):
            return None
        if not all(_eligible_int(a.best) for a in algs):
            return None
        best = np.array([a.best for a in algs], dtype=np.int64)
        return cls(algs, best, bound)

    def compose(self, ctx: BatchContext
                ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        return None, int_payload_bits(self._best)

    def deliver(self, ctx: BatchContext, csr: Any,
                sender_mask: Optional[np.ndarray]) -> Tuple[bool, Events]:
        gathered = self._best[csr.indices]
        new = self._best.copy()
        segment_reduce(np.maximum, gathered, csr.indptr, new)
        changed = new > self._best
        self._best = new
        self.changed_last = changed
        events: Events = []
        if ctx.round_index >= self.rounds_bound:
            best = self._best.tolist()
            for i in range(self.n):
                events.append(("decide", i, best[i]))
                events.append(("halt", i, None))
            self.decided[:] = True
        return bool(changed.any()), events

    def finalize(self, nodes: Sequence[Any]) -> None:
        best = self._best.tolist()
        changed = self.changed_last.tolist()
        for i, node in enumerate(nodes):
            node.best = best[i]
            node._state_changed = changed[i]


class FloodTokenBatchKernel(BatchKernel):
    """Boolean-OR reach kernel for epidemic token dissemination."""

    def __init__(self, algs: Sequence[Any], informed: np.ndarray) -> None:
        self._algs = list(algs)
        self.n = len(algs)
        self._informed = informed
        self.decided = informed.copy()
        self.changed_last = np.array([a._state_changed for a in algs],
                                     dtype=bool)
        self._ones = np.ones(self.n, dtype=np.int64)

    @classmethod
    def build(cls, algs: Sequence[Any]) -> "Optional[FloodTokenBatchKernel]":
        # A token node is decided exactly when informed; anything else
        # means hand-modified state the kernel cannot represent.
        if any(bool(a.informed) != bool(a._decided) for a in algs):
            return None
        informed = np.array([a.informed for a in algs], dtype=bool)
        return cls(algs, informed)

    def compose(self, ctx: BatchContext
                ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        return self._informed, self._ones

    def deliver(self, ctx: BatchContext, csr: Any,
                sender_mask: Optional[np.ndarray]) -> Tuple[bool, Events]:
        heard = segment_counts(self._informed, csr.indptr, csr.indices)
        newly = ~self._informed & (heard > 0)
        events: Events = []
        if newly.any():
            self._informed = self._informed | newly
            self.decided |= newly
            for i in np.nonzero(newly)[0].tolist():
                events.append(("decide", i, True))
        self.changed_last = newly
        return bool(newly.any()), events

    def finalize(self, nodes: Sequence[Any]) -> None:
        informed = self._informed.tolist()
        changed = self.changed_last.tolist()
        for i, node in enumerate(nodes):
            node.informed = informed[i]
            node._state_changed = changed[i]


class FloodBroadcastBatchKernel(BatchKernel):
    """Min-source-id reach kernel for the known-bound broadcast baseline."""

    def __init__(self, algs: Sequence[Any], sid: np.ndarray,
                 payload_by_sid: Dict[int, tuple],
                 bits_by_sid: Dict[int, int], rounds_bound: int) -> None:
        self._algs = list(algs)
        self.n = len(algs)
        self.rounds_bound = rounds_bound
        self._sid = sid                    # int64; _INT_SENTINEL == no payload
        self._payload_by_sid = payload_by_sid  # preserves tuple identity
        self._bits_by_sid = bits_by_sid
        self._bits = np.array([bits_by_sid.get(s, 0) for s in sid.tolist()],
                              dtype=np.int64)
        self.decided = np.array([a._decided for a in algs], dtype=bool)
        self.changed_last = np.array([a._state_changed for a in algs],
                                     dtype=bool)

    @classmethod
    def build(cls, algs: Sequence[Any],
              id_bits: int) -> "Optional[FloodBroadcastBatchKernel]":
        bound = algs[0].rounds_bound
        if any(a.rounds_bound != bound for a in algs):
            return None
        sid = np.full(len(algs), _INT_SENTINEL, dtype=np.int64)
        payload_by_sid: Dict[int, tuple] = {}
        bits_by_sid: Dict[int, int] = {}
        for i, alg in enumerate(algs):
            best = alg.best
            if best is None:
                continue
            source = int(best[0])
            if not -2 ** 62 < source < 2 ** 62:
                return None
            sid[i] = source
            if source not in payload_by_sid:
                payload_by_sid[source] = best
                try:
                    bits_by_sid[source] = bit_size(best, id_bits)
                    # The per-node path compares (source, payload) tuples
                    # and raises for unorderable payloads when the same
                    # source is heard twice; mirror by refusing them.
                    best < best
                except TypeError:
                    return None  # per-node path defines the behaviour
        return cls(algs, sid, payload_by_sid, bits_by_sid, bound)

    def compose(self, ctx: BatchContext
                ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        return self._sid != _INT_SENTINEL, self._bits

    def deliver(self, ctx: BatchContext, csr: Any,
                sender_mask: Optional[np.ndarray]) -> Tuple[bool, Events]:
        gathered = self._sid[csr.indices]
        new = self._sid.copy()
        segment_reduce(np.minimum, gathered, csr.indptr, new)
        changed = new < self._sid
        if changed.any():
            self._sid = new
            bits_by_sid = self._bits_by_sid
            for i in np.nonzero(changed)[0].tolist():
                self._bits[i] = bits_by_sid[int(new[i])]
        self.changed_last = changed
        events: Events = []
        if ctx.round_index >= self.rounds_bound:
            payload_by_sid = self._payload_by_sid
            sid = self._sid.tolist()
            for i in range(self.n):
                best = payload_by_sid.get(sid[i])
                events.append(("decide", i,
                               None if best is None else best[1]))
                events.append(("halt", i, None))
            self.decided[:] = True
        return bool(changed.any()), events

    def finalize(self, nodes: Sequence[Any]) -> None:
        payload_by_sid = self._payload_by_sid
        sid = self._sid.tolist()
        changed = self.changed_last.tolist()
        for i, node in enumerate(nodes):
            node.best = payload_by_sid.get(sid[i])
            node._state_changed = changed[i]


# --------------------------------------------------------------------------
# the backend
# --------------------------------------------------------------------------

def run_batch_round(sim: Any) -> None:
    """One round via the population's batch kernel.

    Equivalent to the fast backend's round observable-for-observable for
    eligible runs: identical metrics (broadcast sums are commutative and
    per-round; decision/counter dicts are order-insensitive), identical
    per-node RNG consumption (kernels draw from each node's private
    stream in ascending node order, and streams are independent across
    nodes), identical shared loss-stream consumption (see
    :func:`lossy_delivery_view`), and no trace/strict-bandwidth
    observables by negotiation.
    """
    sim.round_index += 1
    r = sim.round_index
    kernel = sim._batch_kernel
    ctx = sim._batch_ctx
    ctx.round_index = r
    metrics = sim.metrics
    prof = sim._phase_seconds

    # Phase 1: compose.
    t0 = perf_counter() if prof is not None else 0.0
    mask, bits = kernel.compose(ctx)

    # Phase 2: reveal + transmission accounting (vectorised).  Loss is a
    # delivery-phase phenomenon: broadcast/delivered tallies count the
    # unfiltered live degrees, exactly as the per-node paths do.
    if prof is not None:
        t1 = perf_counter()
        prof["compose"] += t1 - t0
        t0 = t1
    csr = sim.schedule.adjacency(r)
    degrees = csr.degrees()
    if mask is None:
        n_bcast = len(sim.nodes)
        sender_bits = bits
        sender_degrees = degrees
    else:
        n_bcast = int(mask.sum())
        sender_bits = bits[mask]
        sender_degrees = degrees[mask]
    if n_bcast:
        metrics.broadcasts += n_bcast
        metrics.delivered_messages += int(sender_degrees.sum())
        metrics.broadcast_bits += int(sender_bits.sum())
        metrics.delivered_bits += int(sender_bits @ sender_degrees)
        max_bits = int(sender_bits.max())
        if max_bits > metrics.max_broadcast_bits:
            metrics.max_broadcast_bits = max_bits
        bandwidth_bits = sim.bandwidth_bits
        if bandwidth_bits is not None:
            over = int((sender_bits > bandwidth_bits).sum())
            if over:
                metrics.incr("bandwidth_overflows", over)

    # Phase 3: deliver (one segment-reduce over the CSR).  Under loss
    # the kernel folds a filtered delivery view instead of the round's
    # graph; the per-edge keep mask consumes the shared loss stream
    # bit-identically to the per-node engines.
    if prof is not None:
        t1 = perf_counter()
        prof["reveal"] += t1 - t0
        t0 = t1
    loss_rng = sim._loss_rng
    if loss_rng is not None:
        deliver_csr, dropped = lossy_delivery_view(
            csr, mask, loss_rng, sim.loss_rate)
        if dropped:
            metrics.incr("messages_lost", dropped)
    else:
        deliver_csr = csr
    changed_any, events = kernel.deliver(ctx, deliver_csr, mask)

    # Phase 4: drain — replay captured pre-run events, then reconcile
    # this round's decide/retract/halt events onto the node objects.
    if prof is not None:
        t1 = perf_counter()
        prof["deliver"] += t1 - t0
        t0 = t1
    nodes = sim.nodes
    pending = sim._batch_pending
    if pending:
        sim._batch_pending = None
        for i, node_events in pending:
            node_id = nodes[i].node_id
            for event in node_events:
                kind = event[0]
                if kind == "decide":
                    metrics.on_decision(node_id, r)
                elif kind == "retract":
                    metrics.on_retraction(node_id)
    halted_any = False
    halted_mask = sim._halted_mask
    for kind, i, value in events:
        node = nodes[i]
        if kind == "decide":
            node._decided = True
            node._output = value
            metrics.on_decision(node.node_id, r)
        elif kind == "retract":
            node._decided = False
            node._output = None
            metrics.on_retraction(node.node_id)
        else:  # halt
            node._halted = True
            halted_mask[i] = True
            halted_any = True
    if prof is not None:
        prof["drain"] += perf_counter() - t0

    if halted_any:
        sim._any_halted = True
        sim._active = [
            i for i in sim._active if not halted_mask[i]]
        # The kernels assume every node is alive; fall back to the
        # persistent per-node backend for whatever rounds remain.
        deactivate_batch(sim)

    sim._quiescent_streak = (
        0 if changed_any else sim._quiescent_streak + 1)
    metrics.on_round_executed()


def deactivate_batch(sim: Any) -> None:
    """Leave batch mode, restoring full per-node state (idempotent)."""
    if not sim._batch_live:
        return
    sim._batch_live = False
    sim._active_backend = sim._base_backend
    kernel = sim._batch_kernel
    sim._batch_kernel = None
    sim._batch_ctx = None
    pending = sim._batch_pending
    sim._batch_pending = None
    if pending:
        # Never replayed (zero batch rounds ran): hand the events
        # back to the per-node drain.
        for i, events in pending:
            node = sim.nodes[i]
            node._events = events + node._events
    kernel.finalize(sim.nodes)


class BatchBackend(EngineBackend):
    """Whole-population kernel tier; an overlay over the fast path.

    Statically capable of loss and recorder streams; everything that
    observes per-node phase internals (trace events, mid-phase
    strict-bandwidth raises, adaptive schedules, ``stop_when``
    predicates, custom broadcast metrics) negotiates down to the next
    tier, as does any population without an exact whole-population
    kernel (probed in :meth:`prepare` via
    :func:`build_batch_kernel`).
    """

    name = "batch"
    priority = 30
    auto_negotiate = True
    overlay = True
    capabilities = Capabilities(
        loss=True,
        trace=False,
        stop_when=False,
        strict_bandwidth=False,
        mixed_population=False,
        adaptive_schedule=False,
        pre_halted=False,
        mid_run_halt=False,
        custom_metrics=False,
        recorder=True,
        adjacency_free=False,
    )

    def prepare(self, sim: Any,
                stop_when: Optional[Any] = None) -> Optional[CapabilityDiff]:
        """Build the population kernel; decline with a structured diff.

        Pending decision events (e.g. a ``FloodToken`` seed deciding in
        ``__init__``) are captured here and replayed into metrics in the
        first batch round, exactly when the per-node drain would surface
        them.
        """
        kernel = build_batch_kernel(sim.nodes, sim.id_bits)
        if kernel is None:
            diff = ineligibility_diff(sim.nodes)
            sim._batch_reason = diff.render()
            return diff
        sim._batch_reason = None
        pending: List[Tuple[int, List[tuple]]] = []
        for i, node in enumerate(sim.nodes):
            if node._events:
                pending.append((i, node._events))
                node._events = []
        sim._batch_kernel = kernel
        sim._batch_pending = pending
        sim._batch_ctx = BatchContext(
            sim.round_index, sim._node_rngs, sim.metrics.incr)
        sim._batch_live = True
        return None

    def run_round(self, sim: Any) -> None:
        run_batch_round(sim)

    def reconcile(self, sim: Any) -> None:
        deactivate_batch(sim)
