"""The fast backend: vectorized per-node rounds over cached CSR adjacency.

Observable-for-observable equivalent to the reference loops (same
metrics, same trace event stream, same RNG consumption, same node
callback order); the differences are purely mechanical — iteration over
the incrementally-maintained active set instead of ``range(n)``, one
reusable :class:`~repro.simnet.node.RoundContext` per node, CSR
adjacency shared across stable T-interval windows, and live degrees
computed vectorised.  Requires a schedule exposing ``adjacency()``;
minimal :class:`~repro.simnet.engine.ScheduleLike` schedules negotiate
down to the reference backend instead.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, List

import numpy as np

from ...errors import BandwidthExceededError
from ..trace import TraceEvent
from .base import Capabilities, EngineBackend

__all__ = ["FastBackend", "run_fast_round"]


def run_fast_round(sim: Any) -> None:
    """One round via the vectorized fast path.

    Body moved verbatim from the engine's historical
    ``Simulator._step_fast``; see the module docstring for the
    equivalence contract.
    """
    sim.round_index += 1
    r = sim.round_index
    nodes = sim.nodes
    trace = sim.trace
    prof = sim._phase_seconds
    metrics = sim.metrics
    if trace is not None:
        trace.record(TraceEvent(r, "round", None))

    active = sim._active
    payloads = sim._payloads
    contexts = sim._contexts
    halted_mask = sim._halted_mask

    # Phase 1: compose (graph not yet revealed to nodes).
    t0 = perf_counter() if prof is not None else 0.0
    senders: List[int] = []
    halted_in_compose = False
    for i in active:
        node = nodes[i]
        ctx = contexts[i]
        ctx.round_index = r
        payload = node.compose(ctx)
        payloads[i] = payload
        if payload is not None:
            senders.append(i)
        if node._halted:
            halted_mask[i] = True
            halted_in_compose = True
    if halted_in_compose:
        sim._any_halted = True

    # Phase 2: reveal the round's graph and account for transmissions.
    if prof is not None:
        t1 = perf_counter()
        prof["compose"] += t1 - t0
        t0 = t1
    csr = sim.schedule.adjacency(r)
    if (prof is None and trace is None and sim.recorder is None
            and not (sim.strict_bandwidth
                     and sim.bandwidth_bits is not None)):
        # Steady-state fused loop: phases 2-4 in one pass (see
        # _finish_round_fused for why the results are identical).
        # A recorder routes through the split phases like profiling
        # does, so its payload-bits cache tally sees every lookup.
        _finish_round_fused(sim, r, csr, senders, halted_in_compose)
        return
    if not sim._any_halted:
        live: List[int] = csr.degree_list()
    else:
        # live[i] = #non-halted neighbours of i, via a prefix sum over
        # the CSR (reduceat mis-handles empty neighbour runs).
        alive = ~halted_mask
        cum = np.zeros(len(csr.indices) + 1, dtype=np.int64)
        np.cumsum(alive[csr.indices], out=cum[1:])
        live = (cum[csr.indptr[1:]] - cum[csr.indptr[:-1]]).tolist()
    bandwidth_bits = sim.bandwidth_bits
    on_broadcast = metrics.on_broadcast
    for i in senders:
        payload = payloads[i]
        bits = sim._payload_bits(payload)
        if bandwidth_bits is not None and bits > bandwidth_bits:
            if sim.strict_bandwidth:
                raise BandwidthExceededError(
                    f"node {nodes[i].node_id} composed a {bits}-bit "
                    f"message; budget is {bandwidth_bits} bits",
                    node_id=nodes[i].node_id, bits=bits,
                    limit=bandwidth_bits,
                )
            metrics.incr("bandwidth_overflows")
        on_broadcast(bits, live[i])
        if trace is not None:
            trace.record(TraceEvent(r, "broadcast", nodes[i].node_id, payload))

    # Phase 3: deliver inboxes.
    if prof is not None:
        t1 = perf_counter()
        prof["reveal"] += t1 - t0
        t0 = t1
    sendable = sim._sendable
    for i in senders:
        if not halted_mask[i]:
            sendable[i] = True
    # When every node is live and broadcast, skip the per-neighbour
    # sendability filter entirely (the common steady state).
    all_send = not sim._any_halted and len(senders) == len(active)
    nlists = csr.neighbor_lists()
    loss_rng = sim._loss_rng
    loss_rate = sim.loss_rate
    all_changed_false = True
    delivered: List[int] = []
    for j in active:
        if halted_mask[j]:
            continue  # halted during this round's compose
        nbrs = nlists[j]
        if all_send:
            inbox = [payloads[k] for k in nbrs]
        else:
            inbox = [payloads[k] for k in nbrs if sendable[k]]
        if loss_rng is not None and inbox:
            kept = loss_rng.random(len(inbox)) >= loss_rate
            dropped = len(inbox) - int(kept.sum())
            if dropped:
                metrics.incr("messages_lost", dropped)
                inbox = [m for m, keep in zip(inbox, kept) if keep]
        node = nodes[j]
        node.deliver(contexts[j], inbox)
        if node._state_changed:
            all_changed_false = False
        delivered.append(j)
    for i in senders:
        sendable[i] = False

    # Phase 4: drain decision events.  Deliveries record no trace
    # events themselves, so draining after the delivery loop yields
    # the same event stream as the reference's interleaved drain.
    if prof is not None:
        t1 = perf_counter()
        prof["deliver"] += t1 - t0
        t0 = t1
    on_decision = metrics.on_decision
    halted_in_deliver = False
    for j in delivered:
        node = nodes[j]
        events = node._events
        if not events:
            continue
        node._events = []
        node_id = node.node_id
        for event in events:
            kind = event[0]
            if kind == "decide":
                on_decision(node_id, r)
                if trace is not None:
                    trace.record(TraceEvent(r, "decide", node_id, event[1]))
            elif kind == "retract":
                metrics.on_retraction(node_id)
                if trace is not None:
                    trace.record(TraceEvent(r, "retract", node_id))
            elif kind == "halt":
                halted_mask[j] = True
                halted_in_deliver = True
                if trace is not None:
                    trace.record(TraceEvent(r, "halt", node_id))
    if prof is not None:
        prof["drain"] += perf_counter() - t0

    if halted_in_compose or halted_in_deliver:
        sim._any_halted = True
        sim._active = [i for i in active if not halted_mask[i]]

    sim._quiescent_streak = (
        sim._quiescent_streak + 1 if all_changed_false else 0
    )
    metrics.on_round_executed()


def _finish_round_fused(sim: Any, r: int, csr: Any, senders: List[int],
                        halted_in_compose: bool) -> None:
    """Phases 2-4 of :func:`run_fast_round` fused into one active-set pass.

    Valid only without tracing, profiling, or strict bandwidth: the
    per-(node, round) metric updates are commutative sums, the loss
    RNG is drawn only in the delivery phase (so interleaving the
    accounting does not perturb the stream), and per-node drain order
    is preserved — hence the final :class:`~repro.simnet.metrics.RunMetrics`
    are identical to the split-phase loops, which remain in use whenever
    phase boundaries are observable (trace events, per-phase timings, or
    a mid-phase :class:`~repro.errors.BandwidthExceededError`).
    """
    nodes = sim.nodes
    metrics = sim.metrics
    payloads = sim._payloads
    contexts = sim._contexts
    halted_mask = sim._halted_mask
    active = sim._active
    if not sim._any_halted:
        live: List[int] = csr.degree_list()
    else:
        alive = ~halted_mask
        cum = np.zeros(len(csr.indices) + 1, dtype=np.int64)
        np.cumsum(alive[csr.indices], out=cum[1:])
        live = (cum[csr.indptr[1:]] - cum[csr.indptr[:-1]]).tolist()
    sendable = sim._sendable
    all_send = not sim._any_halted and len(senders) == len(active)
    if all_send:
        # Every neighbour's payload is delivered: gather the flat
        # CSR-ordered payload list in one C-level pass, then each
        # node's inbox is a plain slice of it.
        flat_inbox = list(map(payloads.__getitem__, csr.indices_list()))
        bounds = csr.indptr_list()
        nlists = None
    else:
        for i in senders:
            if not halted_mask[i]:
                sendable[i] = True
        flat_inbox = bounds = None
        nlists = csr.neighbor_lists()
    loss_rng = sim._loss_rng
    loss_rate = sim.loss_rate
    bandwidth_bits = sim.bandwidth_bits
    # When on_broadcast has not been overridden on the instance, the
    # per-sender sums are accumulated in locals and flushed once per
    # round — same totals, ~N fewer calls per round.
    aggregate = "on_broadcast" not in metrics.__dict__
    on_broadcast = metrics.on_broadcast
    on_decision = metrics.on_decision
    bits_cache = sim._bits_cache
    n_bcast = sum_bits = n_msgs = sum_dbits = max_bits = 0
    prev_payload = prev_bits = None
    all_changed_false = True
    halted_in_deliver = False
    for j in active:
        payload = payloads[j]
        if payload is not None:
            # Converged protocols broadcast one shared object from
            # every node; the single-entry memo short-circuits the
            # per-sender cache lookup in that steady state.
            if payload is prev_payload:
                bits = prev_bits
            else:
                entry = bits_cache.get(id(payload))
                if entry is not None and entry[0] is payload:
                    bits = entry[1]
                else:
                    bits = sim._payload_bits(payload)
                prev_payload, prev_bits = payload, bits
            if bandwidth_bits is not None and bits > bandwidth_bits:
                metrics.incr("bandwidth_overflows")
            if aggregate:
                degree = live[j]
                n_bcast += 1
                n_msgs += degree
                sum_bits += bits
                sum_dbits += bits * degree
                if bits > max_bits:
                    max_bits = bits
            else:
                on_broadcast(bits, live[j])
        if halted_in_compose and halted_mask[j]:
            continue  # halted during this round's compose
        if all_send:
            inbox = flat_inbox[bounds[j]:bounds[j + 1]]
        else:
            inbox = [payloads[k] for k in nlists[j] if sendable[k]]
        if loss_rng is not None and inbox:
            kept = loss_rng.random(len(inbox)) >= loss_rate
            dropped = len(inbox) - int(kept.sum())
            if dropped:
                metrics.incr("messages_lost", dropped)
                inbox = [m for m, keep in zip(inbox, kept) if keep]
        node = nodes[j]
        node.deliver(contexts[j], inbox)
        if node._state_changed:
            all_changed_false = False
        events = node._events
        if events:
            node._events = []
            node_id = node.node_id
            for event in events:
                kind = event[0]
                if kind == "decide":
                    on_decision(node_id, r)
                elif kind == "retract":
                    metrics.on_retraction(node_id)
                else:  # halt
                    halted_mask[j] = True
                    halted_in_deliver = True
    if not all_send:
        for i in senders:
            sendable[i] = False
    if aggregate and n_bcast:
        metrics.broadcasts += n_bcast
        metrics.delivered_messages += n_msgs
        metrics.broadcast_bits += sum_bits
        metrics.delivered_bits += sum_dbits
        if max_bits > metrics.max_broadcast_bits:
            metrics.max_broadcast_bits = max_bits

    if halted_in_compose or halted_in_deliver:
        sim._any_halted = True
        sim._active = [i for i in active if not halted_mask[i]]

    sim._quiescent_streak = (
        sim._quiescent_streak + 1 if all_changed_false else 0
    )
    metrics.on_round_executed()


class FastBackend(EngineBackend):
    """Vectorized per-node rounds; needs the schedule's CSR adjacency."""

    name = "fast"
    priority = 20
    auto_negotiate = True
    capabilities = Capabilities(
        loss=True,
        trace=True,
        stop_when=True,
        strict_bandwidth=True,
        mixed_population=True,
        adaptive_schedule=True,
        pre_halted=True,
        mid_run_halt=True,
        custom_metrics=True,
        recorder=True,
        adjacency_free=False,
    )

    def run_round(self, sim: Any) -> None:
        run_fast_round(sim)
