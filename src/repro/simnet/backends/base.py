"""The engine-backend protocol: capabilities, declines, and hooks.

An **engine backend** is one way of executing simulation rounds — the
reference per-node loops, the vectorized fast path, the batch-kernel
tier, or a third-party tier registered at runtime (see
:mod:`repro.simnet.backends.registry`).  Each backend declares what run
features it supports as a frozen :class:`Capabilities` record; the
negotiator matches those declarations against the *requirements* of a
concrete run (message loss, tracing, a ``stop_when`` predicate, …) and
produces, for every backend it passes over, a structured
:class:`CapabilityDiff` — the machine-readable "why was this tier
declined" that feeds the observability layer's ``engine_tier`` events.

The protocol has three hooks:

``prepare(sim, stop_when)``
    Called when ``Simulator.run()`` starts, after the generic capability
    check passed.  A backend probes anything only it can judge (the
    batch tier builds the population kernel here) and either installs
    its per-run state on the simulator and returns ``None``, or returns
    a :class:`CapabilityDiff` explaining the decline — the negotiator
    then falls through to the next candidate.

``run_round(sim)``
    Execute exactly one synchronous round.  The contract is bit-for-bit
    equivalence: every backend must produce the same
    :class:`~repro.simnet.engine.RunResult` (metrics, outputs, rounds,
    stop reason) as the reference loops for any run it accepted.

``reconcile(sim)``
    Called when the run ends (or the backend retires mid-run), before
    anything else may observe the node objects.  Backends that hold
    population state outside the nodes (the batch tier's
    struct-of-arrays kernels) write it back here; it must be idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Capabilities",
    "CapabilityDiff",
    "EngineBackend",
    "REQUIREMENT_FIELDS",
    "requirement_description",
    "missing_requirements",
]


@dataclass(frozen=True)
class Capabilities:
    """What run features a backend supports, one flag per feature.

    Every field corresponds to a *requirement* a concrete run may pose
    (see :data:`REQUIREMENT_FIELDS` for the requirement-name mapping);
    a backend serves a run only when it supports every requirement the
    run poses.  All flags default to ``False`` so a third-party backend
    states its abilities explicitly.

    Attributes
    ----------
    loss:
        Per-delivery Bernoulli message loss (``loss_rate > 0``), drawn
        from the shared ``"loss"`` RNG stream in per-receiver inbox
        order.
    trace:
        A :class:`~repro.simnet.trace.TraceRecorder` observing
        per-event round/broadcast/decide/retract/halt records.
    stop_when:
        A user predicate inspecting the simulator between rounds (the
        per-node state must therefore be current after every round).
    strict_bandwidth:
        A CONGEST budget that must raise
        :class:`~repro.errors.BandwidthExceededError` mid-phase at the
        exact offending node.
    mixed_population:
        Node populations of more than one Algorithm class (or a class
        without whole-population execution support).
    adaptive_schedule:
        Schedules that ``bind()`` the node list and read node state
        between phases.
    pre_halted:
        Populations that already contain halted nodes when the run
        starts.
    mid_run_halt:
        Whether the backend keeps executing after a halt event; when
        ``False`` the engine retires it to the next candidate tier the
        moment a node halts.
    custom_metrics:
        Instance-level overrides of
        :meth:`~repro.simnet.metrics.MetricsCollector.on_broadcast`
        (backends that accumulate broadcast sums in bulk cannot honour
        a per-call override).
    recorder:
        A :class:`repro.obs.Recorder` streaming per-round structured
        events.
    adjacency_free:
        Schedules exposing only the minimal
        :class:`~repro.simnet.engine.ScheduleLike` duck type, with no
        CSR ``adjacency()`` accessor.
    """

    loss: bool = False
    trace: bool = False
    stop_when: bool = False
    strict_bandwidth: bool = False
    mixed_population: bool = False
    adaptive_schedule: bool = False
    pre_halted: bool = False
    mid_run_halt: bool = False
    custom_metrics: bool = False
    recorder: bool = False
    adjacency_free: bool = False


#: requirement name -> :class:`Capabilities` field serving it.  The
#: requirement names are the stable vocabulary of the structured decline
#: diffs (:attr:`CapabilityDiff.missing`) surfaced in ``engine_tier``
#: observability events.
REQUIREMENT_FIELDS: Dict[str, str] = {
    "loss": "loss",
    "trace": "trace",
    "stop-when": "stop_when",
    "strict-bandwidth": "strict_bandwidth",
    "mixed-population": "mixed_population",
    "adaptive-schedule": "adaptive_schedule",
    "pre-halted": "pre_halted",
    "mid-run-halt": "mid_run_halt",
    "custom-metrics": "custom_metrics",
    "recorder": "recorder",
    "adjacency-free-schedule": "adjacency_free",
    # Posed only by the batch tier's population probe; no capability
    # flag serves it — the prepare() hook judges it dynamically.
    "kernel-population": "mixed_population",
}

#: Human-readable phrasing per requirement, used when a run poses the
#: requirement without supplying its own description.
_REQUIREMENT_DESCRIPTIONS: Dict[str, str] = {
    "loss": "loss_rate > 0",
    "trace": "trace recorder attached",
    "stop-when": "stop_when predicate inspects run state",
    "strict-bandwidth": "strict bandwidth budget",
    "mixed-population": "heterogeneous node population",
    "adaptive-schedule": "adaptive schedule binds node state",
    "pre-halted": "population already contains halted nodes",
    "mid-run-halt": "halt event deactivated the backend",
    "custom-metrics": "custom on_broadcast metrics override",
    "recorder": "event recorder attached",
    "adjacency-free-schedule": "schedule exposes no CSR adjacency",
    "kernel-population": "population has no batch kernel",
}


def requirement_description(name: str) -> str:
    """Human phrasing of one requirement name (falls back to the name)."""
    return _REQUIREMENT_DESCRIPTIONS.get(name, name)


def missing_requirements(capabilities: Capabilities,
                         requirements: Mapping[str, str]) -> Tuple[str, ...]:
    """Requirement names in *requirements* the capabilities do not serve.

    *requirements* maps requirement name -> description (the description
    is carried into the rendered decline).  Unknown requirement names
    are conservatively treated as unsupported.
    """
    missing: List[str] = []
    for name in requirements:
        field = REQUIREMENT_FIELDS.get(name)
        if field is None or not getattr(capabilities, field):
            missing.append(name)
    return tuple(missing)


@dataclass(frozen=True)
class CapabilityDiff:
    """Why a backend was declined, as a structured capability diff.

    ``missing`` lists the requirement names (see
    :data:`REQUIREMENT_FIELDS`) the backend's :class:`Capabilities` do
    not serve; ``detail`` carries free-text context — a configuration
    pin (``"engine='reference'"``) or a dynamic probe verdict (the batch
    tier's kernel-builder explanation).  Either part may be empty, never
    both.  :meth:`to_payload` is the JSON shape embedded in
    :class:`~repro.obs.events.EngineTierEvent` ``declined`` entries.
    """

    backend: str
    missing: Tuple[str, ...] = ()
    detail: str = ""

    def render(self) -> str:
        """One human-readable clause, matching the engine's historical
        fallback strings where one exists.

        A ``detail`` (probe verdict or configuration pin) subsumes the
        requirement names it explains, so it renders alone; otherwise
        the clause is the joined requirement descriptions.
        """
        if self.detail:
            return self.detail
        parts = [requirement_description(name) for name in self.missing]
        return "; ".join(parts) if parts else f"{self.backend} declined"

    def to_payload(self) -> Dict[str, Any]:
        """JSON-encodable dict for the observability event stream."""
        return {"backend": self.backend,
                "missing": list(self.missing),
                "detail": self.detail}


class EngineBackend:
    """Base class for engine backends (see the module docstring).

    Class attributes
    ----------------
    name:
        Registry key; also accepted by ``Simulator(engine=...)`` and the
        CLIs' ``--engine`` once registered.
    priority:
        Negotiation order — higher is tried first.  The built-in tiers
        use 30 (batch), 20 (fast), 10 (reference).
    capabilities:
        The backend's frozen feature declaration.
    auto_negotiate:
        Whether the default engine chain (``engine="fast"``) considers
        this backend.  ``False`` (the default for third-party backends)
        means the backend engages only when pinned by name.
    overlay:
        ``True`` for accelerator tiers that retire mid-run to the next
        candidate (the batch tier); the engine never reports an overlay
        as the simulator's base ``engine``.
    """

    name: str = ""
    priority: int = 0
    capabilities: Capabilities = Capabilities()
    auto_negotiate: bool = False
    overlay: bool = False

    def prepare(self, sim: Any,
                stop_when: Optional[Any] = None) -> Optional[CapabilityDiff]:
        """Per-run probe/setup; ``None`` accepts, a diff declines."""
        return None

    def run_round(self, sim: Any) -> None:
        """Execute exactly one synchronous round on *sim*."""
        raise NotImplementedError

    def reconcile(self, sim: Any) -> None:
        """Write backend-held state back into the node objects.

        Idempotent; called when the run ends or the backend retires.
        """
        return None

    def describe(self) -> Dict[str, Any]:
        """Introspection record used by ``--list-engines``."""
        caps = self.capabilities
        return {
            "name": self.name,
            "priority": self.priority,
            "auto": self.auto_negotiate,
            "overlay": self.overlay,
            "supports": sorted(
                f.name for f in fields(Capabilities) if getattr(caps, f.name)),
        }
