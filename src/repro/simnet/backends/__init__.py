"""Pluggable engine backends with capability negotiation.

Importing this package registers the three built-in tiers — batch
kernels (priority 30, overlay), the vectorized fast path (priority 20),
and the reference loops (priority 10) — in the process-wide registry.
Third-party tiers plug in with :func:`register_backend`; see
``docs/ENGINES.md`` for the protocol and a worked example.
"""

from __future__ import annotations

from .base import (
    Capabilities,
    CapabilityDiff,
    EngineBackend,
    REQUIREMENT_FIELDS,
    missing_requirements,
    requirement_description,
)
from .batch import BatchBackend
from .fast import FastBackend
from .reference import ReferenceBackend
from .registry import (
    ENGINE_ALIASES,
    Negotiation,
    available_engines,
    get_backend,
    negotiate,
    register_backend,
    registered_backends,
    unregister_backend,
)

__all__ = [
    "Capabilities",
    "CapabilityDiff",
    "EngineBackend",
    "REQUIREMENT_FIELDS",
    "missing_requirements",
    "requirement_description",
    "ENGINE_ALIASES",
    "Negotiation",
    "available_engines",
    "get_backend",
    "negotiate",
    "register_backend",
    "registered_backends",
    "unregister_backend",
    "BatchBackend",
    "FastBackend",
    "ReferenceBackend",
]

register_backend(BatchBackend())
register_backend(FastBackend())
register_backend(ReferenceBackend())
