"""The reference backend: straightforward per-node loops.

This is the executable specification the other tiers are golden-tested
against (``tests/test_fastpath_equivalence.py``): one Python-level
``compose``/``deliver`` call per node per round, with delivery, loss
draws, and decision draining written exactly as the paper's round model
reads.  It supports every run feature — including schedules that expose
only the minimal :class:`~repro.simnet.engine.ScheduleLike` duck type —
and is therefore the guaranteed last candidate of every negotiation
chain.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, List

from ...errors import BandwidthExceededError
from ..node import RoundContext
from ..trace import TraceEvent
from .base import Capabilities, EngineBackend

__all__ = ["ReferenceBackend", "run_reference_round"]


def run_reference_round(sim: Any) -> None:
    """One round via the per-node loops (the executable spec).

    Body moved verbatim from the engine's historical
    ``Simulator._step_reference``; behaviour is the contract, see the
    module docstring.
    """
    sim.round_index += 1
    r = sim.round_index
    nodes = sim.nodes
    n = len(nodes)
    trace = sim.trace
    prof = sim._phase_seconds
    if trace is not None:
        trace.record(TraceEvent(r, "round", None))

    # Phase 1: compose (graph not yet revealed to nodes).
    t0 = perf_counter() if prof is not None else 0.0
    payloads: List[Any] = [None] * n
    for i in range(n):
        node = nodes[i]
        if node.halted:
            continue
        ctx = RoundContext(r, sim._node_rngs[i], sim.metrics.incr)
        payloads[i] = node.compose(ctx)

    # Phase 2: reveal the round's graph and account for transmissions.
    if prof is not None:
        t1 = perf_counter()
        prof["compose"] += t1 - t0
        t0 = t1
    neighbors = sim.schedule.neighbors(r)
    halted = [node.halted for node in nodes]
    for i in range(n):
        payload = payloads[i]
        if payload is None:
            continue
        bits = sim._payload_bits(payload)
        if sim.bandwidth_bits is not None and bits > sim.bandwidth_bits:
            if sim.strict_bandwidth:
                raise BandwidthExceededError(
                    f"node {nodes[i].node_id} composed a {bits}-bit "
                    f"message; budget is {sim.bandwidth_bits} bits",
                    node_id=nodes[i].node_id, bits=bits,
                    limit=sim.bandwidth_bits,
                )
            sim.metrics.incr("bandwidth_overflows")
        live_degree = sum(1 for j in neighbors[i] if not halted[j])
        sim.metrics.on_broadcast(bits, live_degree)
        if trace is not None:
            trace.record(TraceEvent(r, "broadcast", nodes[i].node_id, payload))

    # Phase 3: deliver inboxes.
    if prof is not None:
        t1 = perf_counter()
        prof["reveal"] += t1 - t0
        t0 = t1
    all_changed_false = True
    loss_rng = sim._loss_rng
    loss_rate = sim.loss_rate
    for j in range(n):
        node = nodes[j]
        if node.halted:
            continue
        inbox = [
            payloads[i] for i in neighbors[j]
            if payloads[i] is not None and not halted[i]
        ]
        if loss_rng is not None and inbox:
            kept = loss_rng.random(len(inbox)) >= loss_rate
            dropped = len(inbox) - int(kept.sum())
            if dropped:
                sim.metrics.incr("messages_lost", dropped)
                inbox = [m for m, keep in zip(inbox, kept) if keep]
        ctx = RoundContext(r, sim._node_rngs[j], sim.metrics.incr)
        node.deliver(ctx, inbox)
        if node.state_changed:
            all_changed_false = False
        # Phase 4: drain decision events.
        for event in node._drain_events():
            kind = event[0]
            if kind == "decide":
                sim.metrics.on_decision(node.node_id, r)
                if trace is not None:
                    trace.record(TraceEvent(r, "decide", node.node_id,
                                            event[1]))
            elif kind == "retract":
                sim.metrics.on_retraction(node.node_id)
                if trace is not None:
                    trace.record(TraceEvent(r, "retract", node.node_id))
            elif kind == "halt":
                if trace is not None:
                    trace.record(TraceEvent(r, "halt", node.node_id))
    if prof is not None:
        t1 = perf_counter()
        prof["deliver"] += t1 - t0  # drain interleaved with delivery

    sim._quiescent_streak = (
        sim._quiescent_streak + 1 if all_changed_false else 0
    )
    sim.metrics.on_round_executed()


class ReferenceBackend(EngineBackend):
    """Per-node loops; supports everything, negotiated last."""

    name = "reference"
    priority = 10
    auto_negotiate = True
    capabilities = Capabilities(
        loss=True,
        trace=True,
        stop_when=True,
        strict_bandwidth=True,
        mixed_population=True,
        adaptive_schedule=True,
        pre_halted=True,
        mid_run_halt=True,
        custom_metrics=True,
        recorder=True,
        adjacency_free=True,
    )

    def run_round(self, sim: Any) -> None:
        run_reference_round(sim)
