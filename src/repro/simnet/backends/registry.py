"""Process-wide backend registry and the capability negotiator.

:func:`register_backend` makes a new execution tier available to every
:class:`~repro.simnet.engine.Simulator` in the process — by name through
``Simulator(engine=...)`` and the CLIs' ``--engine`` flag, and (when the
backend opts in with ``auto_negotiate=True``) through the default
negotiation chain as well.  The built-in tiers (batch kernels, the
vectorized fast path, the reference loops) register themselves when
:mod:`repro.simnet.backends` is imported.

:func:`negotiate` turns an engine request plus the run's *requirements*
into an ordered candidate list and, for every backend passed over, a
structured :class:`~repro.simnet.backends.base.CapabilityDiff` — the
single source of "which tier runs and why not the others" that the
engine surfaces through ``engine_tier`` observability events.

Engine aliases
--------------
``"fast"`` (the default) negotiates the full auto chain in priority
order; ``"fast-nobatch"`` is the same chain with the batch overlay
excluded; ``"reference"`` pins the reference loops.  A registered
backend's own name pins that backend, with the non-overlay built-in
chain kept as capable fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..._validate import require_choice
from ...errors import ConfigurationError
from .base import CapabilityDiff, EngineBackend, missing_requirements

__all__ = [
    "ENGINE_ALIASES",
    "Negotiation",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "registered_backends",
    "available_engines",
    "negotiate",
]

#: Engine names that select a negotiation *strategy* rather than a
#: single backend.  ``"reference"`` doubles as the reference backend's
#: registry name.
ENGINE_ALIASES: Tuple[str, ...] = ("fast", "fast-nobatch", "reference")

_REGISTRY: Dict[str, EngineBackend] = {}


def register_backend(backend: EngineBackend, *,
                     replace: bool = False) -> EngineBackend:
    """Register *backend* process-wide; returns it for chaining.

    The name must be non-empty and, unless *replace* is given, unused;
    ``"fast-nobatch"`` is reserved (it is a negotiation alias, not a
    backend).
    """
    name = backend.name
    if not name:
        raise ConfigurationError("backend must declare a non-empty name")
    if name == "fast-nobatch":
        raise ConfigurationError(
            'backend name "fast-nobatch" is reserved (negotiation alias)')
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"backend {name!r} is already registered "
            f"(pass replace=True to override)")
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (no-op when absent)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> EngineBackend:
    """Look up a backend by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"no engine backend named {name!r} is registered "
            f"(registered: {sorted(_REGISTRY)})") from None


def registered_backends() -> Tuple[EngineBackend, ...]:
    """All registered backends, highest negotiation priority first."""
    return tuple(sorted(_REGISTRY.values(),
                        key=lambda b: (-b.priority, b.name)))


def available_engines() -> Tuple[str, ...]:
    """Every name ``Simulator(engine=...)`` accepts: aliases + backends."""
    names = list(ENGINE_ALIASES)
    names.extend(b.name for b in registered_backends()
                 if b.name not in names)
    return tuple(names)


@dataclass
class Negotiation:
    """Outcome of static capability negotiation for one simulator.

    ``candidates`` are the statically capable backends in engagement
    order (overlay tiers first); ``declined`` records one structured
    diff per backend passed over.  Dynamic (per-``run()``) declines are
    appended by the engine when the run's requirements are known.
    """

    engine: str
    candidates: List[EngineBackend] = field(default_factory=list)
    declined: List[CapabilityDiff] = field(default_factory=list)

    @property
    def base(self) -> EngineBackend:
        """The first persistent (non-overlay) candidate."""
        for backend in self.candidates:
            if not backend.overlay:
                return backend
        raise ConfigurationError(
            f"engine {self.engine!r} negotiation produced no persistent "
            f"backend (candidates: {[b.name for b in self.candidates]})")


def _chain_for(engine: str, batch_kernels: bool
               ) -> Tuple[List[EngineBackend], List[CapabilityDiff]]:
    """The pre-capability candidate chain an engine request implies."""
    ordered = registered_backends()
    pinned: List[CapabilityDiff] = []
    if engine == "fast":
        chain = [b for b in ordered if b.auto_negotiate]
    elif engine == "fast-nobatch":
        chain = [b for b in ordered if b.auto_negotiate and not b.overlay]
        pinned = [CapabilityDiff(backend=b.name,
                                 detail="batch kernels disabled")
                  for b in ordered if b.auto_negotiate and b.overlay]
    elif engine == "reference":
        chain = [get_backend("reference")]
        pinned = [CapabilityDiff(backend=b.name, detail=f"engine={engine!r}")
                  for b in ordered if b.auto_negotiate and b.name != engine]
    else:
        named = get_backend(engine)
        # A pinned backend leads; the persistent built-in chain stays as
        # capable fallbacks so an ineligible run still executes.
        chain = [named] + [b for b in ordered
                           if b.auto_negotiate and not b.overlay
                           and b.name != engine]
    if not batch_kernels:
        dropped = [b for b in chain if b.overlay]
        chain = [b for b in chain if not b.overlay]
        pinned.extend(CapabilityDiff(backend=b.name,
                                     detail="batch kernels disabled")
                      for b in dropped)
    return chain, pinned


def negotiate(engine: str, requirements: Mapping[str, str], *,
              batch_kernels: bool = True) -> Negotiation:
    """Match an engine request against the run's static requirements.

    *requirements* maps requirement name (see
    :data:`~repro.simnet.backends.base.REQUIREMENT_FIELDS`) to a
    human-readable description.  Backends whose capabilities do not
    serve every requirement are declined with a structured diff; the
    survivors become the candidate chain, tried in order when ``run()``
    starts.
    """
    require_choice(engine, "engine", available_engines())
    chain, declined = _chain_for(engine, batch_kernels)
    result = Negotiation(engine=engine, declined=declined)
    for backend in chain:
        missing = missing_requirements(backend.capabilities, requirements)
        if missing:
            result.declined.append(
                CapabilityDiff(backend=backend.name, missing=missing))
        else:
            result.candidates.append(backend)
    if not any(not b.overlay for b in result.candidates):
        posed = "; ".join(requirements.values()) or "none"
        raise ConfigurationError(
            f"no registered engine backend can serve this run "
            f"(engine={engine!r}, requirements: {posed})")
    return result
