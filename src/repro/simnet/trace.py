"""Optional structured tracing of simulation runs.

A :class:`TraceRecorder` attached to a :class:`~repro.simnet.engine.Simulator`
receives one :class:`TraceEvent` per interesting occurrence (round start,
broadcast, decision, retraction, halt).  Traces power the debugging
examples and the regression tests that assert *when* things happened, not
just the final outputs.

Tracing is off by default; the engine pays no cost when no recorder is
attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Tuple

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    Attributes
    ----------
    round_index:
        1-based round in which the event happened (0 for pre-run events).
    kind:
        One of ``"round"``, ``"broadcast"``, ``"deliver"``, ``"decide"``,
        ``"retract"``, ``"halt"``, ``"note"``.
    node_id:
        The node concerned, or ``None`` for global events.
    payload:
        Event-specific data (the message for broadcasts, the decision
        value for decisions, free-form text for notes).
    """

    round_index: int
    kind: str
    node_id: Optional[int]
    payload: Any = None


class TraceRecorder:
    """In-memory trace sink with simple query helpers.

    Parameters
    ----------
    record_broadcasts:
        Broadcasts are by far the most numerous events; recording them can
        be disabled independently to keep traces small on long runs.
    max_events:
        Hard cap on stored events (oldest kept); ``None`` for unlimited.
    """

    def __init__(self, record_broadcasts: bool = True,
                 max_events: Optional[int] = None) -> None:
        self.record_broadcasts = bool(record_broadcasts)
        self.max_events = max_events
        self._events: List[TraceEvent] = []
        self._truncated = False

    # -- recording ---------------------------------------------------------

    def record(self, event: TraceEvent) -> None:
        """Append *event*, honouring the broadcast filter and the cap."""
        if event.kind == "broadcast" and not self.record_broadcasts:
            return
        if self.max_events is not None and len(self._events) >= self.max_events:
            self._truncated = True
            return
        self._events.append(event)

    def note(self, round_index: int, text: str,
             node_id: Optional[int] = None) -> None:
        """Record a free-form annotation (used by algorithms for phases)."""
        self.record(TraceEvent(round_index, "note", node_id, text))

    # -- queries -----------------------------------------------------------

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """All recorded events, in order."""
        return tuple(self._events)

    @property
    def truncated(self) -> bool:
        """Whether the cap caused events to be dropped."""
        return self._truncated

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> Tuple[TraceEvent, ...]:
        """All events with ``event.kind == kind``."""
        return tuple(e for e in self._events if e.kind == kind)

    def for_node(self, node_id: int) -> Tuple[TraceEvent, ...]:
        """All events attributed to *node_id*."""
        return tuple(e for e in self._events if e.node_id == node_id)

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> Tuple[TraceEvent, ...]:
        """All events satisfying *predicate*."""
        return tuple(e for e in self._events if predicate(e))

    def decision_timeline(self) -> Tuple[Tuple[int, int, Any], ...]:
        """``(round, node, value)`` triples of final decisions, in round order.

        Retracted decisions are excluded: only the last ``decide`` of each
        node with no later ``retract`` counts.
        """
        last_decide: dict[int, TraceEvent] = {}
        for event in self._events:
            if event.kind == "decide" and event.node_id is not None:
                last_decide[event.node_id] = event
            elif event.kind == "retract" and event.node_id is not None:
                last_decide.pop(event.node_id, None)
        triples = [
            (e.round_index, node, e.payload) for node, e in last_decide.items()
        ]
        triples.sort()
        return tuple(triples)
