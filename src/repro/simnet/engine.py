"""The lock-step round engine.

:class:`Simulator` wires together a *dynamic-graph schedule* (anything
satisfying the :class:`ScheduleLike` duck type — in practice the classes in
:mod:`repro.dynamics`), a list of :class:`~repro.simnet.node.Algorithm`
nodes, and the metrics/trace machinery, and executes synchronous rounds:

1. every non-halted node composes its broadcast payload (graph not yet
   visible to it);
2. the schedule's graph for the round delivers each payload to the
   sender's current neighbours;
3. every non-halted node consumes its inbox;
4. decision-lifecycle events are drained into metrics and traces.

Stop conditions
---------------
``run`` stops at the first of:

* all nodes **halted** (``until="halted"``, the default);
* all nodes **decided** (``until="decided"``) — appropriate for algorithms
  that decide exactly once;
* all nodes decided and reporting no state change for
  ``quiescence_window`` consecutive rounds (``until="quiescent"``) —
  appropriate for *stabilizing* algorithms whose decisions may be
  tentatively wrong and later retracted (see
  :mod:`repro.core.termination` for why this matters in this model);
* a user predicate (``stop_when``);
* the round budget ``max_rounds`` (raising
  :class:`~repro.errors.NotTerminatedError` unless ``allow_timeout``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from .._validate import require_choice, require_positive_int
from ..errors import BandwidthExceededError, ConfigurationError, NotTerminatedError
from .message import bit_size
from .metrics import MetricsCollector, RunMetrics
from .node import Algorithm, RoundContext
from .rng import RngRegistry
from .trace import TraceEvent, TraceRecorder

__all__ = ["Simulator", "RunResult", "ScheduleLike"]


class ScheduleLike(Protocol):
    """Duck type the engine requires of a dynamic-graph schedule."""

    @property
    def num_nodes(self) -> int:  # pragma: no cover - protocol
        """Number of nodes."""
        ...

    def neighbors(self, round_index: int) -> Sequence[Sequence[int]]:  # pragma: no cover
        """Adjacency (lists of node *indices*) of the 1-based round's graph."""
        ...


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :meth:`Simulator.run` call.

    Attributes
    ----------
    metrics:
        Frozen complexity accounting for the run.
    outputs:
        Final decision value per node id (missing nodes never decided).
    rounds:
        Rounds executed (equal to ``metrics.rounds``).
    stop_reason:
        One of ``"halted"``, ``"decided"``, ``"quiescent"``, ``"predicate"``,
        ``"max_rounds"``.
    """

    metrics: RunMetrics
    outputs: Dict[int, Any]
    rounds: int
    stop_reason: str

    def unanimous_output(self) -> Any:
        """Return the single common output, or raise if nodes disagree.

        Convenience for problems (Count, Max, Consensus) whose spec
        requires all nodes to output the same value.
        """
        values = set(self.outputs.values())
        if len(values) != 1:
            raise AssertionError(f"nodes disagree: {sorted(map(repr, values))[:10]}")
        return next(iter(values))


class Simulator:
    """Round engine binding a schedule to a set of protocol nodes.

    Parameters
    ----------
    schedule:
        The dynamic-graph schedule (see :mod:`repro.dynamics`).
    nodes:
        One :class:`Algorithm` per schedule index, in index order.  Node
        *ids* may be arbitrary distinct ints; node *indices* (their
        position in this list) are what the schedule's adjacency refers to.
    rng:
        Registry from which each node's private stream is drawn
        (component name ``"node"``).  A fresh seed-0 registry by default.
    bandwidth_bits:
        If given, the CONGEST-style per-message bit budget.  Violations
        raise :class:`~repro.errors.BandwidthExceededError` when
        ``strict_bandwidth`` is true, otherwise they are tallied in the
        ``bandwidth_overflows`` counter.
    id_bits:
        Width charged for :class:`~repro.simnet.message.NodeId` values.
    trace:
        Optional :class:`TraceRecorder`.
    loss_rate:
        EXTENSION beyond the paper's model (used by experiment X2): each
        *directed delivery* is independently dropped with this
        probability (seeded from *rng*, component ``"loss"``).  Note
        that message loss silently weakens the adversary's promise — the
        effective per-round graph is a random subgraph — so halting
        known-bound algorithms lose their correctness guarantee, while
        the stabilizing core remains eventually correct as long as
        information keeps flowing.
    """

    def __init__(
        self,
        schedule: ScheduleLike,
        nodes: Sequence[Algorithm],
        rng: Optional[RngRegistry] = None,
        bandwidth_bits: Optional[int] = None,
        strict_bandwidth: bool = False,
        id_bits: int = 32,
        trace: Optional[TraceRecorder] = None,
        loss_rate: float = 0.0,
    ) -> None:
        if len(nodes) != schedule.num_nodes:
            raise ConfigurationError(
                f"schedule has {schedule.num_nodes} nodes but {len(nodes)} "
                f"Algorithm instances were supplied"
            )
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("node ids must be distinct")
        if bandwidth_bits is not None:
            require_positive_int(bandwidth_bits, "bandwidth_bits")
        self.schedule = schedule
        self.nodes: List[Algorithm] = list(nodes)
        self.rng = rng if rng is not None else RngRegistry(0)
        self.bandwidth_bits = bandwidth_bits
        self.strict_bandwidth = bool(strict_bandwidth)
        self.id_bits = require_positive_int(id_bits, "id_bits")
        self.trace = trace
        if not (0.0 <= float(loss_rate) < 1.0):
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {loss_rate}")
        self.loss_rate = float(loss_rate)
        self._loss_rng = self.rng.for_component("loss") if loss_rate else None
        self.metrics = MetricsCollector()
        self.round_index = 0
        self._node_rngs = [
            self.rng.for_node("node", node.node_id) for node in self.nodes
        ]
        self._quiescent_streak = 0
        # Payload objects repeat across rounds once protocols converge
        # (see AggregateNode's encode cache); memoize their bit cost by
        # identity, keeping a strong ref so the id stays valid.
        self._bits_cache: Dict[int, Tuple[Any, int]] = {}
        # Adaptive schedules inspect node state; give them the node list.
        bind = getattr(schedule, "bind", None)
        if bind is not None:
            bind(self.nodes)

    # -- single round --------------------------------------------------------

    def step(self) -> None:
        """Execute exactly one round."""
        self.round_index += 1
        r = self.round_index
        nodes = self.nodes
        n = len(nodes)
        trace = self.trace
        if trace is not None:
            trace.record(TraceEvent(r, "round", None))

        # Phase 1: compose (graph not yet revealed to nodes).
        payloads: List[Any] = [None] * n
        for i in range(n):
            node = nodes[i]
            if node.halted:
                continue
            ctx = RoundContext(r, self._node_rngs[i], self.metrics.incr)
            payloads[i] = node.compose(ctx)

        # Phase 2: reveal the round's graph and account for transmissions.
        neighbors = self.schedule.neighbors(r)
        halted = [node.halted for node in nodes]
        bits_cache = self._bits_cache
        for i in range(n):
            payload = payloads[i]
            if payload is None:
                continue
            entry = bits_cache.get(id(payload))
            if entry is not None and entry[0] is payload:
                bits = entry[1]
            else:
                bits = bit_size(payload, self.id_bits)
                if len(bits_cache) >= 4 * n:
                    bits_cache.clear()
                bits_cache[id(payload)] = (payload, bits)
            if self.bandwidth_bits is not None and bits > self.bandwidth_bits:
                if self.strict_bandwidth:
                    raise BandwidthExceededError(
                        f"node {nodes[i].node_id} composed a {bits}-bit "
                        f"message; budget is {self.bandwidth_bits} bits",
                        node_id=nodes[i].node_id, bits=bits,
                        limit=self.bandwidth_bits,
                    )
                self.metrics.incr("bandwidth_overflows")
            live_degree = sum(1 for j in neighbors[i] if not halted[j])
            self.metrics.on_broadcast(bits, live_degree)
            if trace is not None:
                trace.record(TraceEvent(r, "broadcast", nodes[i].node_id, payload))

        # Phase 3: deliver inboxes.
        all_changed_false = True
        loss_rng = self._loss_rng
        loss_rate = self.loss_rate
        for j in range(n):
            node = nodes[j]
            if node.halted:
                continue
            inbox = [
                payloads[i] for i in neighbors[j]
                if payloads[i] is not None and not halted[i]
            ]
            if loss_rng is not None and inbox:
                kept = loss_rng.random(len(inbox)) >= loss_rate
                dropped = len(inbox) - int(kept.sum())
                if dropped:
                    self.metrics.incr("messages_lost", dropped)
                    inbox = [m for m, keep in zip(inbox, kept) if keep]
            ctx = RoundContext(r, self._node_rngs[j], self.metrics.incr)
            node.deliver(ctx, inbox)
            if node.state_changed:
                all_changed_false = False
            # Phase 4: drain decision events.
            for event in node._drain_events():
                kind = event[0]
                if kind == "decide":
                    self.metrics.on_decision(node.node_id, r)
                    if trace is not None:
                        trace.record(TraceEvent(r, "decide", node.node_id, event[1]))
                elif kind == "retract":
                    self.metrics.on_retraction(node.node_id)
                    if trace is not None:
                        trace.record(TraceEvent(r, "retract", node.node_id))
                elif kind == "halt":
                    if trace is not None:
                        trace.record(TraceEvent(r, "halt", node.node_id))

        self._quiescent_streak = (
            self._quiescent_streak + 1 if all_changed_false else 0
        )
        self.metrics.on_round_executed()

    # -- full run --------------------------------------------------------------

    def run(
        self,
        max_rounds: int,
        until: str = "halted",
        quiescence_window: int = 1,
        stop_when: Optional[Callable[["Simulator"], bool]] = None,
        allow_timeout: bool = False,
    ) -> RunResult:
        """Execute rounds until a stop condition fires.

        See the module docstring for the semantics of each *until* value.
        """
        require_positive_int(max_rounds, "max_rounds")
        require_choice(until, "until", ("halted", "decided", "quiescent"))
        require_positive_int(quiescence_window, "quiescence_window")

        stop_reason = "max_rounds"
        while self.round_index < max_rounds:
            self.step()
            if stop_when is not None and stop_when(self):
                stop_reason = "predicate"
                break
            if until == "halted":
                if all(node.halted for node in self.nodes):
                    stop_reason = "halted"
                    break
            elif until == "decided":
                if all(node.decided or node.halted for node in self.nodes):
                    stop_reason = "decided"
                    break
            else:  # quiescent
                if (self._quiescent_streak >= quiescence_window
                        and all(node.decided or node.halted for node in self.nodes)):
                    stop_reason = "quiescent"
                    break

        if stop_reason == "max_rounds" and not allow_timeout:
            undecided = tuple(
                node.node_id for node in self.nodes
                if not (node.decided or node.halted)
            )
            raise NotTerminatedError(
                f"round budget of {max_rounds} exhausted under "
                f"until={until!r} ({len(undecided)} nodes undecided)",
                rounds_executed=self.round_index, undecided=undecided,
            )

        outputs = {
            node.node_id: node.output for node in self.nodes if node.decided
        }
        return RunResult(
            metrics=self.metrics.snapshot(),
            outputs=outputs,
            rounds=self.round_index,
            stop_reason=stop_reason,
        )
