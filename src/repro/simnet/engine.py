"""The lock-step round engine.

:class:`Simulator` wires together a *dynamic-graph schedule* (anything
satisfying the :class:`ScheduleLike` duck type — in practice the classes in
:mod:`repro.dynamics`), a list of :class:`~repro.simnet.node.Algorithm`
nodes, and the metrics/trace machinery, and executes synchronous rounds:

1. every non-halted node composes its broadcast payload (graph not yet
   visible to it);
2. the schedule's graph for the round delivers each payload to the
   sender's current neighbours;
3. every non-halted node consumes its inbox;
4. decision-lifecycle events are drained into metrics and traces.

Stop conditions
---------------
``run`` stops at the first of:

* all nodes **halted** (``until="halted"``, the default);
* all nodes **decided** (``until="decided"``) — appropriate for algorithms
  that decide exactly once;
* all nodes decided and reporting no state change for
  ``quiescence_window`` consecutive rounds (``until="quiescent"``) —
  appropriate for *stabilizing* algorithms whose decisions may be
  tentatively wrong and later retracted (see
  :mod:`repro.core.termination` for why this matters in this model);
* a user predicate (``stop_when``);
* the round budget ``max_rounds`` (raising
  :class:`~repro.errors.NotTerminatedError` unless ``allow_timeout``).

Engines
-------
Execution is delegated to pluggable **engine backends** (see
:mod:`repro.simnet.backends`): each backend declares its capabilities as
a frozen record, and the negotiator matches those declarations against
the run's requirements — message loss, tracing, ``stop_when``
predicates, strict bandwidth, schedule shape — producing the candidate
chain plus a structured :class:`~repro.simnet.backends.base.CapabilityDiff`
for every tier passed over (surfaced through ``engine_tier``
observability events).  All backends produce **identical**
:class:`RunResult`\\ s (golden-equivalence tested across topologies ×
algorithms × loss rates).  The built-in tiers:

* **batch kernels** (overlay) — when every node is an instance of one
  algorithm class exposing the ``__batch_kernel__`` hook (see
  :mod:`repro.simnet.backends.batch`), whole rounds execute as NumPy
  segment-reduces over the CSR adjacency, with decisions/halts/metrics
  reconciled from the arrays.  Message loss is handled natively via a
  vectorised per-edge Bernoulli delivery view; trace recorders, strict
  bandwidth, ``stop_when`` predicates, and adaptive schedules negotiate
  down to the next tier.
* ``engine="fast"`` (default) — consumes the schedule's interval-aware
  CSR adjacency (see :meth:`repro.dynamics.GraphSchedule.adjacency`),
  tracks the non-halted *active set* incrementally so per-round work is
  ``O(active)``, reuses one :class:`RoundContext` per node, and computes
  live degrees vectorised over the CSR.  Schedules that expose only the
  minimal :class:`ScheduleLike` duck type (no ``adjacency``) fall back
  to the reference engine transparently.  ``engine="fast-nobatch"``
  selects this tier while disabling the batch-kernel overlay.
* ``engine="reference"`` — the straightforward per-node loops, kept as
  the executable specification the other tiers are tested against.

Third-party backends registered with
:func:`repro.simnet.backends.register_backend` are accepted by
``Simulator(engine=<name>)`` (and the CLIs' ``--engine``) without any
engine changes; the built-in non-overlay tiers remain as negotiated
fallbacks for runs the named backend declines.

Profiling
---------
Pass ``profile=True`` (or set the module default via
:func:`set_profile_default` / the ``REPRO_PROFILE=1`` environment
variable, which is what the harness CLI's ``--profile`` flag does) to
collect monotonic per-phase wall-clock totals — ``compose``, ``reveal``,
``deliver``, ``drain`` — surfaced as
:attr:`~repro.simnet.metrics.RunMetrics.phase_seconds`.

Observability
-------------
Pass ``recorder=`` a :class:`repro.obs.Recorder` to stream structured
events (per-round broadcast/delivery totals, decision lifecycles,
engine-tier dispatch decisions with reasons, cache hit/miss counters).
The hook is zero-overhead when absent — one ``is None`` check per round,
no event objects allocated; when present, rounds route through
:meth:`Simulator._step_recorded` and the fused loop is disabled (the
same observable-phase-boundary rule as profiling).  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import islice
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .._validate import require_choice, require_positive_int
from ..errors import ConfigurationError, NotTerminatedError
from ..obs import events as obs_events
from ..obs.recorder import Recorder
from .backends import available_engines, negotiate
from .backends.base import CapabilityDiff, EngineBackend, missing_requirements
from .message import bit_size
from .metrics import MetricsCollector, RunMetrics
from .node import Algorithm, RoundContext
from .rng import RngRegistry
from .trace import TraceRecorder

__all__ = ["Simulator", "RunResult", "ScheduleLike",
           "set_profile_default", "profile_default",
           "set_engine_default", "engine_default"]

#: Phase names of the per-round profiling breakdown, in execution order.
PHASES = ("compose", "reveal", "deliver", "drain")

#: Built-in engine dispatch tiers, in preference order.  Kept as the
#: stable key set of per-run tier accounting; the authoritative list of
#: selectable engines is :func:`repro.simnet.backends.available_engines`.
ENGINE_TIERS = ("batch", "fast", "reference")

_PROFILE_DEFAULT = os.environ.get("REPRO_PROFILE", "") not in ("", "0")

#: Process default installed by :func:`set_engine_default`; ``None``
#: means "no setter call yet" and resolves to ``"fast"``.
_ENGINE_DEFAULT: Optional[str] = None


def set_engine_default(engine: str) -> None:
    """Set the process-wide default for ``Simulator(engine=None)``.

    The harness CLI's ``--engine`` flag calls this before running
    experiments (same pattern as :func:`set_profile_default`).

    Precedence: a non-empty ``REPRO_ENGINE`` environment variable
    **wins over** this setter — :func:`engine_default` reads the
    environment on every call, so an operator's env pin survives any
    in-process configuration.  Unset (or empty) ``REPRO_ENGINE`` defers
    to the value installed here.
    """
    global _ENGINE_DEFAULT
    require_choice(engine, "engine", available_engines())
    _ENGINE_DEFAULT = engine
    env = os.environ.get("REPRO_ENGINE", "")
    # Env-wins is a documented invariant; fail loudly if it regresses.
    assert engine_default() == (env or engine), (
        "REPRO_ENGINE must take precedence over set_engine_default()")


def engine_default() -> str:
    """Current process-wide engine default.

    A non-empty ``REPRO_ENGINE`` environment variable always wins;
    otherwise the value installed by :func:`set_engine_default`, falling
    back to ``"fast"``.
    """
    env = os.environ.get("REPRO_ENGINE", "")
    if env:
        return env
    return _ENGINE_DEFAULT if _ENGINE_DEFAULT is not None else "fast"


def set_profile_default(enabled: bool) -> None:
    """Set the process-wide default for ``Simulator(profile=None)``.

    The harness CLI's ``--profile`` flag calls this before running
    experiments, so every simulator the experiment grids construct picks
    up per-phase timing without threading a flag through every spec
    (worker processes inherit the setting under the default ``fork``
    start method).
    """
    global _PROFILE_DEFAULT
    _PROFILE_DEFAULT = bool(enabled)


def profile_default() -> bool:
    """Current process-wide profiling default."""
    return _PROFILE_DEFAULT


class ScheduleLike(Protocol):
    """Duck type the engine requires of a dynamic-graph schedule."""

    @property
    def num_nodes(self) -> int:  # pragma: no cover - protocol
        """Number of nodes."""
        ...

    def neighbors(self, round_index: int) -> Sequence[Sequence[int]]:  # pragma: no cover
        """Adjacency (lists of node *indices*) of the 1-based round's graph."""
        ...


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :meth:`Simulator.run` call.

    Attributes
    ----------
    metrics:
        Frozen complexity accounting for the run.
    outputs:
        Final decision value per node id (missing nodes never decided).
    rounds:
        Rounds executed (equal to ``metrics.rounds``).
    stop_reason:
        One of ``"halted"``, ``"decided"``, ``"quiescent"``, ``"predicate"``,
        ``"max_rounds"``.
    """

    metrics: RunMetrics
    outputs: Dict[int, Any]
    rounds: int
    stop_reason: str

    def unanimous_output(self) -> Any:
        """Return the single common output, or raise if nodes disagree.

        Convenience for problems (Count, Max, Consensus) whose spec
        requires all nodes to output the same value.
        """
        values = set(self.outputs.values())
        if len(values) != 1:
            raise AssertionError(f"nodes disagree: {sorted(map(repr, values))[:10]}")
        return next(iter(values))


class Simulator:
    """Round engine binding a schedule to a set of protocol nodes.

    Parameters
    ----------
    schedule:
        The dynamic-graph schedule (see :mod:`repro.dynamics`).
    nodes:
        One :class:`Algorithm` per schedule index, in index order.  Node
        *ids* may be arbitrary distinct ints; node *indices* (their
        position in this list) are what the schedule's adjacency refers to.
    rng:
        Registry from which each node's private stream is drawn
        (component name ``"node"``).  A fresh seed-0 registry by default.
    bandwidth_bits:
        If given, the CONGEST-style per-message bit budget.  Violations
        raise :class:`~repro.errors.BandwidthExceededError` when
        ``strict_bandwidth`` is true, otherwise they are tallied in the
        ``bandwidth_overflows`` counter.
    id_bits:
        Width charged for :class:`~repro.simnet.message.NodeId` values.
    trace:
        Optional :class:`TraceRecorder`.
    loss_rate:
        EXTENSION beyond the paper's model (used by experiment X2): each
        *directed delivery* is independently dropped with this
        probability (seeded from *rng*, component ``"loss"``).  Note
        that message loss silently weakens the adversary's promise — the
        effective per-round graph is a random subgraph — so halting
        known-bound algorithms lose their correctness guarantee, while
        the stabilizing core remains eventually correct as long as
        information keeps flowing.
    engine:
        ``"fast"``, ``"fast-nobatch"``, or ``"reference"``; see the
        module docstring.  All produce identical results —
        ``"reference"`` exists as the executable specification and for
        debugging, ``"fast-nobatch"`` is the fast path with batch-kernel
        dispatch disabled.  ``None`` (default) resolves to
        :func:`engine_default`.
    batch_kernels:
        Whether :meth:`run` may dispatch to an algorithm's batch kernel
        (see :mod:`repro.simnet.batch`).  ``None`` (default) resolves to
        on; ``engine="fast-nobatch"`` forces it off.
    profile:
        Collect per-phase wall-clock totals (see the module docstring).
        ``None`` (default) resolves to :func:`profile_default`.
    recorder:
        Optional :class:`repro.obs.Recorder` receiving the structured
        event stream (see the module docstring).  ``None`` (default)
        records nothing and costs nothing.
    """

    def __init__(
        self,
        schedule: ScheduleLike,
        nodes: Sequence[Algorithm],
        rng: Optional[RngRegistry] = None,
        bandwidth_bits: Optional[int] = None,
        strict_bandwidth: bool = False,
        id_bits: int = 32,
        trace: Optional[TraceRecorder] = None,
        loss_rate: float = 0.0,
        engine: Optional[str] = None,
        profile: Optional[bool] = None,
        batch_kernels: Optional[bool] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if len(nodes) != schedule.num_nodes:
            raise ConfigurationError(
                f"schedule has {schedule.num_nodes} nodes but {len(nodes)} "
                f"Algorithm instances were supplied"
            )
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("node ids must be distinct")
        if bandwidth_bits is not None:
            require_positive_int(bandwidth_bits, "bandwidth_bits")
        if engine is None:
            engine = engine_default()
        require_choice(engine, "engine", available_engines())
        if engine == "fast-nobatch":
            engine = "fast"
            batch_kernels = False
        if batch_kernels is None:
            batch_kernels = True
        self.schedule = schedule
        self.nodes: List[Algorithm] = list(nodes)
        self.rng = rng if rng is not None else RngRegistry(0)
        self.bandwidth_bits = bandwidth_bits
        self.strict_bandwidth = bool(strict_bandwidth)
        self.id_bits = require_positive_int(id_bits, "id_bits")
        self.trace = trace
        if not (0.0 <= float(loss_rate) < 1.0):
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {loss_rate}")
        self.loss_rate = float(loss_rate)
        self._loss_rng = self.rng.for_component("loss") if loss_rate else None
        self.metrics = MetricsCollector()
        self.round_index = 0
        self._node_rngs = [
            self.rng.for_node("node", node.node_id) for node in self.nodes
        ]
        self._quiescent_streak = 0
        n = len(self.nodes)
        # Payload objects repeat across rounds once protocols converge
        # (see AggregateNode's encode cache); memoize their bit cost by
        # identity, keeping a strong ref so the id stays valid.  Bounded
        # by evicting the oldest quarter, so converged-payload entries
        # survive cache pressure.
        self._bits_cache: Dict[int, Tuple[Any, int]] = {}
        self._bits_cache_cap = max(64, 4 * n)
        if profile is None:
            profile = _PROFILE_DEFAULT
        self.profile = bool(profile)
        self._phase_seconds: Optional[Dict[str, float]] = (
            {name: 0.0 for name in PHASES} if self.profile else None)
        # Fast-path state: one reusable context per node, the ascending
        # active (non-halted) index list maintained incrementally, the
        # halted mask consumed by the vectorised live-degree computation,
        # and reusable payload/sendable scratch.
        self._contexts = [
            RoundContext(0, self._node_rngs[i], self.metrics.incr)
            for i in range(n)
        ]
        self._active: List[int] = list(range(n))
        self._halted_mask = np.zeros(n, dtype=bool)
        self._any_halted = False
        self._payloads: List[Any] = [None] * n
        self._sendable: List[bool] = [False] * n
        # Adaptive schedules inspect node state; give them the node list.
        bind = getattr(schedule, "bind", None)
        if bind is not None:
            bind(self.nodes)
        # Engine-backend negotiation (see repro.simnet.backends): the
        # run's *static* requirements — knowable at construction time —
        # are matched against every registered backend's capability
        # declaration.  Each tier that cannot serve the run is declined
        # with a structured CapabilityDiff (surfaced through
        # EngineTierEvents when a recorder is attached); the survivors
        # form the candidate chain run() engages in priority order.
        # Dynamic, per-run() requirements — a stop_when predicate, a
        # pre-halted population, a custom metrics override, the batch
        # tier's population-kernel probe — are negotiated when run()
        # starts.
        self.batch_kernels = bool(batch_kernels)
        requirements: Dict[str, str] = {}
        if trace is not None:
            requirements["trace"] = "trace recorder attached"
        if self.loss_rate != 0.0:
            requirements["loss"] = "loss_rate > 0"
        if self.strict_bandwidth and bandwidth_bits is not None:
            requirements["strict-bandwidth"] = "strict bandwidth budget"
        if bind is not None:
            requirements["adaptive-schedule"] = (
                "adaptive schedule binds node state")
        if getattr(schedule, "adjacency", None) is None:
            requirements["adjacency-free-schedule"] = (
                "schedule exposes no CSR adjacency")
        if recorder is not None:
            requirements["recorder"] = "event recorder attached"
        self._requirements = requirements
        self._negotiation = negotiate(engine, requirements,
                                      batch_kernels=self.batch_kernels)
        self._base_backend: EngineBackend = self._negotiation.base
        self._active_backend: EngineBackend = self._base_backend
        #: Name of the persistent (non-overlay) tier; overlay tiers such
        #: as the batch kernels engage on top of it during run().
        self.engine = self._base_backend.name
        batch_declines = [d for d in self._negotiation.declined
                          if d.backend == "batch"]
        self._batch_enabled = any(
            b.name == "batch" for b in self._negotiation.candidates)
        self._batch_reason: Optional[str] = (
            "; ".join(d.render() for d in batch_declines) or None)
        self._batch_live = False
        self._batch_kernel: Optional[Any] = None
        self._batch_ctx: Optional[Any] = None
        self._batch_pending: Optional[List[Tuple[int, List[tuple]]]] = None
        #: Rounds executed per dispatch tier (surfaced via
        #: RunMetrics.engine_stats when profiling).
        self._tier_rounds: Dict[str, int] = {tier: 0 for tier in ENGINE_TIERS}
        # Observability (see the module docstring): everything below is
        # allocated only when a recorder is attached, so the unrecorded
        # hot path pays one `is None` check per round and nothing else.
        self.recorder = recorder
        self._bits_stats: Optional[Dict[str, int]] = None
        self._adj_stats_base: Optional[Dict[str, int]] = None
        self._rec_halted: Optional[set] = None
        self._rec_nodes_by_id: Optional[Dict[int, Algorithm]] = None
        if recorder is not None:
            self._rec_nodes_by_id = {node.node_id: node for node in self.nodes}
            self._rec_halted = {
                node.node_id for node in self.nodes if node._halted}
            adj_stats = getattr(schedule, "adjacency_stats", None)
            if adj_stats is not None:
                self._adj_stats_base = dict(adj_stats)
            # Count payload-bits cache hits/misses by shadowing the bound
            # method with a tallying wrapper (instance attribute wins), so
            # the uncounted method body stays on the unrecorded hot path.
            self._bits_stats = {"hits": 0, "misses": 0}
            inner = self._payload_bits
            bits_cache = self._bits_cache
            bits_stats = self._bits_stats

            def _counted_payload_bits(payload: Any) -> int:
                entry = bits_cache.get(id(payload))
                if entry is not None and entry[0] is payload:
                    bits_stats["hits"] += 1
                else:
                    bits_stats["misses"] += 1
                return inner(payload)

            self._payload_bits = _counted_payload_bits  # type: ignore[method-assign]

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Per-cache hit/miss counters of this run (recorded runs only).

        Flat ``{"adjacency_hits": ..., "adjacency_misses": ...,
        "payload_bits_hits": ..., "payload_bits_misses": ...}`` — the
        same numbers the end-of-run ``CacheEvent`` stream carries,
        shaped for ``cache.*`` result-row columns.  ``None`` when no
        recorder is attached (the unrecorded hot path tallies nothing).
        """
        if self.recorder is None:
            return None
        stats: Dict[str, int] = {}
        adj_stats = getattr(self.schedule, "adjacency_stats", None)
        if adj_stats is not None:
            base = self._adj_stats_base or {}
            delta = {key: adj_stats[key] - base.get(key, 0)
                     for key in adj_stats}
            stats["adjacency_hits"] = (delta.get("span_hits", 0)
                                       + delta.get("fingerprint_hits", 0))
            stats["adjacency_misses"] = delta.get("builds", 0)
        if self._bits_stats is not None:
            stats["payload_bits_hits"] = self._bits_stats["hits"]
            stats["payload_bits_misses"] = self._bits_stats["misses"]
        return stats

    # -- payload costing -----------------------------------------------------

    def _payload_bits(self, payload: Any) -> int:
        """Bit cost of *payload*, memoized by object identity.

        On overflow the **oldest quarter** of entries is evicted (dict
        insertion order) rather than dropping the whole cache, so the
        long-lived converged payloads that motivate the memoization keep
        their entries under pressure from transient ones.
        """
        cache = self._bits_cache
        entry = cache.get(id(payload))
        if entry is not None and entry[0] is payload:
            return entry[1]
        bits = bit_size(payload, self.id_bits)
        if len(cache) >= self._bits_cache_cap:
            for key in list(islice(iter(cache), self._bits_cache_cap // 4)):
                del cache[key]
        cache[id(payload)] = (payload, bits)
        return bits

    # -- single round --------------------------------------------------------

    def step(self) -> None:
        """Execute exactly one round."""
        if self.recorder is None:
            self._step_inner()
        else:
            self._step_recorded(self.recorder)

    def _step_inner(self) -> None:
        """One round via whichever negotiated backend is live."""
        backend = self._active_backend
        tiers = self._tier_rounds
        tiers[backend.name] = tiers.get(backend.name, 0) + 1
        backend.run_round(self)

    def _step_recorded(self, rec: Recorder) -> None:
        """One round with the observability stream attached.

        Emits per-round :class:`~repro.obs.events.RoundEvent` /
        :class:`~repro.obs.events.DeliveryEvent` totals (deltas of the
        metric sums, so the events hold regardless of dispatch tier),
        per-node :class:`~repro.obs.events.DecisionEvent` lifecycle
        changes (diffed from the decision/halt state, which is how one
        implementation covers all three tiers), and a mid-run
        :class:`~repro.obs.events.EngineTierEvent` when the batch kernel
        falls back to the per-node path.
        """
        metrics = self.metrics
        prev_broadcasts = metrics.broadcasts
        prev_bbits = metrics.broadcast_bits
        prev_msgs = metrics.delivered_messages
        prev_dbits = metrics.delivered_bits
        prev_decisions = dict(metrics._decision_rounds)
        was_backend = self._active_backend
        tier = was_backend.name

        self._step_inner()

        r = self.round_index
        rec.emit(obs_events.RoundEvent(
            round=r, tier=tier,
            broadcasts=metrics.broadcasts - prev_broadcasts,
            broadcast_bits=metrics.broadcast_bits - prev_bbits,
            max_broadcast_bits=metrics.max_broadcast_bits))
        rec.emit(obs_events.DeliveryEvent(
            round=r,
            messages=metrics.delivered_messages - prev_msgs,
            bits=metrics.delivered_bits - prev_dbits))
        now = metrics._decision_rounds
        if now != prev_decisions:
            by_id = self._rec_nodes_by_id
            for node_id, decided_round in now.items():
                if prev_decisions.get(node_id) != decided_round:
                    node = by_id[node_id]
                    rec.emit(obs_events.DecisionEvent(
                        round=r, node_id=node_id, action="decide",
                        value=node.output if node.decided else None))
            for node_id in prev_decisions:
                if node_id not in now:
                    rec.emit(obs_events.DecisionEvent(
                        round=r, node_id=node_id, action="retract"))
        halted_seen = self._rec_halted
        for node in self.nodes:
            if node._halted and node.node_id not in halted_seen:
                halted_seen.add(node.node_id)
                rec.emit(obs_events.DecisionEvent(
                    round=r, node_id=node.node_id, action="halt"))
        if was_backend is not self._active_backend:
            # An overlay tier retired mid-round (e.g. the batch kernel
            # on the first halt event) back to the persistent backend.
            reason = ("halt event deactivated the batch kernel"
                      if was_backend.name == "batch"
                      else f"halt event deactivated the "
                           f"{was_backend.name} backend")
            diff = CapabilityDiff(backend=was_backend.name,
                                  missing=("mid-run-halt",), detail=reason)
            rec.emit(obs_events.EngineTierEvent(
                round=r, tier=self._active_backend.name, action="fallback",
                reason=reason, declined=[diff.to_payload()]))

    # -- backend selection ----------------------------------------------------

    def _select_backends(self, stop_when: Optional[Callable]
                         ) -> List[CapabilityDiff]:
        """Finish negotiation with this run()'s dynamic requirements.

        The statically capable candidates are probed in priority order:
        first against the generic dynamic requirements (a ``stop_when``
        predicate inspecting run state, a population that already
        contains halted nodes, an instance-level ``on_broadcast``
        override), then through each backend's own :meth:`prepare` hook
        (the batch tier builds its population kernel there).  The first
        surviving overlay becomes the active backend on top of the first
        surviving persistent tier; every decline is returned as a
        structured diff for the ``engine_tier`` select event.
        """
        declined: List[CapabilityDiff] = list(self._negotiation.declined)
        dynamic: Dict[str, str] = {}
        if stop_when is not None:
            dynamic["stop-when"] = "stop_when predicate inspects run state"
        if self._any_halted:
            dynamic["pre-halted"] = "population already contains halted nodes"
        if "on_broadcast" in self.metrics.__dict__:
            dynamic["custom-metrics"] = "custom on_broadcast metrics override"
        active: Optional[EngineBackend] = None
        base: Optional[EngineBackend] = None
        for backend in self._negotiation.candidates:
            missing = missing_requirements(backend.capabilities, dynamic)
            diff = (CapabilityDiff(backend=backend.name, missing=missing)
                    if missing else backend.prepare(self, stop_when))
            if diff is not None:
                declined.append(diff)
                if backend.overlay:
                    # Compatibility mirror of the historical attribute.
                    self._batch_reason = diff.render()
                continue
            if active is None:
                active = backend
            if not backend.overlay:
                base = backend
                break
        if base is None:
            posed = "; ".join(d.render() for d in declined) or "no reason"
            raise ConfigurationError(
                f"engine {self._negotiation.engine!r}: every negotiated "
                f"backend declined this run ({posed})")
        self._base_backend = base
        self._active_backend = active if active is not None else base
        self.engine = base.name
        return declined

    # -- stop-condition helpers ----------------------------------------------

    def _all_halted(self) -> bool:
        if self.engine == "fast":
            return not self._active
        return all(node.halted for node in self.nodes)

    def _all_decided_or_halted(self) -> bool:
        if self._batch_live:
            return bool(self._batch_kernel.decided.all())
        if self.engine == "fast":
            nodes = self.nodes
            return all(nodes[i]._decided for i in self._active)
        return all(node.decided or node.halted for node in self.nodes)

    # -- full run --------------------------------------------------------------

    def run(
        self,
        max_rounds: int,
        until: str = "halted",
        quiescence_window: int = 1,
        stop_when: Optional[Callable[["Simulator"], bool]] = None,
        allow_timeout: bool = False,
    ) -> RunResult:
        """Execute rounds until a stop condition fires.

        See the module docstring for the semantics of each *until* value.
        """
        require_positive_int(max_rounds, "max_rounds")
        require_choice(until, "until", ("halted", "decided", "quiescent"))
        require_positive_int(quiescence_window, "quiescence_window")

        stop_reason = "max_rounds"
        declined = self._select_backends(stop_when)
        rec = self.recorder
        if rec is not None:
            chosen = self._active_backend
            if chosen.overlay:
                reason = ("population batch kernel engaged"
                          if chosen.name == "batch"
                          else f"{chosen.name} backend engaged")
            else:
                # Order-preserving dedup: pinned aliases decline several
                # tiers with the same clause.
                clauses: List[str] = []
                for diff in declined:
                    clause = diff.render()
                    if clause not in clauses:
                        clauses.append(clause)
                reason = "; ".join(clauses)
            rec.emit(obs_events.EngineTierEvent(
                round=self.round_index, tier=chosen.name, action="select",
                reason=reason,
                declined=[d.to_payload() for d in declined] or None))
        try:
            while self.round_index < max_rounds:
                self.step()
                if stop_when is not None and stop_when(self):
                    stop_reason = "predicate"
                    break
                if until == "halted":
                    if self._all_halted():
                        stop_reason = "halted"
                        break
                elif until == "decided":
                    if self._all_decided_or_halted():
                        stop_reason = "decided"
                        break
                else:  # quiescent
                    if (self._quiescent_streak >= quiescence_window
                            and self._all_decided_or_halted()):
                        stop_reason = "quiescent"
                        break
        finally:
            # Whatever happens, node objects must reflect the backend's
            # state before anyone (including the error path below, or a
            # later run() call) inspects them.  reconcile() is idempotent;
            # an overlay that retired mid-run already reconciled itself.
            self._active_backend.reconcile(self)

        if rec is not None:
            adj_stats = getattr(self.schedule, "adjacency_stats", None)
            if adj_stats is not None:
                base = self._adj_stats_base or {}
                delta = {key: adj_stats[key] - base.get(key, 0)
                         for key in adj_stats}
                rec.emit(obs_events.CacheEvent(
                    round=self.round_index, cache="adjacency",
                    hits=delta.get("span_hits", 0)
                    + delta.get("fingerprint_hits", 0),
                    misses=delta.get("builds", 0),
                    detail=(f"span_hits={delta.get('span_hits', 0)} "
                            f"fingerprint_hits="
                            f"{delta.get('fingerprint_hits', 0)} "
                            f"evictions={delta.get('evictions', 0)}")))
            bits_stats = self._bits_stats
            if bits_stats is not None:
                rec.emit(obs_events.CacheEvent(
                    round=self.round_index, cache="payload_bits",
                    hits=bits_stats["hits"], misses=bits_stats["misses"],
                    detail=f"entries={len(self._bits_cache)}"))
            tiers = self._tier_rounds
            rec.emit(obs_events.SummaryEvent(
                rounds=self.round_index, stop_reason=stop_reason,
                broadcast_bits=self.metrics.broadcast_bits,
                delivered_messages=self.metrics.delivered_messages,
                batch_rounds=tiers.get("batch", 0),
                fast_rounds=tiers.get("fast", 0),
                reference_rounds=tiers.get("reference", 0)))

        if stop_reason == "max_rounds" and not allow_timeout:
            undecided = tuple(
                node.node_id for node in self.nodes
                if not (node.decided or node.halted)
            )
            raise NotTerminatedError(
                f"round budget of {max_rounds} exhausted under "
                f"until={until!r} ({len(undecided)} nodes undecided)",
                rounds_executed=self.round_index, undecided=undecided,
            )

        outputs = {
            node.node_id: node.output for node in self.nodes if node.decided
        }
        phase_seconds = (
            dict(self._phase_seconds) if self._phase_seconds is not None
            else None)
        engine_stats = dict(self._tier_rounds) if self.profile else None
        return RunResult(
            metrics=self.metrics.snapshot(phase_seconds=phase_seconds,
                                          engine_stats=engine_stats),
            outputs=outputs,
            rounds=self.round_index,
            stop_reason=stop_reason,
        )
