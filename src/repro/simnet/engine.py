"""The lock-step round engine.

:class:`Simulator` wires together a *dynamic-graph schedule* (anything
satisfying the :class:`ScheduleLike` duck type — in practice the classes in
:mod:`repro.dynamics`), a list of :class:`~repro.simnet.node.Algorithm`
nodes, and the metrics/trace machinery, and executes synchronous rounds:

1. every non-halted node composes its broadcast payload (graph not yet
   visible to it);
2. the schedule's graph for the round delivers each payload to the
   sender's current neighbours;
3. every non-halted node consumes its inbox;
4. decision-lifecycle events are drained into metrics and traces.

Stop conditions
---------------
``run`` stops at the first of:

* all nodes **halted** (``until="halted"``, the default);
* all nodes **decided** (``until="decided"``) — appropriate for algorithms
  that decide exactly once;
* all nodes decided and reporting no state change for
  ``quiescence_window`` consecutive rounds (``until="quiescent"``) —
  appropriate for *stabilizing* algorithms whose decisions may be
  tentatively wrong and later retracted (see
  :mod:`repro.core.termination` for why this matters in this model);
* a user predicate (``stop_when``);
* the round budget ``max_rounds`` (raising
  :class:`~repro.errors.NotTerminatedError` unless ``allow_timeout``).

Engines
-------
Three dispatch tiers produce **identical** :class:`RunResult`\\ s
(golden-equivalence tested across topologies × algorithms × loss rates):

* **batch kernels** — when every node is an instance of one algorithm
  class exposing the ``__batch_kernel__`` hook (see
  :mod:`repro.simnet.batch`), :meth:`Simulator.run` executes whole
  rounds as NumPy segment-reduces over the CSR adjacency, with
  decisions/halts/metrics reconciled from the arrays.  Engaged only
  under ``engine="fast"`` and only for observable-free runs (no trace,
  no loss, no strict bandwidth, no ``stop_when`` predicate, no adaptive
  schedule); anything else falls through to the next tier.
* ``engine="fast"`` (default) — consumes the schedule's interval-aware
  CSR adjacency (see :meth:`repro.dynamics.GraphSchedule.adjacency`),
  tracks the non-halted *active set* incrementally so per-round work is
  ``O(active)``, reuses one :class:`RoundContext` per node, and computes
  live degrees vectorised over the CSR.  Schedules that expose only the
  minimal :class:`ScheduleLike` duck type (no ``adjacency``) fall back
  to the reference engine transparently.  ``engine="fast-nobatch"``
  selects this tier while disabling the batch-kernel dispatch.
* ``engine="reference"`` — the straightforward per-node loops, kept as
  the executable specification the other tiers are tested against.

Profiling
---------
Pass ``profile=True`` (or set the module default via
:func:`set_profile_default` / the ``REPRO_PROFILE=1`` environment
variable, which is what the harness CLI's ``--profile`` flag does) to
collect monotonic per-phase wall-clock totals — ``compose``, ``reveal``,
``deliver``, ``drain`` — surfaced as
:attr:`~repro.simnet.metrics.RunMetrics.phase_seconds`.

Observability
-------------
Pass ``recorder=`` a :class:`repro.obs.Recorder` to stream structured
events (per-round broadcast/delivery totals, decision lifecycles,
engine-tier dispatch decisions with reasons, cache hit/miss counters).
The hook is zero-overhead when absent — one ``is None`` check per round,
no event objects allocated; when present, rounds route through
:meth:`Simulator._step_recorded` and the fused loop is disabled (the
same observable-phase-boundary rule as profiling).  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import islice
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .._validate import require_choice, require_positive_int
from ..errors import BandwidthExceededError, ConfigurationError, NotTerminatedError
from ..obs import events as obs_events
from ..obs.recorder import Recorder
from .batch import (BatchContext, build_batch_kernel,
                    describe_batch_ineligibility)
from .message import bit_size
from .metrics import MetricsCollector, RunMetrics
from .node import Algorithm, RoundContext
from .rng import RngRegistry
from .trace import TraceEvent, TraceRecorder

__all__ = ["Simulator", "RunResult", "ScheduleLike",
           "set_profile_default", "profile_default",
           "set_engine_default", "engine_default"]

#: Phase names of the per-round profiling breakdown, in execution order.
PHASES = ("compose", "reveal", "deliver", "drain")

#: Engine dispatch tiers, in preference order.
ENGINE_TIERS = ("batch", "fast", "reference")

_ENGINE_CHOICES = ("fast", "fast-nobatch", "reference")

_PROFILE_DEFAULT = os.environ.get("REPRO_PROFILE", "") not in ("", "0")

_ENGINE_DEFAULT = os.environ.get("REPRO_ENGINE", "") or "fast"


def set_engine_default(engine: str) -> None:
    """Set the process-wide default for ``Simulator(engine=None)``.

    The harness CLI's ``--engine`` flag calls this before running
    experiments (same pattern as :func:`set_profile_default`); the
    ``REPRO_ENGINE`` environment variable seeds the initial value.
    """
    global _ENGINE_DEFAULT
    require_choice(engine, "engine", _ENGINE_CHOICES)
    _ENGINE_DEFAULT = engine


def engine_default() -> str:
    """Current process-wide engine default."""
    return _ENGINE_DEFAULT


def set_profile_default(enabled: bool) -> None:
    """Set the process-wide default for ``Simulator(profile=None)``.

    The harness CLI's ``--profile`` flag calls this before running
    experiments, so every simulator the experiment grids construct picks
    up per-phase timing without threading a flag through every spec
    (worker processes inherit the setting under the default ``fork``
    start method).
    """
    global _PROFILE_DEFAULT
    _PROFILE_DEFAULT = bool(enabled)


def profile_default() -> bool:
    """Current process-wide profiling default."""
    return _PROFILE_DEFAULT


class ScheduleLike(Protocol):
    """Duck type the engine requires of a dynamic-graph schedule."""

    @property
    def num_nodes(self) -> int:  # pragma: no cover - protocol
        """Number of nodes."""
        ...

    def neighbors(self, round_index: int) -> Sequence[Sequence[int]]:  # pragma: no cover
        """Adjacency (lists of node *indices*) of the 1-based round's graph."""
        ...


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :meth:`Simulator.run` call.

    Attributes
    ----------
    metrics:
        Frozen complexity accounting for the run.
    outputs:
        Final decision value per node id (missing nodes never decided).
    rounds:
        Rounds executed (equal to ``metrics.rounds``).
    stop_reason:
        One of ``"halted"``, ``"decided"``, ``"quiescent"``, ``"predicate"``,
        ``"max_rounds"``.
    """

    metrics: RunMetrics
    outputs: Dict[int, Any]
    rounds: int
    stop_reason: str

    def unanimous_output(self) -> Any:
        """Return the single common output, or raise if nodes disagree.

        Convenience for problems (Count, Max, Consensus) whose spec
        requires all nodes to output the same value.
        """
        values = set(self.outputs.values())
        if len(values) != 1:
            raise AssertionError(f"nodes disagree: {sorted(map(repr, values))[:10]}")
        return next(iter(values))


class Simulator:
    """Round engine binding a schedule to a set of protocol nodes.

    Parameters
    ----------
    schedule:
        The dynamic-graph schedule (see :mod:`repro.dynamics`).
    nodes:
        One :class:`Algorithm` per schedule index, in index order.  Node
        *ids* may be arbitrary distinct ints; node *indices* (their
        position in this list) are what the schedule's adjacency refers to.
    rng:
        Registry from which each node's private stream is drawn
        (component name ``"node"``).  A fresh seed-0 registry by default.
    bandwidth_bits:
        If given, the CONGEST-style per-message bit budget.  Violations
        raise :class:`~repro.errors.BandwidthExceededError` when
        ``strict_bandwidth`` is true, otherwise they are tallied in the
        ``bandwidth_overflows`` counter.
    id_bits:
        Width charged for :class:`~repro.simnet.message.NodeId` values.
    trace:
        Optional :class:`TraceRecorder`.
    loss_rate:
        EXTENSION beyond the paper's model (used by experiment X2): each
        *directed delivery* is independently dropped with this
        probability (seeded from *rng*, component ``"loss"``).  Note
        that message loss silently weakens the adversary's promise — the
        effective per-round graph is a random subgraph — so halting
        known-bound algorithms lose their correctness guarantee, while
        the stabilizing core remains eventually correct as long as
        information keeps flowing.
    engine:
        ``"fast"``, ``"fast-nobatch"``, or ``"reference"``; see the
        module docstring.  All produce identical results —
        ``"reference"`` exists as the executable specification and for
        debugging, ``"fast-nobatch"`` is the fast path with batch-kernel
        dispatch disabled.  ``None`` (default) resolves to
        :func:`engine_default`.
    batch_kernels:
        Whether :meth:`run` may dispatch to an algorithm's batch kernel
        (see :mod:`repro.simnet.batch`).  ``None`` (default) resolves to
        on; ``engine="fast-nobatch"`` forces it off.
    profile:
        Collect per-phase wall-clock totals (see the module docstring).
        ``None`` (default) resolves to :func:`profile_default`.
    recorder:
        Optional :class:`repro.obs.Recorder` receiving the structured
        event stream (see the module docstring).  ``None`` (default)
        records nothing and costs nothing.
    """

    def __init__(
        self,
        schedule: ScheduleLike,
        nodes: Sequence[Algorithm],
        rng: Optional[RngRegistry] = None,
        bandwidth_bits: Optional[int] = None,
        strict_bandwidth: bool = False,
        id_bits: int = 32,
        trace: Optional[TraceRecorder] = None,
        loss_rate: float = 0.0,
        engine: Optional[str] = None,
        profile: Optional[bool] = None,
        batch_kernels: Optional[bool] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if len(nodes) != schedule.num_nodes:
            raise ConfigurationError(
                f"schedule has {schedule.num_nodes} nodes but {len(nodes)} "
                f"Algorithm instances were supplied"
            )
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("node ids must be distinct")
        if bandwidth_bits is not None:
            require_positive_int(bandwidth_bits, "bandwidth_bits")
        if engine is None:
            engine = _ENGINE_DEFAULT
        require_choice(engine, "engine", _ENGINE_CHOICES)
        if engine == "fast-nobatch":
            engine = "fast"
            batch_kernels = False
        if batch_kernels is None:
            batch_kernels = True
        self.schedule = schedule
        self.nodes: List[Algorithm] = list(nodes)
        self.rng = rng if rng is not None else RngRegistry(0)
        self.bandwidth_bits = bandwidth_bits
        self.strict_bandwidth = bool(strict_bandwidth)
        self.id_bits = require_positive_int(id_bits, "id_bits")
        self.trace = trace
        if not (0.0 <= float(loss_rate) < 1.0):
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {loss_rate}")
        self.loss_rate = float(loss_rate)
        self._loss_rng = self.rng.for_component("loss") if loss_rate else None
        self.metrics = MetricsCollector()
        self.round_index = 0
        self._node_rngs = [
            self.rng.for_node("node", node.node_id) for node in self.nodes
        ]
        self._quiescent_streak = 0
        n = len(self.nodes)
        # Payload objects repeat across rounds once protocols converge
        # (see AggregateNode's encode cache); memoize their bit cost by
        # identity, keeping a strong ref so the id stays valid.  Bounded
        # by evicting the oldest quarter, so converged-payload entries
        # survive cache pressure.
        self._bits_cache: Dict[int, Tuple[Any, int]] = {}
        self._bits_cache_cap = max(64, 4 * n)
        # The fast path needs the schedule's CSR adjacency; minimal
        # ScheduleLike implementations fall back to the reference loops.
        self._engine_demotion: Optional[str] = None
        if engine == "fast" and getattr(schedule, "adjacency", None) is None:
            engine = "reference"
            self._engine_demotion = ("schedule exposes no CSR adjacency; "
                                     "using the reference loops")
        self.engine = engine
        if profile is None:
            profile = _PROFILE_DEFAULT
        self.profile = bool(profile)
        self._phase_seconds: Optional[Dict[str, float]] = (
            {name: 0.0 for name in PHASES} if self.profile else None)
        # Fast-path state: one reusable context per node, the ascending
        # active (non-halted) index list maintained incrementally, the
        # halted mask consumed by the vectorised live-degree computation,
        # and reusable payload/sendable scratch.
        self._contexts = [
            RoundContext(0, self._node_rngs[i], self.metrics.incr)
            for i in range(n)
        ]
        self._active: List[int] = list(range(n))
        self._halted_mask = np.zeros(n, dtype=bool)
        self._any_halted = False
        self._payloads: List[Any] = [None] * n
        self._sendable: List[bool] = [False] * n
        # Adaptive schedules inspect node state; give them the node list.
        bind = getattr(schedule, "bind", None)
        if bind is not None:
            bind(self.nodes)
        # Batch-kernel dispatch: statically eligible only when nothing can
        # observe per-node phase internals the kernels do not reproduce —
        # trace events, per-delivery loss draws (the shared loss stream is
        # consumed in inbox order), mid-phase strict-bandwidth raises, and
        # adaptive schedules that read node state between phases.  The
        # remaining (per-run) conditions are checked in
        # _maybe_activate_batch when run() starts.  Each failed condition
        # contributes a reason string, surfaced through EngineTierEvents
        # when a recorder is attached.
        self.batch_kernels = bool(batch_kernels)
        static_reasons = []
        if self.engine != "fast":
            static_reasons.append(f"engine={self.engine!r}")
        if not self.batch_kernels:
            static_reasons.append("batch kernels disabled")
        if trace is not None:
            static_reasons.append("trace recorder attached")
        if self.loss_rate != 0.0:
            static_reasons.append("loss_rate > 0")
        if self.strict_bandwidth and bandwidth_bits is not None:
            static_reasons.append("strict bandwidth budget")
        if bind is not None:
            static_reasons.append("adaptive schedule binds node state")
        self._batch_enabled = not static_reasons
        self._batch_reason: Optional[str] = (
            "; ".join(static_reasons) if static_reasons else None)
        self._batch_live = False
        self._batch_kernel: Optional[Any] = None
        self._batch_ctx: Optional[BatchContext] = None
        self._batch_pending: Optional[List[Tuple[int, List[tuple]]]] = None
        #: Rounds executed per dispatch tier (surfaced via
        #: RunMetrics.engine_stats when profiling).
        self._tier_rounds: Dict[str, int] = {tier: 0 for tier in ENGINE_TIERS}
        # Observability (see the module docstring): everything below is
        # allocated only when a recorder is attached, so the unrecorded
        # hot path pays one `is None` check per round and nothing else.
        self.recorder = recorder
        self._bits_stats: Optional[Dict[str, int]] = None
        self._adj_stats_base: Optional[Dict[str, int]] = None
        self._rec_halted: Optional[set] = None
        self._rec_nodes_by_id: Optional[Dict[int, Algorithm]] = None
        if recorder is not None:
            self._rec_nodes_by_id = {node.node_id: node for node in self.nodes}
            self._rec_halted = {
                node.node_id for node in self.nodes if node._halted}
            adj_stats = getattr(schedule, "adjacency_stats", None)
            if adj_stats is not None:
                self._adj_stats_base = dict(adj_stats)
            # Count payload-bits cache hits/misses by shadowing the bound
            # method with a tallying wrapper (instance attribute wins), so
            # the uncounted method body stays on the unrecorded hot path.
            self._bits_stats = {"hits": 0, "misses": 0}
            inner = self._payload_bits
            bits_cache = self._bits_cache
            bits_stats = self._bits_stats

            def _counted_payload_bits(payload: Any) -> int:
                entry = bits_cache.get(id(payload))
                if entry is not None and entry[0] is payload:
                    bits_stats["hits"] += 1
                else:
                    bits_stats["misses"] += 1
                return inner(payload)

            self._payload_bits = _counted_payload_bits  # type: ignore[method-assign]

    # -- payload costing -----------------------------------------------------

    def _payload_bits(self, payload: Any) -> int:
        """Bit cost of *payload*, memoized by object identity.

        On overflow the **oldest quarter** of entries is evicted (dict
        insertion order) rather than dropping the whole cache, so the
        long-lived converged payloads that motivate the memoization keep
        their entries under pressure from transient ones.
        """
        cache = self._bits_cache
        entry = cache.get(id(payload))
        if entry is not None and entry[0] is payload:
            return entry[1]
        bits = bit_size(payload, self.id_bits)
        if len(cache) >= self._bits_cache_cap:
            for key in list(islice(iter(cache), self._bits_cache_cap // 4)):
                del cache[key]
        cache[id(payload)] = (payload, bits)
        return bits

    # -- single round --------------------------------------------------------

    def step(self) -> None:
        """Execute exactly one round."""
        if self.recorder is None:
            self._step_inner()
        else:
            self._step_recorded(self.recorder)

    def _step_inner(self) -> None:
        """One round via whichever dispatch tier is live."""
        if self._batch_live:
            self._tier_rounds["batch"] += 1
            self._step_batch()
        elif self.engine == "fast":
            self._tier_rounds["fast"] += 1
            self._step_fast()
        else:
            self._tier_rounds["reference"] += 1
            self._step_reference()

    def _step_recorded(self, rec: Recorder) -> None:
        """One round with the observability stream attached.

        Emits per-round :class:`~repro.obs.events.RoundEvent` /
        :class:`~repro.obs.events.DeliveryEvent` totals (deltas of the
        metric sums, so the events hold regardless of dispatch tier),
        per-node :class:`~repro.obs.events.DecisionEvent` lifecycle
        changes (diffed from the decision/halt state, which is how one
        implementation covers all three tiers), and a mid-run
        :class:`~repro.obs.events.EngineTierEvent` when the batch kernel
        falls back to the per-node path.
        """
        metrics = self.metrics
        prev_broadcasts = metrics.broadcasts
        prev_bbits = metrics.broadcast_bits
        prev_msgs = metrics.delivered_messages
        prev_dbits = metrics.delivered_bits
        prev_decisions = dict(metrics._decision_rounds)
        was_batch = self._batch_live
        tier = ("batch" if was_batch
                else "fast" if self.engine == "fast" else "reference")

        self._step_inner()

        r = self.round_index
        rec.emit(obs_events.RoundEvent(
            round=r, tier=tier,
            broadcasts=metrics.broadcasts - prev_broadcasts,
            broadcast_bits=metrics.broadcast_bits - prev_bbits,
            max_broadcast_bits=metrics.max_broadcast_bits))
        rec.emit(obs_events.DeliveryEvent(
            round=r,
            messages=metrics.delivered_messages - prev_msgs,
            bits=metrics.delivered_bits - prev_dbits))
        now = metrics._decision_rounds
        if now != prev_decisions:
            by_id = self._rec_nodes_by_id
            for node_id, decided_round in now.items():
                if prev_decisions.get(node_id) != decided_round:
                    node = by_id[node_id]
                    rec.emit(obs_events.DecisionEvent(
                        round=r, node_id=node_id, action="decide",
                        value=node.output if node.decided else None))
            for node_id in prev_decisions:
                if node_id not in now:
                    rec.emit(obs_events.DecisionEvent(
                        round=r, node_id=node_id, action="retract"))
        halted_seen = self._rec_halted
        for node in self.nodes:
            if node._halted and node.node_id not in halted_seen:
                halted_seen.add(node.node_id)
                rec.emit(obs_events.DecisionEvent(
                    round=r, node_id=node.node_id, action="halt"))
        if was_batch and not self._batch_live:
            rec.emit(obs_events.EngineTierEvent(
                round=r, tier="fast", action="fallback",
                reason="halt event deactivated the batch kernel"))

    def _step_reference(self) -> None:
        """One round via the straightforward per-node loops (the spec)."""
        self.round_index += 1
        r = self.round_index
        nodes = self.nodes
        n = len(nodes)
        trace = self.trace
        prof = self._phase_seconds
        if trace is not None:
            trace.record(TraceEvent(r, "round", None))

        # Phase 1: compose (graph not yet revealed to nodes).
        t0 = perf_counter() if prof is not None else 0.0
        payloads: List[Any] = [None] * n
        for i in range(n):
            node = nodes[i]
            if node.halted:
                continue
            ctx = RoundContext(r, self._node_rngs[i], self.metrics.incr)
            payloads[i] = node.compose(ctx)

        # Phase 2: reveal the round's graph and account for transmissions.
        if prof is not None:
            t1 = perf_counter()
            prof["compose"] += t1 - t0
            t0 = t1
        neighbors = self.schedule.neighbors(r)
        halted = [node.halted for node in nodes]
        for i in range(n):
            payload = payloads[i]
            if payload is None:
                continue
            bits = self._payload_bits(payload)
            if self.bandwidth_bits is not None and bits > self.bandwidth_bits:
                if self.strict_bandwidth:
                    raise BandwidthExceededError(
                        f"node {nodes[i].node_id} composed a {bits}-bit "
                        f"message; budget is {self.bandwidth_bits} bits",
                        node_id=nodes[i].node_id, bits=bits,
                        limit=self.bandwidth_bits,
                    )
                self.metrics.incr("bandwidth_overflows")
            live_degree = sum(1 for j in neighbors[i] if not halted[j])
            self.metrics.on_broadcast(bits, live_degree)
            if trace is not None:
                trace.record(TraceEvent(r, "broadcast", nodes[i].node_id, payload))

        # Phase 3: deliver inboxes.
        if prof is not None:
            t1 = perf_counter()
            prof["reveal"] += t1 - t0
            t0 = t1
        all_changed_false = True
        loss_rng = self._loss_rng
        loss_rate = self.loss_rate
        for j in range(n):
            node = nodes[j]
            if node.halted:
                continue
            inbox = [
                payloads[i] for i in neighbors[j]
                if payloads[i] is not None and not halted[i]
            ]
            if loss_rng is not None and inbox:
                kept = loss_rng.random(len(inbox)) >= loss_rate
                dropped = len(inbox) - int(kept.sum())
                if dropped:
                    self.metrics.incr("messages_lost", dropped)
                    inbox = [m for m, keep in zip(inbox, kept) if keep]
            ctx = RoundContext(r, self._node_rngs[j], self.metrics.incr)
            node.deliver(ctx, inbox)
            if node.state_changed:
                all_changed_false = False
            # Phase 4: drain decision events.
            for event in node._drain_events():
                kind = event[0]
                if kind == "decide":
                    self.metrics.on_decision(node.node_id, r)
                    if trace is not None:
                        trace.record(TraceEvent(r, "decide", node.node_id, event[1]))
                elif kind == "retract":
                    self.metrics.on_retraction(node.node_id)
                    if trace is not None:
                        trace.record(TraceEvent(r, "retract", node.node_id))
                elif kind == "halt":
                    if trace is not None:
                        trace.record(TraceEvent(r, "halt", node.node_id))
        if prof is not None:
            t1 = perf_counter()
            prof["deliver"] += t1 - t0  # drain interleaved with delivery

        self._quiescent_streak = (
            self._quiescent_streak + 1 if all_changed_false else 0
        )
        self.metrics.on_round_executed()

    def _step_fast(self) -> None:
        """One round via the vectorized fast path.

        Equivalent to :meth:`_step_reference` observable-for-observable:
        same metrics, same trace event stream, same RNG consumption, same
        node callback order.  The differences are purely mechanical —
        iteration over the active set instead of ``range(n)``, one
        reusable context per node, CSR adjacency shared across stable
        T-interval windows, and live degrees computed vectorised.
        """
        self.round_index += 1
        r = self.round_index
        nodes = self.nodes
        trace = self.trace
        prof = self._phase_seconds
        metrics = self.metrics
        if trace is not None:
            trace.record(TraceEvent(r, "round", None))

        active = self._active
        payloads = self._payloads
        contexts = self._contexts
        halted_mask = self._halted_mask

        # Phase 1: compose (graph not yet revealed to nodes).
        t0 = perf_counter() if prof is not None else 0.0
        senders: List[int] = []
        halted_in_compose = False
        for i in active:
            node = nodes[i]
            ctx = contexts[i]
            ctx.round_index = r
            payload = node.compose(ctx)
            payloads[i] = payload
            if payload is not None:
                senders.append(i)
            if node._halted:
                halted_mask[i] = True
                halted_in_compose = True
        if halted_in_compose:
            self._any_halted = True

        # Phase 2: reveal the round's graph and account for transmissions.
        if prof is not None:
            t1 = perf_counter()
            prof["compose"] += t1 - t0
            t0 = t1
        csr = self.schedule.adjacency(r)
        if (prof is None and trace is None and self.recorder is None
                and not (self.strict_bandwidth
                         and self.bandwidth_bits is not None)):
            # Steady-state fused loop: phases 2-4 in one pass (see
            # _finish_round_fused for why the results are identical).
            # A recorder routes through the split phases like profiling
            # does, so its payload-bits cache tally sees every lookup.
            self._finish_round_fused(r, csr, senders, halted_in_compose)
            return
        if not self._any_halted:
            live: List[int] = csr.degree_list()
        else:
            # live[i] = #non-halted neighbours of i, via a prefix sum over
            # the CSR (reduceat mis-handles empty neighbour runs).
            alive = ~halted_mask
            cum = np.zeros(len(csr.indices) + 1, dtype=np.int64)
            np.cumsum(alive[csr.indices], out=cum[1:])
            live = (cum[csr.indptr[1:]] - cum[csr.indptr[:-1]]).tolist()
        bandwidth_bits = self.bandwidth_bits
        on_broadcast = metrics.on_broadcast
        for i in senders:
            payload = payloads[i]
            bits = self._payload_bits(payload)
            if bandwidth_bits is not None and bits > bandwidth_bits:
                if self.strict_bandwidth:
                    raise BandwidthExceededError(
                        f"node {nodes[i].node_id} composed a {bits}-bit "
                        f"message; budget is {bandwidth_bits} bits",
                        node_id=nodes[i].node_id, bits=bits,
                        limit=bandwidth_bits,
                    )
                metrics.incr("bandwidth_overflows")
            on_broadcast(bits, live[i])
            if trace is not None:
                trace.record(TraceEvent(r, "broadcast", nodes[i].node_id, payload))

        # Phase 3: deliver inboxes.
        if prof is not None:
            t1 = perf_counter()
            prof["reveal"] += t1 - t0
            t0 = t1
        sendable = self._sendable
        for i in senders:
            if not halted_mask[i]:
                sendable[i] = True
        # When every node is live and broadcast, skip the per-neighbour
        # sendability filter entirely (the common steady state).
        all_send = not self._any_halted and len(senders) == len(active)
        nlists = csr.neighbor_lists()
        loss_rng = self._loss_rng
        loss_rate = self.loss_rate
        all_changed_false = True
        delivered: List[int] = []
        for j in active:
            if halted_mask[j]:
                continue  # halted during this round's compose
            nbrs = nlists[j]
            if all_send:
                inbox = [payloads[k] for k in nbrs]
            else:
                inbox = [payloads[k] for k in nbrs if sendable[k]]
            if loss_rng is not None and inbox:
                kept = loss_rng.random(len(inbox)) >= loss_rate
                dropped = len(inbox) - int(kept.sum())
                if dropped:
                    metrics.incr("messages_lost", dropped)
                    inbox = [m for m, keep in zip(inbox, kept) if keep]
            node = nodes[j]
            node.deliver(contexts[j], inbox)
            if node._state_changed:
                all_changed_false = False
            delivered.append(j)
        for i in senders:
            sendable[i] = False

        # Phase 4: drain decision events.  Deliveries record no trace
        # events themselves, so draining after the delivery loop yields
        # the same event stream as the reference's interleaved drain.
        if prof is not None:
            t1 = perf_counter()
            prof["deliver"] += t1 - t0
            t0 = t1
        on_decision = metrics.on_decision
        halted_in_deliver = False
        for j in delivered:
            node = nodes[j]
            events = node._events
            if not events:
                continue
            node._events = []
            node_id = node.node_id
            for event in events:
                kind = event[0]
                if kind == "decide":
                    on_decision(node_id, r)
                    if trace is not None:
                        trace.record(TraceEvent(r, "decide", node_id, event[1]))
                elif kind == "retract":
                    metrics.on_retraction(node_id)
                    if trace is not None:
                        trace.record(TraceEvent(r, "retract", node_id))
                elif kind == "halt":
                    halted_mask[j] = True
                    halted_in_deliver = True
                    if trace is not None:
                        trace.record(TraceEvent(r, "halt", node_id))
        if prof is not None:
            prof["drain"] += perf_counter() - t0

        if halted_in_compose or halted_in_deliver:
            self._any_halted = True
            self._active = [i for i in active if not halted_mask[i]]

        self._quiescent_streak = (
            self._quiescent_streak + 1 if all_changed_false else 0
        )
        metrics.on_round_executed()

    def _finish_round_fused(self, r: int, csr: Any, senders: List[int],
                            halted_in_compose: bool) -> None:
        """Phases 2-4 of :meth:`_step_fast` fused into one active-set pass.

        Valid only without tracing, profiling, or strict bandwidth: the
        per-(node, round) metric updates are commutative sums, the loss
        RNG is drawn only in the delivery phase (so interleaving the
        accounting does not perturb the stream), and per-node drain order
        is preserved — hence the final :class:`RunMetrics` are identical
        to the split-phase loops, which remain in use whenever phase
        boundaries are observable (trace events, per-phase timings, or a
        mid-phase :class:`BandwidthExceededError`).
        """
        nodes = self.nodes
        metrics = self.metrics
        payloads = self._payloads
        contexts = self._contexts
        halted_mask = self._halted_mask
        active = self._active
        if not self._any_halted:
            live: List[int] = csr.degree_list()
        else:
            alive = ~halted_mask
            cum = np.zeros(len(csr.indices) + 1, dtype=np.int64)
            np.cumsum(alive[csr.indices], out=cum[1:])
            live = (cum[csr.indptr[1:]] - cum[csr.indptr[:-1]]).tolist()
        sendable = self._sendable
        all_send = not self._any_halted and len(senders) == len(active)
        if all_send:
            # Every neighbour's payload is delivered: gather the flat
            # CSR-ordered payload list in one C-level pass, then each
            # node's inbox is a plain slice of it.
            flat_inbox = list(map(payloads.__getitem__, csr.indices_list()))
            bounds = csr.indptr_list()
            nlists = None
        else:
            for i in senders:
                if not halted_mask[i]:
                    sendable[i] = True
            flat_inbox = bounds = None
            nlists = csr.neighbor_lists()
        loss_rng = self._loss_rng
        loss_rate = self.loss_rate
        bandwidth_bits = self.bandwidth_bits
        # When on_broadcast has not been overridden on the instance, the
        # per-sender sums are accumulated in locals and flushed once per
        # round — same totals, ~N fewer calls per round.
        aggregate = "on_broadcast" not in metrics.__dict__
        on_broadcast = metrics.on_broadcast
        on_decision = metrics.on_decision
        bits_cache = self._bits_cache
        n_bcast = sum_bits = n_msgs = sum_dbits = max_bits = 0
        prev_payload = prev_bits = None
        all_changed_false = True
        halted_in_deliver = False
        for j in active:
            payload = payloads[j]
            if payload is not None:
                # Converged protocols broadcast one shared object from
                # every node; the single-entry memo short-circuits the
                # per-sender cache lookup in that steady state.
                if payload is prev_payload:
                    bits = prev_bits
                else:
                    entry = bits_cache.get(id(payload))
                    if entry is not None and entry[0] is payload:
                        bits = entry[1]
                    else:
                        bits = self._payload_bits(payload)
                    prev_payload, prev_bits = payload, bits
                if bandwidth_bits is not None and bits > bandwidth_bits:
                    metrics.incr("bandwidth_overflows")
                if aggregate:
                    degree = live[j]
                    n_bcast += 1
                    n_msgs += degree
                    sum_bits += bits
                    sum_dbits += bits * degree
                    if bits > max_bits:
                        max_bits = bits
                else:
                    on_broadcast(bits, live[j])
            if halted_in_compose and halted_mask[j]:
                continue  # halted during this round's compose
            if all_send:
                inbox = flat_inbox[bounds[j]:bounds[j + 1]]
            else:
                inbox = [payloads[k] for k in nlists[j] if sendable[k]]
            if loss_rng is not None and inbox:
                kept = loss_rng.random(len(inbox)) >= loss_rate
                dropped = len(inbox) - int(kept.sum())
                if dropped:
                    metrics.incr("messages_lost", dropped)
                    inbox = [m for m, keep in zip(inbox, kept) if keep]
            node = nodes[j]
            node.deliver(contexts[j], inbox)
            if node._state_changed:
                all_changed_false = False
            events = node._events
            if events:
                node._events = []
                node_id = node.node_id
                for event in events:
                    kind = event[0]
                    if kind == "decide":
                        on_decision(node_id, r)
                    elif kind == "retract":
                        metrics.on_retraction(node_id)
                    else:  # halt
                        halted_mask[j] = True
                        halted_in_deliver = True
        if not all_send:
            for i in senders:
                sendable[i] = False
        if aggregate and n_bcast:
            metrics.broadcasts += n_bcast
            metrics.delivered_messages += n_msgs
            metrics.broadcast_bits += sum_bits
            metrics.delivered_bits += sum_dbits
            if max_bits > metrics.max_broadcast_bits:
                metrics.max_broadcast_bits = max_bits

        if halted_in_compose or halted_in_deliver:
            self._any_halted = True
            self._active = [i for i in active if not halted_mask[i]]

        self._quiescent_streak = (
            self._quiescent_streak + 1 if all_changed_false else 0
        )
        metrics.on_round_executed()

    # -- batch-kernel tier ----------------------------------------------------

    def _maybe_activate_batch(self, stop_when: Optional[Callable]) -> None:
        """Enter batch mode for this run() if the population is eligible.

        On top of the static ``_batch_enabled`` conditions: no user
        predicate may inspect node state mid-run, ``on_broadcast`` must
        not be overridden on the collector instance (the batch step
        accumulates broadcast sums directly), and no node may have halted
        (the kernels assume the all-alive steady state — the first halt
        event deactivates back to the per-node path).  Pending decision
        events (e.g. a ``FloodToken`` seed deciding in ``__init__``) are
        captured here and replayed into metrics in the first batch step,
        exactly when the per-node drain would surface them.
        """
        if not self._batch_enabled:
            return
        if stop_when is not None:
            self._batch_reason = "stop_when predicate inspects run state"
            return
        if self._any_halted:
            self._batch_reason = "population already contains halted nodes"
            return
        if "on_broadcast" in self.metrics.__dict__:
            self._batch_reason = "custom on_broadcast metrics override"
            return
        kernel = build_batch_kernel(self.nodes, self.id_bits)
        if kernel is None:
            self._batch_reason = describe_batch_ineligibility(self.nodes)
            return
        self._batch_reason = None
        pending: List[Tuple[int, List[tuple]]] = []
        for i, node in enumerate(self.nodes):
            if node._events:
                pending.append((i, node._events))
                node._events = []
        self._batch_kernel = kernel
        self._batch_pending = pending
        self._batch_ctx = BatchContext(
            self.round_index, self._node_rngs, self.metrics.incr)
        self._batch_live = True

    def _deactivate_batch(self) -> None:
        """Leave batch mode, restoring full per-node state (idempotent)."""
        if not self._batch_live:
            return
        self._batch_live = False
        kernel = self._batch_kernel
        self._batch_kernel = None
        self._batch_ctx = None
        pending = self._batch_pending
        self._batch_pending = None
        if pending:
            # Never replayed (zero batch rounds ran): hand the events
            # back to the per-node drain.
            for i, events in pending:
                node = self.nodes[i]
                node._events = events + node._events
        kernel.finalize(self.nodes)

    def _step_batch(self) -> None:
        """One round via the population's batch kernel.

        Equivalent to :meth:`_step_fast` observable-for-observable for
        eligible runs: identical metrics (broadcast sums are commutative
        and per-round; decision/counter dicts are order-insensitive),
        identical per-node RNG consumption (kernels draw from each
        node's private stream in ascending node order, and streams are
        independent across nodes), and no trace/loss/strict-bandwidth
        observables by eligibility.
        """
        self.round_index += 1
        r = self.round_index
        kernel = self._batch_kernel
        ctx = self._batch_ctx
        ctx.round_index = r
        metrics = self.metrics
        prof = self._phase_seconds

        # Phase 1: compose.
        t0 = perf_counter() if prof is not None else 0.0
        mask, bits = kernel.compose(ctx)

        # Phase 2: reveal + transmission accounting (vectorised).
        if prof is not None:
            t1 = perf_counter()
            prof["compose"] += t1 - t0
            t0 = t1
        csr = self.schedule.adjacency(r)
        degrees = csr.degrees()
        if mask is None:
            n_bcast = len(self.nodes)
            sender_bits = bits
            sender_degrees = degrees
        else:
            n_bcast = int(mask.sum())
            sender_bits = bits[mask]
            sender_degrees = degrees[mask]
        if n_bcast:
            metrics.broadcasts += n_bcast
            metrics.delivered_messages += int(sender_degrees.sum())
            metrics.broadcast_bits += int(sender_bits.sum())
            metrics.delivered_bits += int(sender_bits @ sender_degrees)
            max_bits = int(sender_bits.max())
            if max_bits > metrics.max_broadcast_bits:
                metrics.max_broadcast_bits = max_bits
            bandwidth_bits = self.bandwidth_bits
            if bandwidth_bits is not None:
                over = int((sender_bits > bandwidth_bits).sum())
                if over:
                    metrics.incr("bandwidth_overflows", over)

        # Phase 3: deliver (one segment-reduce over the CSR).
        if prof is not None:
            t1 = perf_counter()
            prof["reveal"] += t1 - t0
            t0 = t1
        changed_any, events = kernel.deliver(ctx, csr, mask)

        # Phase 4: drain — replay captured pre-run events, then reconcile
        # this round's decide/retract/halt events onto the node objects.
        if prof is not None:
            t1 = perf_counter()
            prof["deliver"] += t1 - t0
            t0 = t1
        nodes = self.nodes
        pending = self._batch_pending
        if pending:
            self._batch_pending = None
            for i, node_events in pending:
                node_id = nodes[i].node_id
                for event in node_events:
                    kind = event[0]
                    if kind == "decide":
                        metrics.on_decision(node_id, r)
                    elif kind == "retract":
                        metrics.on_retraction(node_id)
        halted_any = False
        halted_mask = self._halted_mask
        for kind, i, value in events:
            node = nodes[i]
            if kind == "decide":
                node._decided = True
                node._output = value
                metrics.on_decision(node.node_id, r)
            elif kind == "retract":
                node._decided = False
                node._output = None
                metrics.on_retraction(node.node_id)
            else:  # halt
                node._halted = True
                halted_mask[i] = True
                halted_any = True
        if prof is not None:
            prof["drain"] += perf_counter() - t0

        if halted_any:
            self._any_halted = True
            self._active = [
                i for i in self._active if not halted_mask[i]]
            # The kernels assume every node is alive; fall back to the
            # per-node fast path for whatever rounds remain.
            self._deactivate_batch()

        self._quiescent_streak = (
            0 if changed_any else self._quiescent_streak + 1)
        metrics.on_round_executed()

    # -- stop-condition helpers ----------------------------------------------

    def _all_halted(self) -> bool:
        if self.engine == "fast":
            return not self._active
        return all(node.halted for node in self.nodes)

    def _all_decided_or_halted(self) -> bool:
        if self._batch_live:
            return bool(self._batch_kernel.decided.all())
        if self.engine == "fast":
            nodes = self.nodes
            return all(nodes[i]._decided for i in self._active)
        return all(node.decided or node.halted for node in self.nodes)

    # -- full run --------------------------------------------------------------

    def run(
        self,
        max_rounds: int,
        until: str = "halted",
        quiescence_window: int = 1,
        stop_when: Optional[Callable[["Simulator"], bool]] = None,
        allow_timeout: bool = False,
    ) -> RunResult:
        """Execute rounds until a stop condition fires.

        See the module docstring for the semantics of each *until* value.
        """
        require_positive_int(max_rounds, "max_rounds")
        require_choice(until, "until", ("halted", "decided", "quiescent"))
        require_positive_int(quiescence_window, "quiescence_window")

        stop_reason = "max_rounds"
        self._maybe_activate_batch(stop_when)
        rec = self.recorder
        if rec is not None:
            if self._batch_live:
                tier, reason = "batch", "population batch kernel engaged"
            else:
                tier = "fast" if self.engine == "fast" else "reference"
                parts = [p for p in (self._engine_demotion,
                                     self._batch_reason) if p]
                reason = "; ".join(parts)
            rec.emit(obs_events.EngineTierEvent(
                round=self.round_index, tier=tier, action="select",
                reason=reason))
        try:
            while self.round_index < max_rounds:
                self.step()
                if stop_when is not None and stop_when(self):
                    stop_reason = "predicate"
                    break
                if until == "halted":
                    if self._all_halted():
                        stop_reason = "halted"
                        break
                elif until == "decided":
                    if self._all_decided_or_halted():
                        stop_reason = "decided"
                        break
                else:  # quiescent
                    if (self._quiescent_streak >= quiescence_window
                            and self._all_decided_or_halted()):
                        stop_reason = "quiescent"
                        break
        finally:
            # Whatever happens, node objects must reflect the kernel's
            # state before anyone (including the error path below, or a
            # later run() call) inspects them.
            self._deactivate_batch()

        if rec is not None:
            adj_stats = getattr(self.schedule, "adjacency_stats", None)
            if adj_stats is not None:
                base = self._adj_stats_base or {}
                delta = {key: adj_stats[key] - base.get(key, 0)
                         for key in adj_stats}
                rec.emit(obs_events.CacheEvent(
                    round=self.round_index, cache="adjacency",
                    hits=delta.get("span_hits", 0)
                    + delta.get("fingerprint_hits", 0),
                    misses=delta.get("builds", 0),
                    detail=(f"span_hits={delta.get('span_hits', 0)} "
                            f"fingerprint_hits="
                            f"{delta.get('fingerprint_hits', 0)} "
                            f"evictions={delta.get('evictions', 0)}")))
            bits_stats = self._bits_stats
            if bits_stats is not None:
                rec.emit(obs_events.CacheEvent(
                    round=self.round_index, cache="payload_bits",
                    hits=bits_stats["hits"], misses=bits_stats["misses"],
                    detail=f"entries={len(self._bits_cache)}"))
            tiers = self._tier_rounds
            rec.emit(obs_events.SummaryEvent(
                rounds=self.round_index, stop_reason=stop_reason,
                broadcast_bits=self.metrics.broadcast_bits,
                delivered_messages=self.metrics.delivered_messages,
                batch_rounds=tiers["batch"], fast_rounds=tiers["fast"],
                reference_rounds=tiers["reference"]))

        if stop_reason == "max_rounds" and not allow_timeout:
            undecided = tuple(
                node.node_id for node in self.nodes
                if not (node.decided or node.halted)
            )
            raise NotTerminatedError(
                f"round budget of {max_rounds} exhausted under "
                f"until={until!r} ({len(undecided)} nodes undecided)",
                rounds_executed=self.round_index, undecided=undecided,
            )

        outputs = {
            node.node_id: node.output for node in self.nodes if node.decided
        }
        phase_seconds = (
            dict(self._phase_seconds) if self._phase_seconds is not None
            else None)
        engine_stats = dict(self._tier_rounds) if self.profile else None
        return RunResult(
            metrics=self.metrics.snapshot(phase_seconds=phase_seconds,
                                          engine_stats=engine_stats),
            outputs=outputs,
            rounds=self.round_index,
            stop_reason=stop_reason,
        )
