"""Shared argument-validation helpers.

Small, dependency-free checks used across the package so that invalid
parameters fail fast with uniform, greppable error messages.  Every helper
returns the validated (possibly normalised) value so call sites can write
``self.n = require_positive_int(n, "n")``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

from .errors import ConfigurationError

T = TypeVar("T")


def require_positive_int(value: int, name: str) -> int:
    """Validate that *value* is an ``int`` >= 1 and return it."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def require_nonnegative_int(value: int, name: str) -> int:
    """Validate that *value* is an ``int`` >= 0 and return it."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def require_int_in_range(value: int, name: str, lo: int, hi: int) -> int:
    """Validate that *value* is an ``int`` in ``[lo, hi]`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if not (lo <= value <= hi):
        raise ConfigurationError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def require_probability(value: float, name: str) -> float:
    """Validate that *value* is a float in ``[0, 1]`` and return it."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a float in [0, 1]") from None
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def require_positive_float(value: float, name: str) -> float:
    """Validate that *value* is a finite float > 0 and return it."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a positive float") from None
    if not (value > 0.0) or value != value or value in (float("inf"),):
        raise ConfigurationError(f"{name} must be a finite float > 0, got {value}")
    return value


def require_choice(value: T, name: str, choices: Sequence[T]) -> T:
    """Validate that *value* is one of *choices* and return it."""
    if value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {list(choices)!r}, got {value!r}"
        )
    return value


def require_node_ids(ids: Iterable[int], name: str = "node ids") -> tuple[int, ...]:
    """Validate a collection of distinct, non-negative node ids.

    Returns the ids as a sorted tuple.
    """
    out = tuple(sorted(ids))
    if not out:
        raise ConfigurationError(f"{name} must be non-empty")
    seen: set[int] = set()
    for i in out:
        if isinstance(i, bool) or not isinstance(i, int):
            raise ConfigurationError(f"{name} must be ints, got {type(i).__name__}")
        if i < 0:
            raise ConfigurationError(f"{name} must be >= 0, got {i}")
        if i in seen:
            raise ConfigurationError(f"{name} contains duplicate id {i}")
        seen.add(i)
    return out
