"""Consensus in ``O(d)`` rounds — no ``Ω(N)`` term (RECONSTRUCTION).

Consensus reduces to an idempotent aggregate by electing the
minimum-id proposer: the aggregate is the **min over ``(id, proposal)``
pairs** (lexicographic), whose global value is the smallest node id
together with its input.  Every node decides that proposal:

* *validity* — the decision is the input of the minimum-id node;
* *agreement* — all final decisions equal the same global aggregate
  (termination/stabilization exactly as in
  :mod:`repro.core.termination`);
* *complexity* — ``O(d)`` rounds, ``O(log N + |value|)``-bit messages.

:class:`SublinearConsensus` is the zero-knowledge stabilizing variant;
:class:`ConsensusKnownBound` halts under a known bound ``D >= d``.
The known-``N`` baseline with the same message pattern is
:class:`repro.baselines.consensus.FloodConsensus` (``Θ(N)`` rounds).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..simnet.message import NodeId
from .aggregation import Aggregate, AggregateNode, KnownBoundAggregateNode

__all__ = ["SublinearConsensus", "ConsensusKnownBound", "MinPairAggregate"]


class MinPairAggregate(Aggregate):
    """Lexicographic minimum over ``(id, proposal)`` pairs.

    Ids are unique in any valid run, but the merge is still made total
    (ties broken on the proposal's ``repr``, which is deterministic even
    for proposals of incomparable types) so the aggregate laws hold
    unconditionally — the property tests exercise duplicate-id states.

    Encodes the id as :class:`~repro.simnet.message.NodeId` so bandwidth
    accounting charges the model's ``Θ(log N)`` id width.
    """

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        if a[0] != b[0]:
            return a if a[0] < b[0] else b
        return a if repr(a[1]) <= repr(b[1]) else b

    def encode(self, state) -> Any:
        return (NodeId(state[0]), state[1])

    def decode(self, payload):
        return (int(payload[0]), payload[1])


class SublinearConsensus(AggregateNode):
    """Stabilizing consensus with no knowledge of ``N`` or ``d``.

    Parameters
    ----------
    node_id:
        Node id (doubles as the election key).
    proposal:
        The node's input value.
    """

    name = "sublinear_consensus"

    def __init__(self, node_id: int, proposal: Any, initial_window: int = 1,
                 window_growth: int = 2) -> None:
        super().__init__(node_id, MinPairAggregate(),
                         initial_window=initial_window,
                         window_growth=window_growth)
        self.proposal = proposal

    def make_contribution(self, rng: np.random.Generator):
        return (self.node_id, self.proposal)

    def extract_output(self, state):
        return state[1]


class ConsensusKnownBound(KnownBoundAggregateNode):
    """Halting consensus under a known dynamic-diameter bound ``D >= d``."""

    name = "consensus_known_bound"

    def __init__(self, node_id: int, proposal: Any,
                 rounds_bound: int) -> None:
        super().__init__(node_id, MinPairAggregate(), rounds_bound)
        self.proposal = proposal

    def make_contribution(self, rng: np.random.Generator):
        return (self.node_id, self.proposal)

    def extract_output(self, state):
        return state[1]
