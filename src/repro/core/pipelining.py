"""Bandwidth-limited sketch aggregation — pipelining the min-vector.

:class:`~repro.core.approx_count.ApproxCount` broadcasts its full
``k``-coordinate sketch every round, which honours the spirit of "small
messages" only when ``k`` fits the channel.  This module aggregates the
same sketch under a hard **words-per-message budget** ``w < k``, the
regime where T-interval stability starts to matter (a coordinate's
min-flood can only progress in rounds when that coordinate is on the
wire).  Two scheduling strategies, compared in ablation T3:

* ``"tdm"`` — time-division multiplexing: all nodes broadcast coordinate
  block ``(r mod ⌈k/w⌉)`` in round ``r``.  Deterministic and analysable:
  each coordinate progresses every ``⌈k/w⌉``-th round, so the global
  minima are reached within ``d · ⌈k/w⌉`` rounds — a clean upper bound,
  but it wastes slots once most coordinates have stabilised.
* ``"greedy"`` — half the budget goes to the coordinates the node
  updated most recently (fresh improvements chase each other down the
  network like a wavefront), the other half to a strict round-robin over
  all coordinates (guaranteeing every coordinate — including the node's
  *own* initial draws — is on the wire at least every
  ``⌈k/(w - ⌊w/2⌋)⌉`` rounds, which keeps the TDM-style correctness
  bound while usually finishing much earlier on stable backbones).

Termination uses the same quiescence controller, with the initial window
defaulting to one full TDM cycle (``⌈k/w⌉``) so that "quiet" means "every
coordinate had a chance to speak" rather than "the currently scheduled
block happened to be stale".
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

import numpy as np

from .._validate import require_choice, require_positive_int
from ..simnet.node import Algorithm, RoundContext
from .sketches import ExponentialCountSketch
from .termination import QuiescenceController

__all__ = ["PipelinedApproxCount"]


class PipelinedApproxCount(Algorithm):
    """``(1±ε)`` Count under a words-per-message budget (see module docs).

    Parameters
    ----------
    node_id:
        Node id.
    eps, delta / width:
        Accuracy target or explicit sketch width (as in
        :class:`~repro.core.approx_count.ApproxCount`).
    words_per_message:
        How many ``(coordinate, value)`` pairs fit in one broadcast.
    strategy:
        ``"tdm"`` or ``"greedy"``.
    """

    name = "pipelined_approx_count"

    def __init__(self, node_id: int, words_per_message: int,
                 eps: Optional[float] = None, delta: Optional[float] = None,
                 width: Optional[int] = None, strategy: str = "tdm",
                 initial_window: Optional[int] = None,
                 window_growth: int = 2) -> None:
        super().__init__(node_id)
        if width is None:
            if eps is None or delta is None:
                raise ValueError("pass either width or both eps and delta")
            self.sketch = ExponentialCountSketch.for_accuracy(eps, delta)
        else:
            self.sketch = ExponentialCountSketch(require_positive_int(width, "width"))
        self.w = require_positive_int(words_per_message, "words_per_message")
        self.strategy = require_choice(strategy, "strategy", ("tdm", "greedy"))
        if self.strategy == "greedy":
            self._recent_share = self.w // 2
            rr_share = self.w - self._recent_share
            self.cycle = math.ceil(self.sketch.width / rr_share)
        else:
            self.cycle = math.ceil(self.sketch.width / self.w)
        self.controller = QuiescenceController(
            initial_window=(initial_window if initial_window is not None
                            else self.cycle),
            growth=window_growth)
        self.state: Optional[np.ndarray] = None
        # last round each coordinate improved locally (greedy priority)
        self._last_update: Optional[np.ndarray] = None

    def compose(self, ctx: RoundContext) -> Any:
        if self.state is None:
            self.state = self.sketch.draw(ctx.rng)
            self._last_update = np.zeros(self.sketch.width, dtype=np.int64)
        k = self.sketch.width
        if self.strategy == "tdm":
            block = (ctx.round_index - 1) % self.cycle
            idx = np.arange(block * self.w, min((block + 1) * self.w, k))
        else:
            # Greedy: recency-priority half + guaranteed round-robin half.
            rr_share = self.w - self._recent_share
            block = (ctx.round_index - 1) % self.cycle
            rr_idx = np.arange(block * rr_share,
                               min((block + 1) * rr_share, k))
            if self._recent_share:
                order = np.argsort(-self._last_update, kind="stable")
                recent = [int(j) for j in order[: self.w]
                          if j not in set(rr_idx.tolist())][: self._recent_share]
            else:
                recent = []
            idx = np.concatenate([rr_idx, np.asarray(recent, dtype=np.int64)]) \
                if recent else rr_idx
        return tuple((int(j), float(self.state[j])) for j in idx)

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        changed = False
        state = self.state
        last = self._last_update
        for payload in inbox:
            for j, value in payload:
                if value < state[j]:
                    state[j] = value
                    last[j] = ctx.round_index
                    changed = True
        self.mark_changed(changed)
        verdict = self.controller.observe(changed)
        if verdict == "retract":
            ctx.incr(f"{self.name}.retractions")
            self.retract()
        elif verdict == "decide" and not self.decided:
            self.decide(self.sketch.estimate(state))
