"""PipelinedExactCount: exact counting under a hard ids-per-message budget.

Completes the bandwidth picture (F6): exact Count needs the id-set to
travel, and under a ``w``-ids-per-message budget that *is* token
dissemination — so the best possible behaviour is
``≈ d + N/w``-flavoured (pipelined), with ``Ω(N/w)`` unavoidable because
``N`` distinct ids must cross any single-edge cut.

Protocol: the union aggregate of :class:`~repro.core.exact_count.ExactCount`,
transmitted ``w`` ids at a time — half the budget goes to the ids most
recently *learned* (fresh information chases itself outward, wavefront
style, exactly as in :class:`~repro.core.pipelining.PipelinedApproxCount`),
half to a round-robin sweep over the node's whole set (guaranteeing every
id it holds is on the wire at least every ``⌈|ids|/⌈w/2⌉⌉`` rounds, which
keeps worst-case convergence bounded).  Termination: the same quiescence
controller; same stabilizing guarantees (final decisions exact and
unanimous).

Comparison points measured by the tests: messages are ``O(w log N)``
bits (vs ``Θ(N log N)`` for the unbounded variant), and rounds grow like
``N/w`` once ``w ≪ N`` (vs ``O(d)`` unbounded) — the price of exactness
in the CONGEST regime, which is exactly why the sketch-based approximate
counters exist.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .._validate import require_positive_int
from ..simnet.message import NodeId
from ..simnet.node import Algorithm, RoundContext
from .termination import QuiescenceController

__all__ = ["PipelinedExactCount"]


class PipelinedExactCount(Algorithm):
    """Stabilizing exact Count with ``w`` ids per message (see module docs).

    Parameters
    ----------
    node_id:
        Node id (its own first token).
    ids_per_message:
        The bandwidth budget ``w >= 1``.
    initial_window / window_growth:
        Quiescence-controller knobs.  The default initial window is 8:
        under a budget a node can see several quiet rounds while
        information is still in flight, but a premature decision is
        always retracted when the next id arrives (round-robin
        transmission guarantees every id keeps flowing), so the window
        only tunes decision churn, not correctness.
    """

    name = "pipelined_exact_count"

    def __init__(self, node_id: int, ids_per_message: int,
                 initial_window: Optional[int] = None,
                 window_growth: int = 2) -> None:
        super().__init__(node_id)
        self.w = require_positive_int(ids_per_message, "ids_per_message")
        self.controller = QuiescenceController(
            initial_window=(initial_window if initial_window is not None
                            else 8),
            growth=window_growth)
        self.ids: List[int] = [node_id]     # insertion order = learn order
        self._known = {node_id}
        self._rr_cursor = 0

    @property
    def progress(self) -> float:
        """Heard-set size (adaptive adversaries sort on this)."""
        return float(len(self._known))

    def compose(self, ctx: RoundContext) -> Any:
        recent_share = self.w // 2
        recent = self.ids[-recent_share:] if recent_share else []
        rr_share = self.w - len(recent)
        picked = list(recent)
        seen = set(recent)
        total = len(self.ids)
        for _ in range(min(rr_share, total)):
            candidate = self.ids[self._rr_cursor % total]
            self._rr_cursor += 1
            if candidate not in seen:
                picked.append(candidate)
                seen.add(candidate)
        return tuple(NodeId(x) for x in picked)

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        changed = False
        for payload in inbox:
            for raw in payload:
                token = int(raw)
                if token not in self._known:
                    self._known.add(token)
                    self.ids.append(token)
                    changed = True
        self.mark_changed(changed)
        verdict = self.controller.observe(changed)
        if verdict == "retract":
            ctx.incr(f"{self.name}.retractions")
            self.retract()
        elif verdict == "decide" and not self.decided:
            self.decide(len(self._known))
