"""The idempotent-aggregate engine.

A *commutative idempotent aggregate* (max, min, boolean OR, set union,
coordinate-wise minimum of a vector, …) has the property that repeated
merging of partial views never over-counts: ``merge(a, a) = a`` and order
does not matter.  In a dynamic network where every node broadcasts its
current partial aggregate every round and merges what it hears, node
``v``'s state after ``r`` rounds equals the merge of the contributions of
exactly the nodes whose information has *reached* ``v`` within ``r``
rounds — so **every node holds the exact global aggregate after precisely
``d`` rounds**, where ``d`` is the schedule's dynamic diameter
(:mod:`repro.dynamics.diameter` computes the same closure).  No ``Ω(N)``
term appears anywhere: the cost is communication only, ``d`` rounds of
state-sized messages.

What stops this from being a complete algorithm is *termination* — nodes
do not know ``d`` — which is exactly what
:class:`~repro.core.termination.QuiescenceController` adds.

:class:`AggregateNode` is the protocol node gluing an :class:`Aggregate`
to the controller; every problem front-end in :mod:`repro.core` is a thin
subclass of it.
"""

from __future__ import annotations

from typing import Any, Generic, List, Optional, TypeVar

import numpy as np

from ..simnet.node import Algorithm, RoundContext
from .termination import QuiescenceController

S = TypeVar("S")

__all__ = [
    "Aggregate",
    "MaxAggregate",
    "MinAggregate",
    "OrAggregate",
    "SetUnionAggregate",
    "MinVectorAggregate",
    "AggregateNode",
]


class Aggregate(Generic[S]):
    """A commutative idempotent merge with a message encoding.

    Subclasses provide :meth:`merge` plus (when the natural in-memory
    state is not directly serialisable/costable) :meth:`encode` /
    :meth:`decode`.  ``merge`` must satisfy, for all states ``a, b, c``:

    * ``merge(a, b) == merge(b, a)``      (commutativity)
    * ``merge(a, a) == a``                 (idempotence)
    * ``merge(a, merge(b, c)) == merge(merge(a, b), c)``  (associativity)

    The property-based tests in ``tests/test_aggregates_properties.py``
    check these laws on random states for every concrete aggregate.
    """

    def merge(self, a: S, b: S) -> S:
        """Merge two partial aggregate states."""
        raise NotImplementedError

    def encode(self, state: S) -> Any:
        """State → broadcast payload (default: the state itself)."""
        return state

    def decode(self, payload: Any) -> S:
        """Broadcast payload → state (default: identity)."""
        return payload

    def equals(self, a: S, b: S) -> bool:
        """State equality (override when ``==`` is wrong, e.g. arrays)."""
        return a == b


class MaxAggregate(Aggregate):
    """Maximum of totally ordered values (ints, floats, tuples)."""

    def merge(self, a, b):
        return a if b is None else (b if a is None else max(a, b))


class MinAggregate(Aggregate):
    """Minimum of totally ordered values."""

    def merge(self, a, b):
        return a if b is None else (b if a is None else min(a, b))


class OrAggregate(Aggregate):
    """Boolean OR (the dissent/any-exists aggregate)."""

    def merge(self, a, b):
        return bool(a) or bool(b)


class SetUnionAggregate(Aggregate):
    """Union of frozensets (exact information dissemination).

    The state grows up to the full id set; messages are whole sets, so
    this aggregate lives in the unbounded-bandwidth regime (like the KLO
    baseline it is benchmarked against).  ``encode`` sends a sorted tuple
    for stable costing.
    """

    def merge(self, a: frozenset, b: frozenset) -> frozenset:
        if a is None:
            return b
        if b is None:
            return a
        if b.issubset(a):
            return a  # preserve identity for cheap change detection
        return a | b

    def encode(self, state: frozenset) -> Any:
        return tuple(sorted(state))

    def decode(self, payload: Any) -> frozenset:
        return frozenset(payload)


class MinVectorAggregate(Aggregate):
    """Coordinate-wise minimum of fixed-width float vectors.

    The carrier of the count sketches: each node contributes its vector of
    exponential draws; the global coordinate-wise minimum determines the
    cardinality estimate.  States are ``numpy`` float64 arrays of a fixed
    width; encoding sends a tuple of floats (64 bits each under
    :func:`repro.simnet.message.bit_size`).
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width

    def merge(self, a: Optional[np.ndarray], b: Optional[np.ndarray]):
        if a is None:
            return b
        if b is None:
            return a
        if (b >= a).all():
            return a  # no improvement: keep identity (change detection)
        return np.minimum(a, b)

    def encode(self, state: np.ndarray) -> Any:
        return tuple(float(x) for x in state)

    def decode(self, payload: Any) -> np.ndarray:
        arr = np.asarray(payload, dtype=np.float64)
        if arr.shape != (self.width,):
            raise ValueError(
                f"expected a vector of width {self.width}, got {arr.shape}")
        return arr

    def equals(self, a, b) -> bool:
        if a is None or b is None:
            return a is b
        return bool((a == b).all())


class AggregateNode(Algorithm):
    """Protocol node: broadcast-and-merge an aggregate + quiescence control.

    Lifecycle per round: broadcast ``encode(state)``; merge all received
    payloads; report to the :class:`QuiescenceController` whether the
    state changed; adopt the controller's decide/retract verdicts, with
    the node's output computed by :meth:`extract_output`.

    The node's *contribution* (its own input in aggregate form) may need
    private randomness (sketch draws), so it is created lazily on the
    first ``compose`` via :meth:`make_contribution`, which receives the
    node's private generator.

    Parameters
    ----------
    node_id:
        Node id.
    aggregate:
        The aggregate to run.
    initial_window / window_growth:
        Quiescence-controller parameters (see
        :class:`~repro.core.termination.QuiescenceController`).
    """

    name = "aggregate"

    def __init__(self, node_id: int, aggregate: Aggregate,
                 initial_window: int = 1, window_growth: int = 2) -> None:
        super().__init__(node_id)
        self.aggregate = aggregate
        self.state: Any = None
        self._contributed = False
        self.controller = QuiescenceController(
            initial_window=initial_window, growth=window_growth)
        # encode() is re-run every round; merge() preserves object
        # identity on no-change, so caching by state identity removes the
        # dominant cost of long post-convergence phases (sorting/copying
        # large set states each round).
        self._encoded_state: Any = None
        self._encoded_payload: Any = None
        # Same story on the receive side: after convergence neighbours
        # re-send identical payload objects, so memoize decode by payload
        # identity (strong refs keep the ids valid).
        self._decode_cache: dict = {}

    # -- hooks for subclasses -------------------------------------------------

    @property
    def progress(self) -> float:
        """Scalar progress measure for adaptive adversaries to throttle.

        Defaults to 0; subclasses with a natural notion (e.g. heard-set
        size) override it so
        :class:`~repro.dynamics.adaptive.CutThrottleAdversary` can sort on
        it.
        """
        return 0.0

    def make_contribution(self, rng: np.random.Generator) -> Any:
        """The node's own input as an aggregate state."""
        raise NotImplementedError

    def extract_output(self, state: Any) -> Any:
        """Map the (believed-global) aggregate state to the problem output."""
        raise NotImplementedError

    # -- protocol ---------------------------------------------------------------

    def compose(self, ctx: RoundContext) -> Any:
        if not self._contributed:
            self.state = self.aggregate.merge(
                self.state, self.make_contribution(ctx.rng))
            self._contributed = True
        if self.state is None:
            return None
        if self.state is not self._encoded_state:
            self._encoded_state = self.state
            self._encoded_payload = self.aggregate.encode(self.state)
        return self._encoded_payload

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        old = self.state
        state = old
        cache = self._decode_cache
        for payload in inbox:
            entry = cache.get(id(payload))
            if entry is not None and entry[0] is payload:
                decoded = entry[1]
            else:
                decoded = self.aggregate.decode(payload)
                if len(cache) >= 64:
                    cache.clear()
                cache[id(payload)] = (payload, decoded)
            state = self.aggregate.merge(state, decoded)
        changed = not (
            state is old or self.aggregate.equals(state, old))
        if changed:
            self.state = state
        self.mark_changed(changed)
        verdict = self.controller.observe(changed)
        if verdict == "retract":
            ctx.incr(f"{self.name}.retractions")
            self.retract()
        elif verdict == "decide" and not self.decided:
            self.decide(self.extract_output(self.state))


class KnownBoundAggregateNode(AggregateNode):
    """Halting variant: decide after a known round bound ``rounds_bound``.

    Correct whenever ``rounds_bound >= d`` (the known-diameter-bound
    knowledge model): by flood closure the state is the global aggregate
    by round ``d``.  Unlike :class:`AggregateNode` this node truly
    **halts**, which is what a known upper bound buys (see the
    termination discussion in :mod:`repro.core.termination`).
    """

    name = "aggregate_known_bound"

    def __init__(self, node_id: int, aggregate: Aggregate,
                 rounds_bound: int) -> None:
        super().__init__(node_id, aggregate)
        if rounds_bound < 1:
            raise ValueError(f"rounds_bound must be >= 1, got {rounds_bound}")
        self.rounds_bound = int(rounds_bound)

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        old = self.state
        state = old
        for payload in inbox:
            state = self.aggregate.merge(state, self.aggregate.decode(payload))
        changed = not (state is old or self.aggregate.equals(state, old))
        if changed:
            self.state = state
        self.mark_changed(changed)
        if ctx.round_index >= self.rounds_bound:
            self.decide(self.extract_output(self.state))
            self.halt()
