"""HybridCount: halting, zero-knowledge, w.h.p.-exact Count in ``O(N)``.

RECONSTRUCTION-ADJACENT (labelled extension, DESIGN.md S8).  The
stabilizing core achieves ``O(d)`` but never halts; KLO halts with zero
knowledge but pays ``Θ(N²)``.  This algorithm sits between them and
shows what the sketch machinery buys for *halting*:

Protocol.  Every node aggregates, in one combined state, (a) the id-set
union and (b) an exponential-minima count sketch.  At round ``r`` a node
halts and outputs ``|ids|`` as soon as::

    r >= c · N̂(r)        (N̂ = the sketch estimate of its current state)

Why this halts correctly w.h.p. (proof sketch, tested empirically):

* *The rule cannot fire early.*  By the per-round connectivity cut
  argument, after ``r`` rounds a node has merged contributions from at
  least ``min(N, r+1)`` nodes; the sketch estimate of a ``m``-contribution
  state is ``≥ m(1-ε)`` w.h.p. (uniformly over the ``≤ cN`` relevant
  rounds, by a union bound over the exact Gamma tail).  So while the
  heard-set is still growing, ``N̂(r) ≥ (r+1)(1-ε)`` and the trigger
  ``r ≥ c·N̂(r)`` is impossible whenever ``c(1-ε) > 1``.
* *The rule fires by ``≈ c·N(1+ε)``.*  Once the heard-set is complete
  (round ``≤ N-1``), ``N̂`` freezes at a value ``≤ N(1+ε)`` w.h.p., and
  the trigger fires at ``r = ⌈c·N̂⌉ = O(N)``.
* *When it fires, the output is exact.*  Firing at ``r ≥ c·N̂ ≥
  c(1-ε)·N > N - 1 ≥ d`` means flood closure has completed, so the
  id-set is the full node set.

With the default ``c = 1.5`` and sketch width for ``ε = 0.2, δ = 1e-4``,
the failure probability is far below a percent per run.  Complexity:
``≈ 1.5·N`` rounds — linear, halting, no knowledge: a factor-``N``
improvement over the KLO baseline in the same (unbounded-bandwidth,
zero-knowledge, halting) regime, at the price of a w.h.p. (rather than
deterministic) guarantee.  Experiment X1 measures the resulting
"cost-of-halting" ladder: ``O(d)`` stabilizing < ``O(N)`` halting-whp <
``Θ(N²)`` halting-deterministic.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from .._validate import require_positive_float
from ..simnet.message import NodeId
from ..simnet.node import Algorithm, RoundContext
from .sketches import ExponentialCountSketch

__all__ = ["HybridCount"]


class HybridCount(Algorithm):
    """Halting w.h.p.-exact Count without knowledge (see module docstring).

    Parameters
    ----------
    node_id:
        Node id.
    safety_factor:
        The ``c`` in the halt rule ``r >= c·N̂``; must be > 1 (values
        close to 1 risk early halts when the sketch underestimates,
        values larger just wait longer).  Default 1.5.
    width:
        Sketch width; default 180 (``ε = 0.2`` at ``δ = 1e-4``).
    """

    name = "hybrid_count"

    def __init__(self, node_id: int, safety_factor: float = 1.5,
                 width: int = 180) -> None:
        super().__init__(node_id)
        self.safety_factor = require_positive_float(
            safety_factor, "safety_factor")
        if self.safety_factor <= 1.0:
            raise ValueError(
                f"safety_factor must be > 1, got {safety_factor}")
        self.sketch = ExponentialCountSketch(width)
        self.ids: frozenset = frozenset((node_id,))
        self.minima: Optional[np.ndarray] = None
        self._encoded: Optional[Tuple[Any, Any]] = None

    def _payload(self) -> Any:
        key = (self.ids, id(self.minima))
        if self._encoded is None or self._encoded[0] != key:
            payload = (tuple(NodeId(x) for x in sorted(self.ids)),
                       tuple(float(v) for v in self.minima))
            self._encoded = (key, payload)
        return self._encoded[1]

    def compose(self, ctx: RoundContext) -> Any:
        if self.minima is None:
            self.minima = self.sketch.draw(ctx.rng)
        return self._payload()

    def deliver(self, ctx: RoundContext, inbox: List[Any]) -> None:
        changed = False
        ids = self.ids
        minima = self.minima
        for their_ids, their_minima in inbox:
            incoming = frozenset(int(x) for x in their_ids)
            if not incoming.issubset(ids):
                ids = ids | incoming
                changed = True
            arr = np.asarray(their_minima, dtype=np.float64)
            if (arr < minima).any():
                minima = np.minimum(minima, arr)
                changed = True
        if changed:
            self.ids = ids
            self.minima = minima
        self.mark_changed(changed)

        estimate = self.sketch.estimate(self.minima)
        if ctx.round_index >= self.safety_factor * estimate:
            self.decide(len(self.ids))
            self.halt()
