"""Exact Count in ``O(d)`` rounds — no ``Ω(N)`` term (RECONSTRUCTION).

The exact count is extracted from the **id-set union aggregate**: every
node contributes ``{own id}``; the global aggregate is the full id set,
whose size is ``N``.  Union of sets is idempotent, so the whole framework
of :mod:`repro.core.aggregation` + :mod:`repro.core.termination` applies:

* :class:`ExactCount` — stabilizing, zero-knowledge, final (correct,
  unanimous) decisions by ``O(d)`` rounds;
* :class:`ExactCountKnownBound` — halting after a known bound ``D >= d``.

Bandwidth regime.  Messages carry id sets (up to ``N·Θ(log N)`` bits) —
the **same unbounded-bandwidth regime as the KLO baseline**
(:class:`repro.baselines.klo.KCommitteeCount`), whose grant/request floods
also ship ``Θ(N)``-entry sets.  The apples-to-apples comparison of
experiment T1 is therefore: identical message regime, ``Θ(N²)`` rounds
(KLO, any topology) vs ``O(d)`` rounds (this algorithm) — the abstract's
"no ``Ω(N)`` term under constant T" claim in its purest form.  For the
bandwidth-frugal regime see :mod:`repro.core.approx_count`, and F6
quantifies the bit costs of all of them.
"""

from __future__ import annotations

import numpy as np

from ..simnet.batch import IdSetBatchKernel, aggregate_batch_kernel
from ..simnet.message import NodeId
from .aggregation import (
    AggregateNode,
    KnownBoundAggregateNode,
    SetUnionAggregate,
)

__all__ = ["ExactCount", "ExactCountKnownBound", "IdSetAggregate"]


class IdSetAggregate(SetUnionAggregate):
    """Set union whose encoding tags members as node ids for bit costing."""

    def encode(self, state: frozenset):
        return tuple(NodeId(x) for x in sorted(state))


class ExactCount(AggregateNode):
    """Stabilizing exact Count with no knowledge of ``N`` or ``d``.

    Output: the exact integer ``N`` (the size of the believed-global id
    set).  Final decisions are exact and unanimous; stabilization within
    ``O(d)`` rounds (see :mod:`repro.core.termination`).
    """

    name = "exact_count"

    def __init__(self, node_id: int, initial_window: int = 1,
                 window_growth: int = 2) -> None:
        super().__init__(node_id, IdSetAggregate(),
                         initial_window=initial_window,
                         window_growth=window_growth)

    @property
    def progress(self) -> float:
        """Heard-set size (what adaptive throttling adversaries sort on)."""
        return float(len(self.state) if self.state is not None else 0)

    def make_contribution(self, rng: np.random.Generator) -> frozenset:
        return frozenset((self.node_id,))

    def extract_output(self, state: frozenset) -> int:
        return len(state)

    @classmethod
    def __batch_kernel__(cls, nodes, id_bits: int = 32):
        """Bitset-union batch kernel (see :mod:`repro.simnet.batch`)."""
        if cls is not ExactCount:
            return None
        return aggregate_batch_kernel(
            lambda algs, controller, bound: IdSetBatchKernel.build(
                algs, controller, bound, id_bits),
            nodes, known_bound=False)


class ExactCountKnownBound(KnownBoundAggregateNode):
    """Halting exact Count under a known dynamic-diameter bound ``D >= d``."""

    name = "exact_count_known_bound"

    def __init__(self, node_id: int, rounds_bound: int) -> None:
        super().__init__(node_id, IdSetAggregate(), rounds_bound)

    def make_contribution(self, rng: np.random.Generator) -> frozenset:
        return frozenset((self.node_id,))

    def extract_output(self, state: frozenset) -> int:
        return len(state)

    @classmethod
    def __batch_kernel__(cls, nodes, id_bits: int = 32):
        """Bitset-union batch kernel (see :mod:`repro.simnet.batch`)."""
        if cls is not ExactCountKnownBound:
            return None
        return aggregate_batch_kernel(
            lambda algs, controller, bound: IdSetBatchKernel.build(
                algs, controller, bound, id_bits),
            nodes, known_bound=True)
