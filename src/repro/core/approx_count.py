"""Approximate Count in ``O(d)`` rounds with small messages (RECONSTRUCTION).

:class:`ApproxCount` runs the exponential-minima sketch of
:mod:`repro.core.sketches` through the min-vector aggregate: each node
privately draws ``k = Θ(ε⁻² log δ⁻¹)`` exponentials, the network computes
the coordinate-wise global minimum in ``O(d)`` rounds, and every node
outputs the inverse-Gamma estimate — within ``(1 ± ε)`` of the true ``N``
with probability ``≥ 1 - δ`` (*exact* failure probability computable, see
:func:`repro.core.sketches.failure_probability`).

Why this matters next to :class:`~repro.core.exact_count.ExactCount`:
messages here are ``O(ε⁻² log δ⁻¹)`` 64-bit words — **independent of N**
— versus the ``Θ(N log N)``-bit id sets of the exact variants and of the
KLO baseline.  Experiment F6 measures that bit-complexity separation,
F4 the accuracy/coverage.

Determinism note: each node's draws come from its private simulator
stream (:class:`~repro.simnet.rng.RngRegistry`), so whole experiments are
seed-reproducible, and the estimate is **unanimous** across nodes — all
decide from the same global minima vector.

Both knowledge variants exist, as for the other problems:
:class:`ApproxCount` (stabilizing, zero-knowledge) and
:class:`ApproxCountKnownBound` (halting, known ``D >= d``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validate import require_positive_int
from ..simnet.batch import MinVectorBatchKernel, aggregate_batch_kernel
from .aggregation import (
    AggregateNode,
    KnownBoundAggregateNode,
    MinVectorAggregate,
)
from .sketches import ExponentialCountSketch, GeometricCountSketch

__all__ = ["ApproxCount", "ApproxCountKnownBound"]


def _make_sketch(width: Optional[int], eps: Optional[float],
                 delta: Optional[float], family: str):
    """Resolve the sketch from either an explicit width or an (ε, δ) target."""
    if width is None:
        if eps is None or delta is None:
            raise ValueError("pass either width or both eps and delta")
        if family == "geometric":
            # Geometric coordinates are far noisier; give the ablation a
            # comparable coordinate budget to the exponential target.
            width = ExponentialCountSketch.for_accuracy(eps, delta).width
        else:
            return ExponentialCountSketch.for_accuracy(eps, delta)
    require_positive_int(width, "width")
    if family == "geometric":
        return GeometricCountSketch(width)
    if family == "exponential":
        return ExponentialCountSketch(width)
    raise ValueError(f"unknown sketch family {family!r}")


class ApproxCount(AggregateNode):
    """Stabilizing ``(1±ε)`` Count with no knowledge of ``N`` or ``d``.

    Parameters
    ----------
    node_id:
        Node id.
    eps, delta:
        Accuracy target: relative error ``<= eps`` with probability
        ``>= 1 - delta``; sets the sketch width via the exact tail bound.
    width:
        Alternatively fix the sketch width directly (ablations).
    family:
        ``"exponential"`` (default) or ``"geometric"`` (T3 ablation).
    """

    name = "approx_count"

    def __init__(self, node_id: int, eps: Optional[float] = None,
                 delta: Optional[float] = None,
                 width: Optional[int] = None,
                 family: str = "exponential",
                 initial_window: int = 1, window_growth: int = 2) -> None:
        sketch = _make_sketch(width, eps, delta, family)
        super().__init__(node_id, MinVectorAggregate(sketch.width),
                         initial_window=initial_window,
                         window_growth=window_growth)
        self.sketch = sketch

    def make_contribution(self, rng: np.random.Generator) -> np.ndarray:
        return self.sketch.draw(rng)

    def extract_output(self, state: np.ndarray) -> float:
        return self.sketch.estimate(state)

    @classmethod
    def __batch_kernel__(cls, nodes, id_bits: int = 32):
        """Min-vector batch kernel (see :mod:`repro.simnet.batch`)."""
        if cls is not ApproxCount:
            return None
        return aggregate_batch_kernel(MinVectorBatchKernel.build, nodes,
                                      known_bound=False)


class ApproxCountKnownBound(KnownBoundAggregateNode):
    """Halting ``(1±ε)`` Count under a known bound ``D >= d``."""

    name = "approx_count_known_bound"

    def __init__(self, node_id: int, rounds_bound: int,
                 eps: Optional[float] = None, delta: Optional[float] = None,
                 width: Optional[int] = None,
                 family: str = "exponential") -> None:
        sketch = _make_sketch(width, eps, delta, family)
        super().__init__(node_id, MinVectorAggregate(sketch.width),
                         rounds_bound)
        self.sketch = sketch

    def make_contribution(self, rng: np.random.Generator) -> np.ndarray:
        return self.sketch.draw(rng)

    def extract_output(self, state: np.ndarray) -> float:
        return self.sketch.estimate(state)

    @classmethod
    def __batch_kernel__(cls, nodes, id_bits: int = 32):
        """Min-vector batch kernel (see :mod:`repro.simnet.batch`)."""
        if cls is not ApproxCountKnownBound:
            return None
        return aggregate_batch_kernel(MinVectorBatchKernel.build, nodes,
                                      known_bound=True)
