"""Extensions: Sum / Mean / Top-k / leader election in ``O(d)`` rounds.

The abstract names Count/Consensus/Max as *"some fundamental distributed
computing problems such as …"* — this module carries the framework to the
natural next problems, the way the literature's follow-ups do:

* **Approximate Sum** (:class:`ApproxSum`): the exponential-minima trick
  generalises to weighted minima — node ``i`` with weight ``w_i ≥ 0``
  draws ``X_ij ~ Exp(w_i)`` (i.e. ``Exp(1)/w_i``), so the global
  coordinate-wise minimum is ``Exp(Σ w)`` and the same inverse-Gamma
  estimator returns ``Σ w`` with the **identical** exact
  ``(1±ε, δ)`` Gamma-tail guarantee as Count (Count is the all-weights-1
  special case).  Zero-weight nodes contribute ``+inf`` draws, i.e.
  nothing, as they should.
* **Approximate Mean** (:class:`ApproxMean`): runs the Sum sketch and the
  Count sketch side by side in one vector and outputs their ratio —
  average load / temperature / battery, the classic sensor aggregate.
* **Top-k** (:class:`TopK`): "the k largest inputs (with their owners)"
  is itself an idempotent aggregate — merge = take the k largest of the
  union — so it inherits the whole stabilizing ``O(d)`` machinery.
  ``k = 1`` degenerates to Max with a witness.
* **Leader election** (:class:`LeaderElect`): consensus on the
  minimum-id node; every node outputs the leader's id and learns whether
  it is the leader.

All four use the same quiescence controller and therefore the same
``O(d)`` stabilization bound, with no knowledge of ``N`` or ``d``.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .._validate import require_positive_int
from ..simnet.message import NodeId
from .aggregation import Aggregate, AggregateNode, MinVectorAggregate
from .sketches import ExponentialCountSketch

__all__ = ["ApproxSum", "ApproxMean", "TopK", "TopKAggregate", "LeaderElect"]


def _weighted_draws(width: int, weight: float,
                    rng: np.random.Generator) -> np.ndarray:
    """``width`` i.i.d. ``Exp(weight)`` draws (``+inf`` for weight 0)."""
    if weight < 0:
        raise ValueError(f"weights must be >= 0, got {weight}")
    if weight == 0.0:
        return np.full(width, np.inf)
    return rng.exponential(1.0, size=width) / weight


class ApproxSum(AggregateNode):
    """Stabilizing ``(1±ε)`` Sum of non-negative node weights.

    Parameters
    ----------
    node_id:
        Node id.
    weight:
        The node's non-negative input value.
    eps, delta / width:
        Accuracy target (exact Gamma tail, as for Count) or explicit
        sketch width.

    Output: the estimated ``Σ_i weight_i`` (float), unanimous across
    nodes.  Requires at least one strictly positive weight somewhere in
    the network (an all-zero sum has an infinite-minima sketch, which is
    reported as the estimate 0.0).
    """

    name = "approx_sum"

    def __init__(self, node_id: int, weight: float,
                 eps: Optional[float] = None, delta: Optional[float] = None,
                 width: Optional[int] = None,
                 initial_window: int = 1, window_growth: int = 2) -> None:
        if width is None:
            if eps is None or delta is None:
                raise ValueError("pass either width or both eps and delta")
            self.sketch = ExponentialCountSketch.for_accuracy(eps, delta)
        else:
            self.sketch = ExponentialCountSketch(
                require_positive_int(width, "width"))
        super().__init__(node_id, MinVectorAggregate(self.sketch.width),
                         initial_window=initial_window,
                         window_growth=window_growth)
        self.weight = float(weight)
        if self.weight < 0:
            raise ValueError(f"weights must be >= 0, got {weight}")

    def make_contribution(self, rng: np.random.Generator) -> np.ndarray:
        return _weighted_draws(self.sketch.width, self.weight, rng)

    def extract_output(self, state: np.ndarray) -> float:
        if not np.isfinite(state).all():
            return 0.0  # nobody with positive weight heard from yet
        return self.sketch.estimate(state)


class ApproxMean(AggregateNode):
    """Stabilizing ``(1±O(ε))`` Mean of node values.

    Runs a Sum sketch (rate = value) and a Count sketch (rate = 1) in a
    single concatenated min-vector; the output is their ratio.  Both
    halves satisfy the ``(1±ε, δ)`` guarantee, so the ratio is within
    ``(1±ε)²`` of the true mean with probability ``≥ 1 - 2δ``.
    """

    name = "approx_mean"

    def __init__(self, node_id: int, value: float,
                 eps: Optional[float] = None, delta: Optional[float] = None,
                 width: Optional[int] = None,
                 initial_window: int = 1, window_growth: int = 2) -> None:
        if width is None:
            if eps is None or delta is None:
                raise ValueError("pass either width or both eps and delta")
            self.sketch = ExponentialCountSketch.for_accuracy(eps, delta)
        else:
            self.sketch = ExponentialCountSketch(
                require_positive_int(width, "width"))
        super().__init__(node_id, MinVectorAggregate(2 * self.sketch.width),
                         initial_window=initial_window,
                         window_growth=window_growth)
        self.value = float(value)
        if self.value < 0:
            raise ValueError(
                f"ApproxMean supports non-negative values, got {value}")

    def make_contribution(self, rng: np.random.Generator) -> np.ndarray:
        k = self.sketch.width
        sum_half = _weighted_draws(k, self.value, rng)
        count_half = rng.exponential(1.0, size=k)
        return np.concatenate([sum_half, count_half])

    def extract_output(self, state: np.ndarray) -> float:
        k = self.sketch.width
        count_est = self.sketch.estimate(state[k:])
        if not np.isfinite(state[:k]).all():
            return 0.0  # all-zero values
        sum_est = self.sketch.estimate(state[:k])
        return sum_est / count_est


class TopKAggregate(Aggregate):
    """The k largest ``(value, owner_id)`` pairs of the union.

    Idempotent/commutative/associative because "k largest of a union"
    only depends on the union as a set; owner ids break value ties, so
    states are canonical sorted tuples.
    """

    def __init__(self, k: int) -> None:
        self.k = require_positive_int(k, "k")

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        merged = sorted(set(a) | set(b), reverse=True)[: self.k]
        return tuple(merged)

    def encode(self, state) -> Any:
        return tuple((value, NodeId(owner)) for value, owner in state)

    def decode(self, payload):
        return tuple((value, int(owner)) for value, owner in payload)


class TopK(AggregateNode):
    """Stabilizing Top-k: every node learns the k largest inputs + owners.

    Output: a tuple of up to ``k`` ``(value, owner_id)`` pairs in
    descending order (fewer than ``k`` when ``N < k``).  ``k = 1``
    recovers Max with a witness.  Messages carry at most ``k`` pairs.
    """

    name = "top_k"

    def __init__(self, node_id: int, value, k: int,
                 initial_window: int = 1, window_growth: int = 2) -> None:
        super().__init__(node_id, TopKAggregate(k),
                         initial_window=initial_window,
                         window_growth=window_growth)
        self.value = value
        self.k = k

    def make_contribution(self, rng: np.random.Generator):
        return ((self.value, self.node_id),)

    def extract_output(self, state):
        return tuple(state)


class _MinIdAggregate(Aggregate):
    """Minimum node id (the election key)."""

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a if a <= b else b

    def encode(self, state) -> Any:
        return NodeId(state)

    def decode(self, payload):
        return int(payload)


class LeaderElect(AggregateNode):
    """Stabilizing leader election: all nodes output the minimum id.

    After stabilization every node agrees on the leader; a node can check
    ``node.is_leader`` to learn whether it won.  ``O(d)`` rounds,
    ``Θ(log N)``-bit messages, zero knowledge.
    """

    name = "leader_elect"

    def __init__(self, node_id: int, initial_window: int = 1,
                 window_growth: int = 2) -> None:
        super().__init__(node_id, _MinIdAggregate(),
                         initial_window=initial_window,
                         window_growth=window_growth)

    @property
    def is_leader(self) -> bool:
        """Whether this node currently believes it is the leader."""
        return self.decided and self.output == self.node_id

    def make_contribution(self, rng: np.random.Generator) -> int:
        return self.node_id

    def extract_output(self, state: int) -> int:
        return state
