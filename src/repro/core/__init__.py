"""S5 — the paper's (reconstructed) sublinear algorithms for constant T.

RECONSTRUCTION NOTICE (see DESIGN.md §0/§2).  The full text of
HJSWY SPAA 2022 was unavailable; this package implements algorithms with
the complexity *shape* the abstract claims — Count / Consensus / Max in
T-interval dynamic networks whose round complexity contains **no Ω(N)
term** under constant ``T``, being instead ``O(d)``/``Õ(d)`` in the
dynamic diameter ``d`` — built from three pillars:

* :mod:`~repro.core.aggregation` — repeated local broadcast of
  commutative-idempotent aggregates (max / min / set-union / min-vector),
  which converges to the global aggregate within exactly ``d`` rounds;
* :mod:`~repro.core.termination` — the **quiescence controller**: a
  guess-and-verify doubling rule that turns convergence into *stabilizing
  decisions* with deterministic ``O(d)`` stabilization and all final
  decisions correct, with zero knowledge of ``N`` or ``d``
  (the soundness lemma is proved in the module docstring);
* :mod:`~repro.core.sketches` — exponential-minima cardinality sketches
  making Count bandwidth-frugal (``Θ(ε⁻² log δ⁻¹)`` words instead of
  ``Θ(N)`` ids).

Problem front-ends:

* :class:`~repro.core.max_compute.SublinearMax` — Max in ``O(d)``;
* :class:`~repro.core.consensus.SublinearConsensus` — Consensus in ``O(d)``;
* :class:`~repro.core.exact_count.ExactCount` — exact Count in ``O(d)``
  (set-union messages, the same unbounded-bandwidth regime as the KLO
  baseline it is compared against);
* :class:`~repro.core.approx_count.ApproxCount` — ``(1±ε)`` Count w.h.p.
  in ``O(d)`` rounds with ``O(ε⁻² log δ⁻¹)``-word messages;
* ``*KnownBound`` halting variants for the known-diameter-bound model.
"""

from .aggregation import (
    Aggregate,
    MaxAggregate,
    MinAggregate,
    OrAggregate,
    SetUnionAggregate,
    MinVectorAggregate,
    AggregateNode,
    KnownBoundAggregateNode,
)
from .termination import QuiescenceController
from .sketches import (
    ExponentialCountSketch,
    GeometricCountSketch,
    required_width,
    estimate_from_minima,
)
from .max_compute import SublinearMax, MaxKnownBound
from .consensus import SublinearConsensus, ConsensusKnownBound
from .exact_count import ExactCount, ExactCountKnownBound
from .approx_count import ApproxCount, ApproxCountKnownBound
from .pipelining import PipelinedApproxCount
from .generalized import ApproxSum, ApproxMean, TopK, LeaderElect
from .hybrid_count import HybridCount
from .pipelined_exact import PipelinedExactCount

__all__ = [
    "Aggregate",
    "MaxAggregate",
    "MinAggregate",
    "OrAggregate",
    "SetUnionAggregate",
    "MinVectorAggregate",
    "AggregateNode",
    "KnownBoundAggregateNode",
    "QuiescenceController",
    "ExponentialCountSketch",
    "GeometricCountSketch",
    "required_width",
    "estimate_from_minima",
    "SublinearMax",
    "MaxKnownBound",
    "SublinearConsensus",
    "ConsensusKnownBound",
    "ExactCount",
    "ExactCountKnownBound",
    "ApproxCount",
    "ApproxCountKnownBound",
    "PipelinedApproxCount",
    "ApproxSum",
    "ApproxMean",
    "TopK",
    "LeaderElect",
    "HybridCount",
    "PipelinedExactCount",
]
