"""The quiescence controller — guess-and-verify termination without
knowledge of ``N`` or ``d``.

RECONSTRUCTION (see DESIGN.md §2/S5).  The controller turns the
``d``-round convergence of an idempotent aggregate
(:mod:`repro.core.aggregation`) into decisions, with **no** knowledge
assumptions, at the price of decisions being *stabilizing* (tentative,
retractable, eventually fixed) rather than irrevocable.

Rule
----
Each node keeps a *window guess* ``w`` (initially ``initial_window``).
After every round it observes whether its aggregate state changed:

* unchanged for ``w`` consecutive rounds → **decide** (tentatively) on the
  current state;
* state changes while a decision is held → **retract**, multiply the
  window by ``growth``, and start over.

Guarantees (proved here once; exercised by the tests)
-----------------------------------------------------
Let ``d`` be the schedule's dynamic diameter and suppose every node
broadcasts its aggregate state every round from round 1 (which
:class:`~repro.core.aggregation.AggregateNode` does, forever — deciding
does not stop participation).

1. **Convergence.**  By flood closure, after ``d`` rounds every node's
   state equals the global aggregate, and no state ever changes again.

2. **Final-decision correctness.**  A node whose state is not yet global
   is missing some contribution, which reaches it by round ``d``; the
   resulting state change retracts any premature decision.  Hence every
   decision still held after round ``d`` — in particular every *final*
   decision — is the exact global aggregate.  All nodes therefore also
   **agree**.

3. **Stabilization time ``O(d)``.**  A node retracts only when its state
   changes, which can happen only in rounds ``≤ d``.  Each retraction at
   a node is preceded by a full quiet window of its current guess, so if
   a node retracts with guesses ``w₀ < w₀g < w₀g² < … < w_final``, the
   windows preceding its retractions sum to less than ``d``; with
   ``growth ≥ 2`` this forces ``w_final < growth · d`` (and at most
   ``log_g d`` retractions).  The node's last state change is at some
   round ``≤ d``, after which it decides within ``w_final`` rounds —
   final decision by round ``d + growth·d + O(1) = O(d)``.

What is *not* guaranteed — and why that is the honest trade-off — is
**irrevocable termination**: a node can never rule out that unheard-of
information is still in flight, so with zero knowledge it can never halt
(this is the classical counting/termination barrier; the original paper's
unavailable machinery presumably addresses exactly this point, and the
``*KnownBound`` halting variants bracket it from the other side).
Experiments measure the round of the **last final decision**, checking
post-hoc that no retraction follows it.
"""

from __future__ import annotations

from .._validate import require_int_in_range, require_positive_int

__all__ = ["QuiescenceController"]


class QuiescenceController:
    """Per-node decide/retract state machine (see module docstring).

    Parameters
    ----------
    initial_window:
        First quiet-window guess ``w₀`` (rounds); default 1.
    growth:
        Multiplicative window growth on each retraction; default 2.
        (T3 ablates 2 vs 4: larger growth means fewer retractions but a
        longer final wait.)

    Usage: call :meth:`observe` once per round with "did my aggregate
    state change this round?"; it returns ``"decide"``, ``"retract"``, or
    ``None``.
    """

    def __init__(self, initial_window: int = 1, growth: int = 2) -> None:
        self.initial_window = require_positive_int(initial_window,
                                                   "initial_window")
        self.growth = require_int_in_range(growth, "growth", 2, 64)
        self.window = self.initial_window
        self.quiet_streak = 0
        self.holding = False  # currently holding a (tentative) decision
        self.retraction_count = 0

    def observe(self, changed: bool) -> "str | None":
        """Advance one round; return the verdict for this round.

        ``"retract"`` — the caller must retract its held decision (the
        controller has already grown the window);
        ``"decide"`` — the quiet window completed, decide on current state;
        ``None`` — keep going.
        """
        if changed:
            self.quiet_streak = 0
            if self.holding:
                self.holding = False
                self.retraction_count += 1
                self.window *= self.growth
                return "retract"
            return None
        self.quiet_streak += 1
        if not self.holding and self.quiet_streak >= self.window:
            self.holding = True
            return "decide"
        return None

    def reset(self) -> None:
        """Back to the initial state (new epoch / reuse in tests)."""
        self.window = self.initial_window
        self.quiet_streak = 0
        self.holding = False
        self.retraction_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QuiescenceController(window={self.window}, "
                f"quiet={self.quiet_streak}, holding={self.holding}, "
                f"retractions={self.retraction_count})")
