"""Cardinality sketches: counting as an idempotent aggregate.

The reconstruction's bandwidth-frugal Count rests on a classical fact
(Mosk-Aoyama & Shah 2006 and the Flajolet–Martin lineage): the **minimum**
of i.i.d. per-node random draws is an idempotent aggregate, and its
distribution reveals how many nodes contributed.

Exponential-minima sketch
-------------------------
Every node draws ``k`` i.i.d. ``Exp(1)`` variables; the network computes
the coordinate-wise minimum (``O(d)`` rounds via
:class:`~repro.core.aggregation.MinVectorAggregate`).  Each global minimum
is ``Exp(N)``, their sum ``G ~ Gamma(k, 1/N)``, and::

    N̂ = (k - 1) / Σ_j M_j

is the unbiased inverse-Gamma estimator with relative standard deviation
``≈ 1/√(k-2)``.  The failure probability is *exactly* computable::

    P[N̂ > (1+ε)N] = P[G < (k-1)/(1+ε)],   G ~ Gamma(k, 1)
    P[N̂ < (1-ε)N] = P[G > (k-1)/(1-ε)]

— :func:`failure_probability` evaluates this with SciPy and
:func:`required_width` inverts it, so experiment F4 can check measured
coverage against the analytic guarantee rather than a loose Chernoff
bound.

Geometric (Flajolet–Martin) sketch
----------------------------------
Each coordinate holds a geometric level ``⌊-log₂ U⌋`` aggregated by
**max**; the estimator ``2^mean(levels) / φ`` (``φ ≈ 0.77351``) is coarser
(constant-factor relative error per coordinate, needing many more
coordinates for the same accuracy) but uses ~5-bit coordinates instead of
64-bit floats.  It exists for the T3 sketch-family ablation.
"""

from __future__ import annotations

import numpy as np

from .._validate import require_positive_int, require_probability

__all__ = [
    "estimate_from_minima",
    "failure_probability",
    "required_width",
    "ExponentialCountSketch",
    "GeometricCountSketch",
]

#: Flajolet–Martin bias correction for the geometric estimator.
_FM_PHI = 0.77351


def estimate_from_minima(minima: np.ndarray) -> float:
    """Inverse-Gamma cardinality estimate from global coordinate minima.

    ``(k - 1) / Σ minima``; requires width ``k >= 2`` (``k = 1`` makes the
    estimator degenerate with infinite variance).
    """
    minima = np.asarray(minima, dtype=np.float64)
    k = minima.size
    if k < 2:
        raise ValueError(f"need sketch width >= 2, got {k}")
    if (minima <= 0).any():
        raise ValueError("minima must be positive (Exp(1) draws)")
    return (k - 1) / float(minima.sum())


def failure_probability(width: int, eps: float) -> float:
    """Exact ``P[|N̂/N - 1| > eps]`` for the exponential sketch.

    Distribution-free in ``N``: the relative error ``N̂/N`` equals
    ``(k-1)/G`` with ``G ~ Gamma(k, 1)`` regardless of ``N``.
    """
    from scipy.stats import gamma

    k = require_positive_int(width, "width")
    if k < 2:
        return 1.0
    eps = float(eps)
    if eps <= 0:
        return 1.0
    upper = gamma.cdf((k - 1) / (1.0 + eps), a=k)      # N̂ too large
    lower = gamma.sf((k - 1) / (1.0 - eps), a=k) if eps < 1 else 0.0
    return float(upper + lower)


def required_width(eps: float, delta: float, max_width: int = 1 << 20) -> int:
    """Smallest sketch width with ``P[|N̂/N - 1| > eps] <= delta``.

    Binary search over the exact failure probability (which is monotone
    decreasing in the width for fixed ``eps``).
    """
    eps = float(eps)
    if eps <= 0:
        raise ValueError(f"eps must be > 0, got {eps}")
    require_probability(delta, "delta")
    if delta <= 0:
        raise ValueError("delta must be > 0")
    lo, hi = 2, 4
    while failure_probability(hi, eps) > delta:
        hi *= 2
        if hi > max_width:
            raise ValueError(
                f"required width exceeds {max_width} for eps={eps}, "
                f"delta={delta}")
    while lo < hi:
        mid = (lo + hi) // 2
        if failure_probability(mid, eps) <= delta:
            hi = mid
        else:
            lo = mid + 1
    return lo


class ExponentialCountSketch:
    """Factory/estimator pair for the exponential-minima sketch.

    Parameters
    ----------
    width:
        Number of coordinates ``k`` (use :func:`required_width` to derive
        it from an ``(ε, δ)`` target).
    """

    def __init__(self, width: int) -> None:
        self.width = require_positive_int(width, "width")
        if self.width < 2:
            raise ValueError("exponential sketch needs width >= 2")

    @classmethod
    def for_accuracy(cls, eps: float, delta: float) -> "ExponentialCountSketch":
        """Build a sketch meeting a ``(1±eps)`` w.p. ``1-delta`` target."""
        return cls(required_width(eps, delta))

    def draw(self, rng: np.random.Generator) -> np.ndarray:
        """One node's private contribution: ``k`` i.i.d. Exp(1) draws."""
        return rng.exponential(1.0, size=self.width)

    def estimate(self, minima: np.ndarray) -> float:
        """Cardinality estimate from the global coordinate-wise minima."""
        return estimate_from_minima(minima)

    def message_bits(self) -> int:
        """Bits per broadcast of a full sketch state (64-bit floats)."""
        return 64 * self.width + 8


class GeometricCountSketch:
    """Flajolet–Martin-style max-of-geometric-levels sketch (ablation).

    ``draw`` returns *negated* levels so that the same
    :class:`~repro.core.aggregation.MinVectorAggregate` machinery (which
    minimises) aggregates the **maximum** level; :meth:`estimate` undoes
    the negation.
    """

    def __init__(self, width: int) -> None:
        self.width = require_positive_int(width, "width")

    def draw(self, rng: np.random.Generator) -> np.ndarray:
        u = rng.random(size=self.width)
        levels = np.floor(-np.log2(u))
        return -levels  # negated: min-aggregation == max of levels

    def estimate(self, minima: np.ndarray) -> float:
        levels = -np.asarray(minima, dtype=np.float64)
        if levels.size == 0:
            raise ValueError("empty sketch")
        # Per-coordinate max level ≈ log2(N) + Gumbel noise; averaging the
        # levels before exponentiating (stochastic averaging) tames the
        # heavy tail, and φ corrects the expectation bias.
        return float(2.0 ** levels.mean() / _FM_PHI)

    def message_bits(self) -> int:
        """Bits per broadcast: levels fit in ~6 bits each (N < 2^64)."""
        return 6 * self.width + 8
