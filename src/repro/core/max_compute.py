"""Max in ``O(d)`` rounds — no ``Ω(N)`` term (RECONSTRUCTION).

The Max problem is the cleanest illustration of the reconstructed
framework: the maximum is itself an idempotent aggregate, so

* :class:`SublinearMax` = max-aggregation + quiescence controller →
  stabilizing decisions, final decision by ``O(d)`` rounds, **zero
  knowledge** of ``N`` or ``d``;
* :class:`MaxKnownBound` = max-aggregation + a known bound ``D >= d`` →
  irrevocable halting after exactly ``D`` rounds.

Contrast with :class:`repro.baselines.flooding.FloodMax` run with the
standard known-``N`` assumption (``rounds_bound = N - 1``): same messages,
but ``Θ(N)`` rounds even when ``d`` is constant.  Experiments T1/F3
measure exactly this gap.
"""

from __future__ import annotations

import numpy as np

from ..simnet.batch import MaxBatchKernel, aggregate_batch_kernel
from .aggregation import AggregateNode, KnownBoundAggregateNode, MaxAggregate

__all__ = ["SublinearMax", "MaxKnownBound"]


class SublinearMax(AggregateNode):
    """Stabilizing Max with no knowledge of ``N`` or ``d``.

    Parameters
    ----------
    node_id:
        Node id.
    value:
        The node's input (any totally ordered value).
    initial_window / window_growth:
        Quiescence-controller knobs (see
        :class:`~repro.core.termination.QuiescenceController`); the
        defaults give final decisions within ``~3d`` rounds.
    """

    name = "sublinear_max"

    def __init__(self, node_id: int, value, initial_window: int = 1,
                 window_growth: int = 2) -> None:
        super().__init__(node_id, MaxAggregate(),
                         initial_window=initial_window,
                         window_growth=window_growth)
        self.value = value

    def make_contribution(self, rng: np.random.Generator):
        return self.value

    def extract_output(self, state):
        return state

    @classmethod
    def __batch_kernel__(cls, nodes, id_bits: int = 32):
        """Segment-max batch kernel (see :mod:`repro.simnet.batch`)."""
        if cls is not SublinearMax:
            return None
        return aggregate_batch_kernel(MaxBatchKernel.build, nodes,
                                      known_bound=False)


class MaxKnownBound(KnownBoundAggregateNode):
    """Halting Max under a known dynamic-diameter bound ``D >= d``.

    Decides (and halts) after exactly ``rounds_bound`` rounds — correct by
    flood closure.  Round complexity ``D``: sublinear in ``N`` whenever
    the known bound is.
    """

    name = "max_known_bound"

    def __init__(self, node_id: int, value, rounds_bound: int) -> None:
        super().__init__(node_id, MaxAggregate(), rounds_bound)
        self.value = value

    def make_contribution(self, rng: np.random.Generator):
        return self.value

    def extract_output(self, state):
        return state

    @classmethod
    def __batch_kernel__(cls, nodes, id_bits: int = 32):
        """Segment-max batch kernel (see :mod:`repro.simnet.batch`)."""
        if cls is not MaxKnownBound:
            return None
        return aggregate_batch_kernel(MaxBatchKernel.build, nodes,
                                      known_bound=True)
