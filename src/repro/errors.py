"""Exception hierarchy for the ``repro`` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can distinguish library failures from
programming errors with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or combination of parameters was supplied.

    Raised eagerly at construction time so misconfigurations fail fast
    rather than mid-simulation.
    """


class ScheduleError(ReproError):
    """A dynamic-graph schedule is malformed or violates its contract."""


class IntervalConnectivityError(ScheduleError):
    """A schedule claimed to be T-interval connected but is not.

    Carries the offending window so tests and users can inspect the
    counterexample.
    """

    def __init__(self, message: str, *, window_start: int | None = None,
                 window_length: int | None = None) -> None:
        super().__init__(message)
        self.window_start = window_start
        self.window_length = window_length


class SimulationError(ReproError):
    """The round engine encountered an unrecoverable inconsistency."""


class BandwidthExceededError(SimulationError):
    """A node composed a message larger than the channel's bit budget.

    Only raised when the simulation runs in bounded-bandwidth
    (CONGEST-style) mode with ``strict_bandwidth=True``.
    """

    def __init__(self, message: str, *, node_id: int | None = None,
                 bits: int | None = None, limit: int | None = None) -> None:
        super().__init__(message)
        self.node_id = node_id
        self.bits = bits
        self.limit = limit


class AlgorithmViolation(SimulationError):
    """An algorithm broke a model rule (e.g. wrote to another node's state)."""


class NotTerminatedError(SimulationError):
    """A run hit its round budget before every node decided/halted."""

    def __init__(self, message: str, *, rounds_executed: int | None = None,
                 undecided: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.rounds_executed = rounds_executed
        self.undecided = tuple(undecided)


class IncorrectOutputError(SimulationError):
    """A run terminated but some node's output violates the problem spec."""
