"""Static topology zoo.

Every builder returns a canonical edge array (see
:func:`~repro.dynamics.schedule.canonical_edges`) for a **connected** graph
on ``n`` node indices.  The zoo spans the diameter spectrum the
reconstructed evaluation sweeps:

========================  =======================  =========================
builder                   diameter                 role in the evaluation
========================  =======================  =========================
``line_graph``            ``n - 1``                worst-case ``d = Θ(N)``
``ring_graph``            ``⌊n/2⌋``                ``d = Θ(N)``
``ring_of_cliques``       ``Θ(k)`` (k cliques)     sweeps ``d`` at fixed N
``grid_graph``            ``Θ(√n)``                intermediate ``d``
``hypercube_graph``       ``log₂ n``               low ``d``
``random_regular_…``      ``O(log n)`` w.h.p.      low-``d`` expander
``binary_tree_graph``     ``Θ(log n)``             low ``d``, sparse
``star_graph``            ``2``                    minimal ``d``
``complete_graph``        ``1``                    sanity floor
========================  =======================  =========================

Randomised builders take an explicit :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .._validate import require_positive_int, require_probability
from ..errors import ConfigurationError
from .schedule import canonical_edges

__all__ = [
    "line_graph",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "binary_tree_graph",
    "random_tree_graph",
    "erdos_renyi_connected",
    "hypercube_graph",
    "grid_graph",
    "random_regular_expander",
    "barbell_graph",
    "ring_of_cliques",
    "wheel_graph",
    "TOPOLOGY_BUILDERS",
    "build_topology",
]


def line_graph(n: int) -> np.ndarray:
    """Path ``0 - 1 - … - (n-1)``; diameter ``n - 1``."""
    require_positive_int(n, "n")
    if n == 1:
        return canonical_edges([], 1)
    idx = np.arange(n - 1)
    return canonical_edges(np.stack([idx, idx + 1], axis=1), n)


def ring_graph(n: int) -> np.ndarray:
    """Cycle on ``n`` nodes; diameter ``⌊n/2⌋``.  Requires ``n >= 3``."""
    require_positive_int(n, "n")
    if n < 3:
        raise ConfigurationError(f"ring requires n >= 3, got {n}")
    idx = np.arange(n)
    return canonical_edges(np.stack([idx, (idx + 1) % n], axis=1), n)


def star_graph(n: int, center: int = 0) -> np.ndarray:
    """Star with the given *center*; diameter 2 (1 for ``n = 2``)."""
    require_positive_int(n, "n")
    if not (0 <= center < n):
        raise ConfigurationError(f"center must be in [0, {n}), got {center}")
    if n == 1:
        return canonical_edges([], 1)
    others = np.array([i for i in range(n) if i != center])
    centers = np.full(others.shape, center)
    return canonical_edges(np.stack([centers, others], axis=1), n)


def complete_graph(n: int) -> np.ndarray:
    """Clique on ``n`` nodes; diameter 1."""
    require_positive_int(n, "n")
    iu = np.triu_indices(n, k=1)
    return canonical_edges(np.stack(iu, axis=1), n)


def binary_tree_graph(n: int) -> np.ndarray:
    """Complete-ish binary tree (heap indexing); diameter ``Θ(log n)``."""
    require_positive_int(n, "n")
    if n == 1:
        return canonical_edges([], 1)
    child = np.arange(1, n)
    parent = (child - 1) // 2
    return canonical_edges(np.stack([parent, child], axis=1), n)


def random_tree_graph(n: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random recursive tree: node ``i`` attaches to a random ``j < i``."""
    require_positive_int(n, "n")
    if n == 1:
        return canonical_edges([], 1)
    child = np.arange(1, n)
    # Vectorised bounds draw the same values (and advance the bit
    # generator identically) as a per-i scalar loop, so existing seeded
    # schedules are unchanged.
    parent = rng.integers(0, child)
    return canonical_edges(np.stack([parent, child], axis=1), n)


def erdos_renyi_connected(n: int, p: float, rng: np.random.Generator,
                          max_attempts: int = 64) -> np.ndarray:
    """``G(n, p)`` conditioned on connectivity.

    Retries up to *max_attempts* samples; if none is connected, the last
    sample is *repaired* by adding a uniform random recursive tree (the
    repair is noted in the literature's simulations and keeps the edge
    distribution close to ``G(n, p)`` when ``p`` is near the threshold).
    """
    require_positive_int(n, "n")
    require_probability(p, "p")
    if n == 1:
        return canonical_edges([], 1)
    iu = np.triu_indices(n, k=1)
    all_pairs = np.stack(iu, axis=1)
    last = None
    for _ in range(max_attempts):
        mask = rng.random(len(all_pairs)) < p
        edges = all_pairs[mask]
        last = edges
        if _edges_connected(edges, n):
            return canonical_edges(edges, n)
    tree = random_tree_graph(n, rng)
    combined = np.concatenate([last, tree]) if last is not None and last.size else tree
    return canonical_edges(combined, n)


def hypercube_graph(n: int) -> np.ndarray:
    """Hypercube on ``n = 2^k`` nodes; diameter ``k``."""
    require_positive_int(n, "n")
    k = n.bit_length() - 1
    if 1 << k != n:
        raise ConfigurationError(f"hypercube requires n to be a power of 2, got {n}")
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for b in range(k):
            v = u ^ (1 << b)
            if u < v:
                edges.append((u, v))
    return canonical_edges(edges, n)


def grid_graph(n: int, torus: bool = False) -> np.ndarray:
    """Near-square 2D grid on exactly ``n`` nodes; diameter ``Θ(√n)``.

    The grid has ``rows = ⌊√n⌋`` rows; the last row may be shorter.  With
    ``torus=True`` wrap-around edges are added (only between full rows /
    columns, so the graph stays simple and connected for ragged ``n``).
    """
    require_positive_int(n, "n")
    rows = max(1, int(math.isqrt(n)))
    cols = math.ceil(n / rows)
    edges: List[Tuple[int, int]] = []

    def nid(r: int, c: int) -> Optional[int]:
        i = r * cols + c
        return i if i < n else None

    for r in range(rows):
        for c in range(cols):
            u = nid(r, c)
            if u is None:
                continue
            right = nid(r, c + 1)
            down = nid(r + 1, c)
            if right is not None:
                edges.append((u, right))
            if down is not None:
                edges.append((u, down))
            if torus:
                if c == cols - 1:
                    w = nid(r, 0)
                    if w is not None and w != u:
                        edges.append((u, w))
                if r == rows - 1:
                    w = nid(0, c)
                    if w is not None and w != u:
                        edges.append((u, w))
    return canonical_edges(edges, n)


def random_regular_expander(n: int, degree: int,
                            rng: np.random.Generator,
                            max_attempts: int = 64) -> np.ndarray:
    """Random *degree*-regular graph (configuration model), conditioned on
    connectivity and simplicity; ``O(log n)`` diameter w.h.p.

    Falls back to adding a random tree if no connected simple sample is
    found within *max_attempts* (vanishingly rare for ``degree >= 3``).
    """
    require_positive_int(n, "n")
    require_positive_int(degree, "degree")
    if degree >= n:
        raise ConfigurationError(f"degree must be < n, got degree={degree}, n={n}")
    if (n * degree) % 2 != 0:
        raise ConfigurationError("n * degree must be even for a regular graph")
    stubs_template = np.repeat(np.arange(n), degree)
    last = None
    for _ in range(max_attempts):
        stubs = rng.permutation(stubs_template)
        pairs = stubs.reshape(-1, 2)
        ok = pairs[:, 0] != pairs[:, 1]
        edges = pairs[ok]
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        edges = np.unique(np.stack([lo, hi], axis=1), axis=0)
        last = edges
        if _edges_connected(edges, n):
            return canonical_edges(edges, n)
    tree = random_tree_graph(n, rng)
    combined = np.concatenate([last, tree]) if last is not None and last.size else tree
    return canonical_edges(combined, n)


def barbell_graph(n: int) -> np.ndarray:
    """Two ``⌊n/2⌋``-cliques joined by a single bridge edge; diameter 3.

    A classic low-diameter / low-conductance instance: flooding is fast
    but the bridge is a 1-edge bottleneck for bandwidth-limited protocols.
    """
    require_positive_int(n, "n")
    if n < 4:
        raise ConfigurationError(f"barbell requires n >= 4, got {n}")
    half = n // 2
    edges: List[Tuple[int, int]] = []
    for u in range(half):
        for v in range(u + 1, half):
            edges.append((u, v))
    for u in range(half, n):
        for v in range(u + 1, n):
            edges.append((u, v))
    edges.append((half - 1, half))
    return canonical_edges(edges, n)


def ring_of_cliques(n: int, num_cliques: int) -> np.ndarray:
    """``num_cliques`` near-equal cliques arranged in a cycle; diameter ``Θ(num_cliques)``.

    The evaluation's diameter-sweep family: at fixed ``n``, varying
    ``num_cliques`` from 2 to ``n`` moves the diameter from ``O(1)`` to
    ``Θ(n)`` (``num_cliques = n`` degenerates to a ring).
    """
    require_positive_int(n, "n")
    require_positive_int(num_cliques, "num_cliques")
    if num_cliques > n:
        raise ConfigurationError(
            f"num_cliques must be <= n, got {num_cliques} > {n}")
    if num_cliques < 2:
        return complete_graph(n)
    bounds = np.linspace(0, n, num_cliques + 1).astype(int)
    edges: List[Tuple[int, int]] = []
    for c in range(num_cliques):
        members = range(bounds[c], bounds[c + 1])
        members = list(members)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                edges.append((u, v))
    # Connect consecutive cliques via their boundary members.
    for c in range(num_cliques):
        u = bounds[c + 1] - 1            # last member of clique c
        v = bounds[(c + 1) % num_cliques]  # first member of the next
        if u != v:
            edges.append((u, v))
    return canonical_edges(edges, n)


def wheel_graph(n: int) -> np.ndarray:
    """Cycle on ``n - 1`` nodes plus a hub (node 0); diameter 2."""
    require_positive_int(n, "n")
    if n < 4:
        raise ConfigurationError(f"wheel requires n >= 4, got {n}")
    rim = np.arange(1, n)
    edges = [(0, int(v)) for v in rim]
    for i in range(len(rim)):
        edges.append((int(rim[i]), int(rim[(i + 1) % len(rim)])))
    return canonical_edges(edges, n)


def _edges_connected(edges: np.ndarray, n: int) -> bool:
    """Union-find connectivity check on an edge array."""
    if n == 1:
        return True
    if edges.size == 0:
        return False
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    components = n
    for u, v in edges:
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[ru] = rv
            components -= 1
            if components == 1:
                return True
    return components == 1


#: Registry used by the experiment harness to build topologies by name.
#: Builders take ``(n, rng)``; deterministic ones ignore ``rng``.
TOPOLOGY_BUILDERS: Dict[str, Callable[[int, np.random.Generator], np.ndarray]] = {
    "line": lambda n, rng: line_graph(n),
    "ring": lambda n, rng: ring_graph(n),
    "star": lambda n, rng: star_graph(n),
    "complete": lambda n, rng: complete_graph(n),
    "binary_tree": lambda n, rng: binary_tree_graph(n),
    "random_tree": random_tree_graph,
    "hypercube": lambda n, rng: hypercube_graph(n),
    "grid": lambda n, rng: grid_graph(n),
    "torus": lambda n, rng: grid_graph(n, torus=True),
    "expander": lambda n, rng: random_regular_expander(n, 4, rng),
    "barbell": lambda n, rng: barbell_graph(n),
    "wheel": lambda n, rng: wheel_graph(n),
}


def build_topology(name: str, n: int,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Build the named topology from :data:`TOPOLOGY_BUILDERS`."""
    try:
        builder = TOPOLOGY_BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology {name!r}; known: {sorted(TOPOLOGY_BUILDERS)}"
        ) from None
    if rng is None:
        rng = np.random.default_rng(0)
    return builder(n, rng)
