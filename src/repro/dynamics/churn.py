"""Edge-churn and mobility models with a machine-checkable T-interval promise.

Two realistic-flavoured dynamics used by the evaluation's robustness
experiments:

* :class:`EdgeChurnAdversary` — a stable spanning backbone plus a pool of
  candidate edges that blink on and off with a configurable dwell time
  (modelling flaky wireless links);
* :class:`RepairedMobilityAdversary` — nodes follow smooth deterministic
  trajectories in the unit square and connect within a radio radius, with
  a per-window spanning backbone (handed off with overlap, as in
  :class:`~repro.dynamics.interval.OverlapHandoffAdversary`) "repairing"
  the geometric graph so the T-interval promise provably holds even when
  the radio graph momentarily disconnects.  This is the substitution for
  real mobility traces documented in DESIGN.md §4.

Both are pure functions of the round index, hence replayable/verifiable.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .._validate import (
    require_nonnegative_int,
    require_positive_float,
    require_positive_int,
    require_probability,
)
from .schedule import FunctionSchedule, canonical_edges

__all__ = ["EdgeChurnAdversary", "RepairedMobilityAdversary"]


def _rng_for(seed: int, *key: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=tuple(key)))


class EdgeChurnAdversary(FunctionSchedule):
    """Stable backbone + blinking candidate edges.

    Each candidate edge ``e`` is independently *on* during round ``r``
    with probability ``p_on``, re-drawn once per *dwell* block
    (``r // dwell``), so links stay up/down for ``dwell`` consecutive
    rounds on average — a pure function of ``(seed, e, r // dwell)``.
    The backbone keeps the schedule T-interval connected for every T.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    backbone:
        Connected spanning edge set, always present.
    candidates:
        Pool of edges that churn; defaults to ``3 * num_nodes`` uniform
        random pairs drawn once from *seed*.
    p_on:
        Per-block probability a candidate is up.
    dwell:
        Block length in rounds.
    seed:
        Determinism root.
    """

    def __init__(self, num_nodes: int, backbone: object,
                 candidates: Optional[object] = None,
                 p_on: float = 0.5, dwell: int = 4, seed: int = 0) -> None:
        self.backbone = canonical_edges(backbone, num_nodes)
        self.p_on = require_probability(p_on, "p_on")
        self.dwell = require_positive_int(dwell, "dwell")
        self.seed = require_nonnegative_int(seed, "seed")
        if candidates is None:
            rng = _rng_for(self.seed, 0)
            m = 3 * num_nodes
            u = rng.integers(0, num_nodes, size=m)
            v = rng.integers(0, num_nodes - 1, size=m) if num_nodes > 1 \
                else np.zeros(m, dtype=np.int64)
            v = np.where(v >= u, v + 1, v)
            candidates = np.stack([u, v], axis=1)
        self.candidates = canonical_edges(candidates, num_nodes)

        def fn(r: int) -> np.ndarray:
            block = r // self.dwell
            rng = _rng_for(self.seed, 1, block)
            mask = rng.random(len(self.candidates)) < self.p_on
            return np.concatenate([self.backbone, self.candidates[mask]])

        super().__init__(num_nodes, fn, interval=None)

    def stable_until(self, round_index: int) -> int:
        # The candidate on/off mask is re-drawn once per dwell block
        # (block = r // dwell), so the graph holds to the block's end.
        return (round_index // self.dwell) * self.dwell + self.dwell - 1


class RepairedMobilityAdversary(FunctionSchedule):
    """Unit-disk graph over smoothly moving nodes, repaired per window.

    Trajectories.  Node ``i`` moves on a deterministic Lissajous-style
    orbit::

        x_i(r) = 0.5 + a_i · sin(2π (f_i r / period + φ_i))
        y_i(r) = 0.5 + b_i · cos(2π (g_i r / period + ψ_i))

    with per-node random amplitudes/frequencies/phases drawn once from
    *seed* — a pure function of ``r`` (unlike a random walk), so the
    schedule is replayable.

    Connectivity repair.  The raw unit-disk graph (edges between nodes
    within ``radius``) may momentarily disconnect; to uphold the paper's
    adversary promise we overlay, per window of ``T`` rounds, a spanning
    *backbone path* visiting nodes in the order of a space-filling sort
    (by ``x`` then ``y``) of their positions at the window's first round,
    handed off with a ``T-1``-round overlap exactly as in
    :class:`~repro.dynamics.interval.OverlapHandoffAdversary` — hence
    T-interval connectivity holds by the same proof.

    This substitutes for real mobility traces: it exercises the same code
    path (geometric neighbourhoods drifting continuously, plus a promise-
    preserving backbone) without proprietary data.
    """

    def __init__(self, num_nodes: int, T: int = 2, radius: float = 0.25,
                 period: int = 200, seed: int = 0) -> None:
        self.T = require_positive_int(T, "T")
        self.radius = require_positive_float(radius, "radius")
        self.period = require_positive_int(period, "period")
        self.seed = require_nonnegative_int(seed, "seed")
        rng = _rng_for(self.seed, 0)
        self._amp = rng.uniform(0.15, 0.45, size=(num_nodes, 2))
        self._freq = rng.integers(1, 4, size=(num_nodes, 2)).astype(float)
        self._phase = rng.uniform(0.0, 1.0, size=(num_nodes, 2))
        self._backbone_cache: dict[int, np.ndarray] = {}

        def fn(r: int) -> np.ndarray:
            pos = self.positions(r)
            geo = self._disk_edges(pos)
            w = (r - 1) // self.T
            parts = [geo, self._window_backbone(w)]
            if self.T > 1 and (r - 1) % self.T >= 1:
                parts.append(self._window_backbone(w + 1))
            return np.concatenate([p for p in parts if p.size],
                                  axis=0) if any(p.size for p in parts) \
                else np.empty((0, 2), dtype=np.int32)

        super().__init__(num_nodes, fn, interval=self.T)

    def positions(self, round_index: int) -> np.ndarray:
        """(n, 2) node positions at 1-based *round_index*."""
        t = round_index / self.period
        ang_x = 2 * math.pi * (self._freq[:, 0] * t + self._phase[:, 0])
        ang_y = 2 * math.pi * (self._freq[:, 1] * t + self._phase[:, 1])
        x = 0.5 + self._amp[:, 0] * np.sin(ang_x) * 0.9
        y = 0.5 + self._amp[:, 1] * np.cos(ang_y) * 0.9
        return np.stack([x, y], axis=1)

    def _disk_edges(self, pos: np.ndarray) -> np.ndarray:
        diff = pos[:, None, :] - pos[None, :, :]
        dist2 = (diff ** 2).sum(axis=2)
        iu = np.triu_indices(len(pos), k=1)
        close = dist2[iu] <= self.radius ** 2
        return np.stack([iu[0][close], iu[1][close]], axis=1).astype(np.int32)

    def _window_backbone(self, window: int) -> np.ndarray:
        cached = self._backbone_cache.get(window)
        if cached is None:
            first_round = window * self.T + 1
            pos = self.positions(first_round)
            order = np.lexsort((pos[:, 1], pos[:, 0]))
            cached = np.stack([order[:-1], order[1:]], axis=1).astype(np.int32) \
                if len(order) > 1 else np.empty((0, 2), dtype=np.int32)
            if len(self._backbone_cache) > 8:
                self._backbone_cache.pop(next(iter(self._backbone_cache)))
            self._backbone_cache[window] = cached
        return cached
