"""Adaptive adversaries.

The abstract's adversary chooses each round's topology "arbitrarily"; an
*adaptive* adversary does so after inspecting the nodes' current states.
These are the instances that realise worst-case lower bounds (e.g. the
``Ω(N)`` flooding bound even under per-round topology change), used by the
evaluation's adversary-robustness table (T2).

Model note.  The engine reveals the round's graph *after* nodes compose
their messages; an adaptive schedule bound to the engine therefore sees
node state as of the start of the round (plus any bookkeeping ``compose``
did), which is the standard "strongly adaptive" adversary of the
literature.  Adaptive schedules are not replayable pure functions, so they
record every round they generate; wrap-free verification is available via
:meth:`AdaptiveSchedule.to_explicit`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ScheduleError
from .schedule import ExplicitSchedule, GraphSchedule, canonical_edges

__all__ = [
    "AdaptiveSchedule",
    "PathHiderAdversary",
    "CutThrottleAdversary",
    "WindowedThrottleAdversary",
    "BottleneckBridgeAdversary",
]


class AdaptiveSchedule(GraphSchedule):
    """Base class for adversaries that inspect node state.

    Subclasses implement :meth:`decide_edges`, which receives the bound
    node list (set by the engine through :meth:`bind`).  Every generated
    round is recorded so the realised schedule can be certified afterwards.
    """

    def __init__(self, num_nodes: int, interval: Optional[int] = 1) -> None:
        super().__init__(num_nodes, interval)
        self._nodes: Optional[Sequence[object]] = None
        self._recorded: Dict[int, np.ndarray] = {}

    def bind(self, nodes: Sequence[object]) -> None:
        """Called by the engine with the live node list."""
        if len(nodes) != self.num_nodes:
            raise ScheduleError(
                f"bound {len(nodes)} nodes to an adversary over "
                f"{self.num_nodes}")
        self._nodes = nodes

    def decide_edges(self, round_index: int,
                     nodes: Sequence[object]) -> object:
        """Choose the round's edge set given the live nodes."""
        raise NotImplementedError

    def edges(self, round_index: int) -> np.ndarray:
        cached = self._recorded.get(round_index)
        if cached is not None:
            return cached
        if self._nodes is None:
            raise ScheduleError(
                "adaptive schedule queried before being bound to nodes "
                "(pass it to a Simulator first)")
        out = canonical_edges(
            self.decide_edges(round_index, self._nodes), self.num_nodes)
        self._recorded[round_index] = out
        return out

    def stable_until(self, round_index: int) -> int:
        """No stability promise — adaptive graphs depend on node state.

        The conservative hint forces the interval-aware adjacency cache
        to query (and hence record) every round, which both keeps the
        adversary adaptive and keeps the recording gap-free for
        :meth:`to_explicit`.  Identical consecutive graphs are still
        deduplicated downstream by content fingerprint.
        """
        return round_index

    def to_explicit(self) -> ExplicitSchedule:
        """Freeze the realised rounds for offline verification."""
        if not self._recorded:
            raise ScheduleError("no rounds realised yet")
        horizon = max(self._recorded)
        missing = [r for r in range(1, horizon + 1) if r not in self._recorded]
        if missing:
            raise ScheduleError(f"realised rounds have gaps: {missing[:5]} ...")
        return ExplicitSchedule(
            self.num_nodes,
            [self._recorded[r] for r in range(1, horizon + 1)],
            interval=self.interval,
        )


class PathHiderAdversary(AdaptiveSchedule):
    """The classic ``Ω(N)`` flooding adversary (1-interval).

    Each round it sorts the nodes by an *informedness predicate* and
    arranges them on a path with all informed nodes contiguous at one end:
    exactly one uninformed node is adjacent to the informed block, so at
    most one node becomes informed per round, forcing ``Θ(N)`` flooding
    time even though the graph changes every round.  This is the instance
    showing that "topology changes arbitrarily" genuinely costs ``Ω(N)``
    *in the worst case* and why the paper's bounds are parameterised by
    the dynamic diameter ``d``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    informed:
        Predicate mapping a node object to "has the information".  The
        default inspects a boolean ``informed`` attribute (as used by
        :class:`repro.baselines.flooding.FloodToken` nodes).
    """

    def __init__(self, num_nodes: int,
                 informed: Optional[Callable[[object], bool]] = None) -> None:
        super().__init__(num_nodes, interval=1)
        self._informed = informed or (
            lambda node: bool(getattr(node, "informed", False)))

    def decide_edges(self, round_index: int,
                     nodes: Sequence[object]) -> object:
        order = sorted(range(self.num_nodes),
                       key=lambda i: (not self._informed(nodes[i]), i))
        return [(order[i], order[i + 1]) for i in range(self.num_nodes - 1)]


class CutThrottleAdversary(AdaptiveSchedule):
    """Generalised progress-sorting adversary (1-interval).

    Sorts nodes by a numeric *progress key* (e.g. "how many distinct ids
    this node has heard") and arranges them on a path in key order, so
    information only crosses between adjacent progress levels — a smooth
    generalisation of :class:`PathHiderAdversary` that also slows
    multi-token and aggregate protocols.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    key:
        Progress key per node object; default reads a numeric ``progress``
        attribute (0 when absent).
    descending:
        Sort direction; the direction only mirrors the path, the throttling
        effect is identical.
    """

    def __init__(self, num_nodes: int,
                 key: Optional[Callable[[object], float]] = None,
                 descending: bool = False) -> None:
        super().__init__(num_nodes, interval=1)
        self._key = key or (lambda node: float(getattr(node, "progress", 0.0)))
        self._descending = bool(descending)

    def decide_edges(self, round_index: int,
                     nodes: Sequence[object]) -> object:
        keys = [self._key(nodes[i]) for i in range(self.num_nodes)]
        order = sorted(range(self.num_nodes),
                       key=lambda i: (keys[i], i),
                       reverse=self._descending)
        return [(order[i], order[i + 1]) for i in range(self.num_nodes - 1)]


class WindowedThrottleAdversary(AdaptiveSchedule):
    """Adaptive progress-throttling constrained by a T-interval promise.

    The experiment that shows *why T matters* (F2): the adversary wants to
    re-sort the path by node progress every round (as
    :class:`CutThrottleAdversary` does), but the T-interval promise only
    lets it commit to a fresh spanning backbone once per ``T``-round
    window.  Construction: at the first round of each window it computes a
    path over the nodes sorted by the progress key *at that moment*; the
    first ``T - 1`` rounds of each window additionally carry the
    **previous** window's path.

    Promise proof (past-overlap variant of
    :class:`~repro.dynamics.interval.OverlapHandoffAdversary`): any ``T``
    consecutive rounds touch at most two windows ``w-1, w``; the rounds
    taken from window ``w`` are its first ``≤ T-1`` rounds, which all
    carry the ``w-1`` path, and the rounds from window ``w-1`` carry it
    too — a connected spanning common subgraph.  (Past-overlap is what an
    *adaptive* adversary can implement: the future window's backbone
    depends on states it has not seen yet.)

    Effect: the larger ``T``, the longer each throttling arrangement goes
    stale and the faster protocols make progress — the measured rounds
    fall as ``T`` grows, reproducing the ``N²/T``-flavoured trade-off of
    the prior-work bounds.
    """

    def __init__(self, num_nodes: int, T: int,
                 key: Optional[Callable[[object], float]] = None) -> None:
        super().__init__(num_nodes, interval=max(1, int(T)))
        if T < 1:
            raise ScheduleError(f"T must be >= 1, got {T}")
        self.T = int(T)
        self._key = key or (lambda node: float(getattr(node, "progress", 0.0)))
        self._paths: Dict[int, List[tuple]] = {}

    def _path_for_window(self, window: int,
                         nodes: Sequence[object]) -> List[tuple]:
        path = self._paths.get(window)
        if path is None:
            keys = [self._key(nodes[i]) for i in range(self.num_nodes)]
            order = sorted(range(self.num_nodes), key=lambda i: (keys[i], i))
            path = [(order[i], order[i + 1])
                    for i in range(self.num_nodes - 1)]
            self._paths[window] = path
            stale = [w for w in self._paths if w < window - 1]
            for w in stale:
                del self._paths[w]
        return path

    def decide_edges(self, round_index: int,
                     nodes: Sequence[object]) -> object:
        w = (round_index - 1) // self.T
        pos = (round_index - 1) % self.T
        edges = list(self._path_for_window(w, nodes))
        if self.T > 1 and pos < self.T - 1 and w > 0:
            prev = self._paths.get(w - 1)
            if prev is not None:
                edges.extend(prev)
        return edges


class BottleneckBridgeAdversary(AdaptiveSchedule):
    """Two cliques joined by one adaptively chosen bridge — the
    **bandwidth-bottleneck** instance.

    The node set is split into two fixed cliques; intra-clique mixing is
    instant (dynamic diameter 2–3), but every token must cross the
    **single bridge edge**, whose endpoints the adversary re-chooses once
    per ``T``-round window, preferring, when protocols expose their next
    broadcast through an optional ``peek_broadcast()`` duck-typed hook,
    endpoint pairs predicted to broadcast tokens the other side already
    has (falling back to the first pair otherwise).

    What this instance demonstrates (used by F2/F6):

    * token-forwarding protocols (one token per message) need ``Ω(N)``
      rounds here *despite* ``d = O(1)`` — the bridge carries at most one
      token per direction per round — separating bandwidth-limited
      dissemination from the aggregate-based core algorithms, which still
      finish in ``O(d)``;
    * it is **not** a reproduction of the full ``Ω(N·k/T)``
      token-dissemination lower bound (Dutta et al., SODA 2013): that
      bound's adversary relies on a charging argument well beyond a
      prediction heuristic, and against sweep-synchronised protocols
      (every clique member about to broadcast the same token) no bridge
      choice is wasteful, so the measured times here are essentially flat
      in ``T``.  This limitation is recorded in the F2 experiment notes.

    Promise: every round contains both cliques plus a bridge, hence is
    connected (1-interval); the first ``T-1`` rounds of each window also
    carry the *previous* window's bridge (past-overlap, the only overlap
    an adaptive adversary can implement), so any ``T`` consecutive rounds
    share cliques + one full bridge — T-interval connectivity holds by
    the same argument as :class:`WindowedThrottleAdversary`.
    """

    def __init__(self, num_nodes: int, T: int) -> None:
        super().__init__(num_nodes, interval=max(1, int(T)))
        if num_nodes < 4:
            raise ScheduleError(
                f"BottleneckBridgeAdversary requires n >= 4, got {num_nodes}")
        if T < 1:
            raise ScheduleError(f"T must be >= 1, got {T}")
        self.T = int(T)
        half = num_nodes // 2
        self.side_a = tuple(range(half))
        self.side_b = tuple(range(half, num_nodes))
        self._clique_edges: List[tuple] = []
        for side in (self.side_a, self.side_b):
            for i, u in enumerate(side):
                for v in side[i + 1:]:
                    self._clique_edges.append((u, v))
        self._bridges: Dict[int, tuple] = {}

    @staticmethod
    def _tokens_of(node: object) -> frozenset:
        tokens = getattr(node, "tokens", None)
        return frozenset(tokens) if tokens is not None else frozenset()

    @staticmethod
    def _peek(node: object) -> Optional[int]:
        peek = getattr(node, "peek_broadcast", None)
        if peek is None:
            return None
        return peek()

    def _wastefulness(self, speaker: object, listener: object) -> int:
        """2 if the speaker's next broadcast is already known to the
        listener, 1 if unpredictable, 0 if it would be fresh."""
        nxt = self._peek(speaker)
        if nxt is None:
            return 1
        return 2 if nxt in self._tokens_of(listener) else 0

    def _choose_bridge(self, nodes: Sequence[object]) -> tuple:
        best, best_score = None, -1
        for u in self.side_a:
            for v in self.side_b:
                score = (self._wastefulness(nodes[u], nodes[v])
                         + self._wastefulness(nodes[v], nodes[u]))
                if score > best_score:
                    best, best_score = (u, v), score
                    if score == 4:
                        return best
        return best if best is not None else (self.side_a[0], self.side_b[0])

    def decide_edges(self, round_index: int,
                     nodes: Sequence[object]) -> object:
        w = (round_index - 1) // self.T
        pos = (round_index - 1) % self.T
        bridge = self._bridges.get(w)
        if bridge is None:
            bridge = self._choose_bridge(nodes)
            self._bridges[w] = bridge
            for stale in [x for x in self._bridges if x < w - 1]:
                del self._bridges[stale]
        edges = list(self._clique_edges)
        edges.append(bridge)
        if self.T > 1 and pos < self.T - 1 and (w - 1) in self._bridges:
            edges.append(self._bridges[w - 1])
        return edges
