"""Machine-checking the adversary's promise.

The paper's adversary promises: *in every T consecutive rounds, the T
topologies contain a common connected subgraph spanning all nodes*.
:func:`verify_t_interval_connectivity` checks that promise exactly, for
every sliding window in a horizon, in ``O(horizon · |E| · α(n))`` total
time using consecutive-presence run lengths (an edge belongs to the
intersection of window ``[r, r+T-1]`` iff its consecutive-presence run
ending at ``r+T-1`` has length ``≥ T``).

All schedule generators in :mod:`repro.dynamics` are tested against this
verifier, and experiments certify their schedules before trusting results.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .._validate import require_positive_int
from ..errors import IntervalConnectivityError
from .schedule import GraphSchedule

__all__ = [
    "is_connected_spanning",
    "window_intersection_edges",
    "verify_t_interval_connectivity",
]


class _UnionFind:
    """Array-based union-find with path halving (internal helper)."""

    __slots__ = ("parent", "components")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.components = n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb
            self.components -= 1


def is_connected_spanning(edges: np.ndarray, num_nodes: int) -> bool:
    """Whether *edges* connect all ``num_nodes`` nodes."""
    require_positive_int(num_nodes, "num_nodes")
    if num_nodes == 1:
        return True
    if edges is None or len(edges) == 0:
        return False
    uf = _UnionFind(num_nodes)
    for u, v in edges:
        uf.union(int(u), int(v))
        if uf.components == 1:
            return True
    return uf.components == 1


def window_intersection_edges(schedule: GraphSchedule, start: int,
                              T: int) -> np.ndarray:
    """Edges present in **every** round of ``[start, start+T-1]``.

    Direct (non-incremental) computation; used for inspection and as the
    oracle the fast verifier is property-tested against.
    """
    require_positive_int(start, "start")
    require_positive_int(T, "T")
    n = schedule.num_nodes
    common: Optional[set] = None
    for r in range(start, start + T):
        keys = {int(u) * n + int(v) for u, v in schedule.edges(r)}
        common = keys if common is None else (common & keys)
        if not common:
            break
    common = common or set()
    out = np.array(sorted((k // n, k % n) for k in common), dtype=np.int32)
    return out.reshape(-1, 2)


def verify_t_interval_connectivity(
    schedule: GraphSchedule,
    T: int,
    horizon: int,
    raise_on_failure: bool = True,
) -> Tuple[bool, Optional[int]]:
    """Check the T-interval promise over rounds ``1 .. horizon``.

    Every sliding window ``[r, r+T-1]`` with ``r + T - 1 <= horizon`` is
    checked for a connected spanning intersection.

    Returns
    -------
    ``(ok, first_bad_window_start)`` — ``(True, None)`` if the promise
    holds; otherwise ``(False, r)`` for the earliest violated window
    (or raises :class:`~repro.errors.IntervalConnectivityError` when
    *raise_on_failure* is set).
    """
    require_positive_int(T, "T")
    require_positive_int(horizon, "horizon")
    n = schedule.num_nodes
    if horizon < T:
        return True, None  # no complete window exists

    run_len: Dict[int, int] = {}
    for end in range(1, horizon + 1):
        edge_arr = schedule.edges(end)
        keys = edge_arr[:, 0].astype(np.int64) * n + edge_arr[:, 1]
        new_run: Dict[int, int] = {}
        for k in keys.tolist():
            new_run[k] = run_len.get(k, 0) + 1
        run_len = new_run
        if end >= T:
            window_start = end - T + 1
            surviving = [k for k, c in run_len.items() if c >= T]
            uf = _UnionFind(n)
            for k in surviving:
                uf.union(k // n, k % n)
                if uf.components == 1:
                    break
            if uf.components != 1 and n > 1:
                if raise_on_failure:
                    raise IntervalConnectivityError(
                        f"window [{window_start}, {end}] of schedule "
                        f"{schedule!r} has no connected spanning "
                        f"intersection (T={T})",
                        window_start=window_start, window_length=T,
                    )
                return False, window_start
    return True, None
