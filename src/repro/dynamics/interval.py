"""Oblivious T-interval adversaries.

Each adversary here generates an infinite schedule that **satisfies
T-interval connectivity by construction**; the construction and its proof
sketch live in the class docstrings, and the test suite additionally
machine-checks prefixes of every adversary with
:func:`~repro.dynamics.verifier.verify_t_interval_connectivity`.

Determinism: the graph of round ``r`` is a pure function of
``(constructor arguments, r)`` — per-round/per-window generators are
derived from the seed via :class:`numpy.random.SeedSequence`, never from
shared mutable stream state — so schedules can be replayed by the verifier
without being stored.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .._validate import require_nonnegative_int, require_positive_int
from ..errors import ConfigurationError
from .schedule import STABLE_FOREVER, FunctionSchedule, canonical_edges
from .topologies import random_tree_graph

__all__ = [
    "StaticAdversary",
    "StableBackboneAdversary",
    "OverlapHandoffAdversary",
    "FreshSpanningAdversary",
    "AlternatingMatchingsAdversary",
    "random_noise_edges",
]


def _rng_for(seed: int, *key: int) -> np.random.Generator:
    """Deterministic generator for a (seed, key...) coordinate."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=tuple(key))
    )


def random_noise_edges(n: int, count: int,
                       rng: np.random.Generator) -> np.ndarray:
    """*count* uniform random distinct non-loop pairs (may duplicate backbone).

    Duplicates with other edge sets are harmless: schedules canonicalise
    unions with :func:`~repro.dynamics.schedule.canonical_edges`.
    """
    require_positive_int(n, "n")
    require_nonnegative_int(count, "count")
    if count == 0 or n < 2:
        return np.empty((0, 2), dtype=np.int32)
    u = rng.integers(0, n, size=count)
    v = rng.integers(0, n - 1, size=count)
    v = np.where(v >= u, v + 1, v)  # avoid self-loops uniformly
    return np.stack([u, v], axis=1).astype(np.int32)


class StaticAdversary(FunctionSchedule):
    """The same graph every round.

    A static connected graph is T-interval connected for **every** T
    (``interval=None``), and realises the worst case ``d = diameter`` —
    e.g. the static line that forces the ``Ω(N)`` lower bound discussed
    in DESIGN.md §1.
    """

    def __init__(self, num_nodes: int, edges: object) -> None:
        fixed = canonical_edges(edges, num_nodes)
        super().__init__(num_nodes, lambda r: fixed, interval=None,
                         canonical=True)
        self.fixed_edges = fixed

    def stable_until(self, round_index: int) -> int:
        return STABLE_FOREVER


class StableBackboneAdversary(FunctionSchedule):
    """A fixed spanning backbone plus per-round random churn edges.

    The backbone (any connected spanning edge set) is present in **every**
    round, so the schedule is T-interval connected for every T
    (``interval=None``); the churn edges change arbitrarily each round,
    modelling the "topology can change arbitrarily from round to round"
    clause of the abstract while the promise is kept by the backbone.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    backbone:
        Connected spanning edge set kept every round.
    noise_edges:
        Number of uniform random extra edges added per round.
    seed:
        Determinism root for the churn.
    """

    def __init__(self, num_nodes: int, backbone: object,
                 noise_edges: int = 0, seed: int = 0) -> None:
        self.backbone = canonical_edges(backbone, num_nodes)
        self.noise_edges = require_nonnegative_int(noise_edges, "noise_edges")
        self.seed = require_nonnegative_int(seed, "seed")

        def fn(r: int) -> np.ndarray:
            if self.noise_edges == 0:
                return self.backbone
            noise = random_noise_edges(
                num_nodes, self.noise_edges, _rng_for(self.seed, r))
            return np.concatenate([self.backbone, noise])

        super().__init__(num_nodes, fn, interval=None,
                         canonical=(self.noise_edges == 0))

    def stable_until(self, round_index: int) -> int:
        # With churn the graph is fresh every round; without it only the
        # backbone remains, forever.
        return round_index if self.noise_edges else STABLE_FOREVER


class OverlapHandoffAdversary(FunctionSchedule):
    """Exactly-T-interval adversary: a fresh backbone per T-round window,
    handed off with a (T-1)-round overlap.

    Construction.  Partition rounds into windows ``w = 0, 1, …`` of length
    ``T`` (window ``w`` covers rounds ``wT+1 .. (w+1)T``).  Each window has
    its own random spanning backbone ``B_w``.  Round ``r`` in window ``w``
    carries ``B_w``; additionally, the **last T-1 rounds** of window ``w``
    also carry ``B_{w+1}``; plus optional per-round churn edges.

    Why this satisfies T-interval connectivity.  Any ``T`` consecutive
    rounds ``[r, r+T-1]`` touch at most two windows ``w, w+1``.  If they
    lie within one window, their intersection contains that window's
    backbone.  Otherwise the rounds taken from window ``w`` are its last
    ``c ≤ T-1`` rounds, which by construction all carry ``B_{w+1}``; the
    rounds from window ``w+1`` carry ``B_{w+1}`` too — so the intersection
    contains the connected spanning ``B_{w+1}``.  ∎

    Because consecutive backbones are independent random spanning trees,
    windows of length ``> 2T`` generally have **no** common spanning
    subgraph: the promise is *exactly* T, which is what the paper's
    "constant T" experiments need.

    Parameters
    ----------
    num_nodes, T:
        Model parameters; ``T >= 1``.  For ``T = 1`` there is no overlap
        and every round is an independent random backbone.
    backbone_builder:
        ``builder(n, rng) -> edges`` producing a connected spanning edge
        set; defaults to a uniform random recursive tree with a random
        node relabelling (so the tree's *shape and placement* both vary).
    noise_edges:
        Per-round uniform random extra edges.
    seed:
        Determinism root.
    """

    def __init__(self, num_nodes: int, T: int,
                 backbone_builder: Optional[Callable[[int, np.random.Generator], np.ndarray]] = None,
                 noise_edges: int = 0, seed: int = 0) -> None:
        self.T = require_positive_int(T, "T")
        self.noise_edges = require_nonnegative_int(noise_edges, "noise_edges")
        self.seed = require_nonnegative_int(seed, "seed")
        self._builder = backbone_builder or _relabeled_random_tree
        self._backbone_cache: dict[int, np.ndarray] = {}
        self._union_cache: dict[int, np.ndarray] = {}

        def fn(r: int) -> np.ndarray:
            w = (r - 1) // self.T
            pos_in_window = (r - 1) % self.T  # 0-based
            # Last T-1 rounds of window w also carry B_{w+1}; the
            # canonical union is memoized per window so the T-1 stable
            # rounds cost one canonicalisation, not T-1.
            if self.T > 1 and pos_in_window >= 1:
                base = self._handoff_union(num_nodes, w)
            else:
                base = self._backbone(num_nodes, w)
            if self.noise_edges:
                return np.concatenate([base, random_noise_edges(
                    num_nodes, self.noise_edges,
                    _rng_for(self.seed, 1, r))])
            return base

        # Without churn, fn returns memoized canonical arrays verbatim,
        # so the schedule may skip the per-round re-canonicalisation.
        super().__init__(num_nodes, fn, interval=self.T,
                         canonical=(noise_edges == 0))

    def stable_until(self, round_index: int) -> int:
        # Rounds 2..T of a window all carry B_w ∪ B_{w+1}; round 1 carries
        # only B_w.  Churn edges break per-round stability entirely.
        if self.noise_edges or self.T == 1:
            return round_index
        pos_in_window = (round_index - 1) % self.T
        if pos_in_window == 0:
            return round_index
        return ((round_index - 1) // self.T + 1) * self.T

    def _backbone(self, n: int, window: int) -> np.ndarray:
        cached = self._backbone_cache.get(window)
        if cached is None:
            cached = canonical_edges(
                self._builder(n, _rng_for(self.seed, 0, window)), n)
            if len(self._backbone_cache) > 8:
                self._backbone_cache.pop(next(iter(self._backbone_cache)))
            self._backbone_cache[window] = cached
        return cached

    def _handoff_union(self, n: int, window: int) -> np.ndarray:
        """Canonical ``B_w ∪ B_{w+1}``, memoized per window."""
        cached = self._union_cache.get(window)
        if cached is None:
            cached = canonical_edges(np.concatenate([
                self._backbone(n, window),
                self._backbone(n, window + 1)]), n)
            if len(self._union_cache) > 4:
                self._union_cache.pop(next(iter(self._union_cache)))
            self._union_cache[window] = cached
        return cached


def _relabeled_random_tree(n: int, rng: np.random.Generator) -> np.ndarray:
    """Random recursive tree composed with a random node relabelling.

    Draws the identical RNG stream as ``random_tree_graph`` followed by
    a permutation, but skips the tree's internal canonicalisation — the
    relabelling scrambles the ordering anyway, and the caller
    (:meth:`OverlapHandoffAdversary._backbone`) canonicalises the
    result, so the produced edge set is unchanged.
    """
    if n == 1:
        return random_tree_graph(n, rng)
    child = np.arange(1, n)
    parent = rng.integers(0, child)
    tree = np.stack([parent, child], axis=1)
    perm = rng.permutation(n)
    return perm[tree]


class FreshSpanningAdversary(FunctionSchedule):
    """A completely fresh random spanning structure every round (T = 1).

    Each round is an independent random Hamiltonian path over a random
    permutation of the nodes, plus optional churn edges.  Only 1-interval
    connectivity is promised; empirically the flooding time is
    ``O(log N)`` w.h.p. because the per-round randomness mixes information
    like a gossip process — this is the evaluation's "maximally dynamic
    yet low-``d``" instance.
    """

    def __init__(self, num_nodes: int, noise_edges: int = 0,
                 seed: int = 0) -> None:
        self.noise_edges = require_nonnegative_int(noise_edges, "noise_edges")
        self.seed = require_nonnegative_int(seed, "seed")

        def fn(r: int) -> np.ndarray:
            rng = _rng_for(self.seed, r)
            perm = rng.permutation(num_nodes)
            path = np.stack([perm[:-1], perm[1:]], axis=1) if num_nodes > 1 \
                else np.empty((0, 2), dtype=np.int32)
            if self.noise_edges:
                noise = random_noise_edges(num_nodes, self.noise_edges, rng)
                return np.concatenate([path, noise])
            return path

        super().__init__(num_nodes, fn, interval=1)


class AlternatingMatchingsAdversary(FunctionSchedule):
    """A ring whose odd/even edge sets alternate round parity, on a stable cycle.

    Round ``2k+1`` carries the full ring; round ``2k`` carries the full
    ring **minus one rotating edge** — the classic minimal example of a
    graph sequence that is connected every round but never stabilises.
    Because the surviving ``n-1`` ring edges always form a spanning path,
    every round is connected (T=1), and any two consecutive rounds share
    a spanning path, making the schedule 2-interval connected as well
    (``interval=2``).

    Requires ``num_nodes >= 3``.
    """

    def __init__(self, num_nodes: int, seed: int = 0) -> None:
        if num_nodes < 3:
            raise ConfigurationError(
                f"AlternatingMatchingsAdversary requires n >= 3, got {num_nodes}")
        idx = np.arange(num_nodes)
        ring = np.stack([idx, (idx + 1) % num_nodes], axis=1)

        def fn(r: int) -> np.ndarray:
            if r % 2 == 1:
                return ring
            drop = (r // 2) % num_nodes
            keep = np.ones(num_nodes, dtype=bool)
            keep[drop] = False
            return ring[keep]

        super().__init__(num_nodes, fn, interval=2)
