"""Exact dynamic diameter (flooding time) of a schedule.

The complexity bounds of the paper (as reconstructed in DESIGN.md §1) are
parameterised by the **dynamic diameter** ``d``: the number of rounds
needed, in the worst case over source nodes (and optionally over start
rounds), for information flooded from a source to reach every node, when
every node forwards everything it knows each round.

This module computes ``d`` exactly by simulating the *flood closure* of
all sources simultaneously with bit-packed reachability sets: row ``v`` of
a ``(n, ⌈n/64⌉)`` ``uint64`` matrix is the set of sources whose token node
``v`` holds; each round the matrix rows of edge endpoints are OR-ed into
each other (vectorised with ``np.bitwise_or.at``).  One round of the
closure costs ``O(|E| · n / 64)`` word operations; in an always-connected
schedule the closure completes within ``n - 1`` rounds.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from .._validate import require_positive_int
from ..errors import NotTerminatedError
from .schedule import GraphSchedule

__all__ = ["flooding_time_from", "dynamic_diameter"]


def _full_mask(n: int, words: int) -> np.ndarray:
    """Bitmask with the low ``n`` bits set, packed into *words* uint64s."""
    mask = np.zeros(words, dtype=np.uint64)
    full_words, rem = divmod(n, 64)
    mask[:full_words] = np.uint64(0xFFFFFFFFFFFFFFFF)
    if rem:
        mask[full_words] = np.uint64((1 << rem) - 1)
    return mask


def flooding_time_from(
    schedule: GraphSchedule,
    start_round: int = 1,
    sources: Optional[Iterable[int]] = None,
    max_rounds: Optional[int] = None,
) -> int:
    """Rounds until every node holds the token of every source.

    Tokens originate at *sources* (default: all nodes) at the start of
    *start_round*; in each round every node broadcasts everything it
    holds.  Returns the number of rounds executed when the last
    ``(source, node)`` pair completes.  For ``n == 1`` (or empty sources)
    the answer is 0.

    Raises
    ------
    NotTerminatedError
        If the closure does not complete within *max_rounds* (default
        ``4n + 16``) — which for a schedule that is connected every round
        cannot happen before ``n - 1`` rounds elapse, so hitting the
        default budget indicates a disconnected schedule.
    """
    require_positive_int(start_round, "start_round")
    n = schedule.num_nodes
    if n == 1:
        return 0
    src_list = sorted(set(range(n) if sources is None else sources))
    if not src_list:
        return 0
    for s in src_list:
        if not (0 <= s < n):
            raise ValueError(f"source {s} out of range [0, {n})")
    words = (n + 63) // 64
    informed = np.zeros((n, words), dtype=np.uint64)
    # Node v starts holding exactly the tokens of sources equal to v.
    for s in src_list:
        informed[s, s // 64] |= np.uint64(1) << np.uint64(s % 64)

    # Target: every row holds every source's bit.
    target = np.zeros(words, dtype=np.uint64)
    for s in src_list:
        target[s // 64] |= np.uint64(1) << np.uint64(s % 64)

    if max_rounds is None:
        max_rounds = 4 * n + 16

    if bool((informed & target == target).all()):
        return 0

    for step in range(1, max_rounds + 1):
        edge_arr = schedule.edges(start_round + step - 1)
        if edge_arr.size:
            src = np.concatenate([edge_arr[:, 0], edge_arr[:, 1]])
            dst = np.concatenate([edge_arr[:, 1], edge_arr[:, 0]])
            contributions = informed[src]
            np.bitwise_or.at(informed, dst, contributions)
        if bool((informed & target == target).all()):
            return step
    raise NotTerminatedError(
        f"flood closure incomplete after {max_rounds} rounds from round "
        f"{start_round}; is the schedule connected every round?",
        rounds_executed=max_rounds,
    )


def dynamic_diameter(
    schedule: GraphSchedule,
    start_rounds: Sequence[int] = (1,),
    max_rounds: Optional[int] = None,
) -> int:
    """Max flooding time over the given *start_rounds* (all sources).

    The paper's ``d`` is a worst case over when the algorithm's
    information happens to originate; sampling several start rounds
    approximates that worst case for time-varying adversaries (for static
    and backbone-stable schedules one start round is exact).
    """
    if not start_rounds:
        raise ValueError("start_rounds must be non-empty")
    return max(
        flooding_time_from(schedule, start_round=r, max_rounds=max_rounds)
        for r in start_rounds
    )
