"""S2+S3 — dynamic-graph schedules, adversaries, and their certification.

A *schedule* assigns to every 1-based round index an undirected graph over
``num_nodes`` node indices.  The adversaries here generate schedules that
**provably satisfy T-interval connectivity** (the promise the paper's
adversary makes); :mod:`repro.dynamics.verifier` machine-checks that
promise on any schedule, and :mod:`repro.dynamics.diameter` computes the
exact flooding time ("dynamic diameter" ``d``) that parameterises the
paper's complexity bounds.

Contents
--------
* :mod:`~repro.dynamics.schedule` — schedule base classes (explicit,
  function-backed, adaptive).
* :mod:`~repro.dynamics.topologies` — static topology zoo (line, ring,
  expander, ring-of-cliques, ...), all returning canonical edge arrays.
* :mod:`~repro.dynamics.interval` — oblivious T-interval adversaries
  (static, stable-backbone-with-churn, overlap-handoff rewiring).
* :mod:`~repro.dynamics.adaptive` — adaptive adversaries that inspect node
  state (used for worst-case T=1 experiments).
* :mod:`~repro.dynamics.churn` — edge-churn and repaired-mobility models.
* :mod:`~repro.dynamics.verifier` — T-interval-connectivity certification.
* :mod:`~repro.dynamics.diameter` — exact dynamic diameter / flooding time.
"""

from .schedule import (
    GraphSchedule,
    ExplicitSchedule,
    FunctionSchedule,
    RecordingSchedule,
    CSRAdjacency,
    build_csr,
    STABLE_FOREVER,
)
from .topologies import (
    line_graph,
    ring_graph,
    star_graph,
    complete_graph,
    binary_tree_graph,
    random_tree_graph,
    erdos_renyi_connected,
    hypercube_graph,
    grid_graph,
    random_regular_expander,
    barbell_graph,
    ring_of_cliques,
    wheel_graph,
    TOPOLOGY_BUILDERS,
    build_topology,
)
from .interval import (
    StaticAdversary,
    StableBackboneAdversary,
    OverlapHandoffAdversary,
    FreshSpanningAdversary,
    AlternatingMatchingsAdversary,
    random_noise_edges,
)
from .adaptive import (
    AdaptiveSchedule,
    PathHiderAdversary,
    CutThrottleAdversary,
    WindowedThrottleAdversary,
    BottleneckBridgeAdversary,
)
from .churn import EdgeChurnAdversary, RepairedMobilityAdversary
from .verifier import (
    verify_t_interval_connectivity,
    is_connected_spanning,
    window_intersection_edges,
)
from .diameter import dynamic_diameter, flooding_time_from
from .combinators import dilate, union_schedules, concatenate, relabel
from .storage import save_schedule, load_schedule

__all__ = [
    "GraphSchedule",
    "ExplicitSchedule",
    "FunctionSchedule",
    "RecordingSchedule",
    "CSRAdjacency",
    "build_csr",
    "STABLE_FOREVER",
    "line_graph",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "binary_tree_graph",
    "random_tree_graph",
    "erdos_renyi_connected",
    "hypercube_graph",
    "grid_graph",
    "random_regular_expander",
    "barbell_graph",
    "ring_of_cliques",
    "wheel_graph",
    "TOPOLOGY_BUILDERS",
    "build_topology",
    "StaticAdversary",
    "StableBackboneAdversary",
    "OverlapHandoffAdversary",
    "FreshSpanningAdversary",
    "AlternatingMatchingsAdversary",
    "random_noise_edges",
    "AdaptiveSchedule",
    "PathHiderAdversary",
    "CutThrottleAdversary",
    "WindowedThrottleAdversary",
    "BottleneckBridgeAdversary",
    "EdgeChurnAdversary",
    "RepairedMobilityAdversary",
    "verify_t_interval_connectivity",
    "is_connected_spanning",
    "window_intersection_edges",
    "dynamic_diameter",
    "flooding_time_from",
    "dilate",
    "union_schedules",
    "concatenate",
    "relabel",
    "save_schedule",
    "load_schedule",
]
