"""Schedule serialization: save realised dynamics as replayable artefacts.

For cross-machine reproducibility (and for archiving the exact adversary
behaviour behind a published number), any schedule prefix can be frozen
to a single ``.npz`` file and reloaded as an
:class:`~repro.dynamics.schedule.ExplicitSchedule`:

* :func:`save_schedule` — evaluate rounds ``1..horizon`` and write them,
  with metadata (num_nodes, promised interval, source repr);
* :func:`load_schedule` — reload; the result replays bit-identically and
  can be re-verified with the promise checker.

The format is a flat npz: ``meta`` (JSON string), plus one
``round_<r>`` int32 edge array per round — readable without this
library.
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

from .._validate import require_positive_int
from ..errors import ScheduleError
from .schedule import ExplicitSchedule, GraphSchedule

__all__ = ["save_schedule", "load_schedule"]

_FORMAT_VERSION = 1


def save_schedule(schedule: GraphSchedule, horizon: int, path: str) -> str:
    """Freeze rounds ``1..horizon`` of *schedule* into an npz at *path*.

    Returns the path written (with ``.npz`` appended if missing —
    mirroring :func:`numpy.savez_compressed`).
    """
    require_positive_int(horizon, "horizon")
    arrays = {
        f"round_{r}": schedule.edges(r).astype(np.int32)
        for r in range(1, horizon + 1)
    }
    meta = {
        "format_version": _FORMAT_VERSION,
        "num_nodes": schedule.num_nodes,
        "interval": schedule.interval,
        "horizon": horizon,
        "source": repr(schedule),
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path if path.endswith(".npz") else path + ".npz"


def load_schedule(path: str) -> ExplicitSchedule:
    """Reload a schedule saved by :func:`save_schedule`."""
    with np.load(path) as data:
        if "meta" not in data:
            raise ScheduleError(f"{path} is not a saved schedule (no meta)")
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        version = meta.get("format_version")
        if version != _FORMAT_VERSION:
            raise ScheduleError(
                f"unsupported schedule format version {version!r}")
        horizon = int(meta["horizon"])
        rounds = []
        for r in range(1, horizon + 1):
            key = f"round_{r}"
            if key not in data:
                raise ScheduleError(f"{path} missing {key}")
            rounds.append(np.asarray(data[key], dtype=np.int32))
    interval: Optional[int] = meta["interval"]
    return ExplicitSchedule(int(meta["num_nodes"]), rounds,
                            interval=interval)
