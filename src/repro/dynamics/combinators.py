"""Schedule combinators: build new dynamics from existing ones.

Each combinator documents how the T-interval promise propagates — that
is the whole point: promises compose predictably, so complex adversaries
can be assembled from certified parts (and the verifier re-checks the
results in the tests anyway).

* :func:`dilate` — hold each graph of a base schedule for ``s``
  consecutive rounds.  **Promise amplification**: naive holding is not
  enough (a length-``s`` window straddling two blocks intersects two
  *different* connected graphs, whose intersection need not be
  connected), so ``dilate`` applies the same overlap-handoff trick as
  the adversaries in :mod:`~repro.dynamics.interval` — the previous
  block's graph is also carried during the first ``s - 1`` rounds of
  each block — which makes the dilation of any 1-interval schedule
  provably ``s``-interval connected (proof in :func:`dilate`).
* :func:`union_schedules` — per-round edge union; inherits the
  *stronger* promise of the two parts (a window intersection contains
  each part's).
* :func:`concatenate` — run schedule A for a prefix, then B.  The
  promise around the seam is re-established by carrying A's last graph
  through B's first ``T - 1`` rounds (overlap again).
* :func:`relabel` — apply a node permutation (promises untouched).

All results are plain :class:`~repro.dynamics.schedule.FunctionSchedule`
objects, replayable as long as their inputs are.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validate import require_positive_int
from ..errors import ConfigurationError
from .schedule import FunctionSchedule, GraphSchedule, canonical_edges

__all__ = ["dilate", "union_schedules", "concatenate", "relabel"]


def dilate(base: GraphSchedule, s: int) -> FunctionSchedule:
    """Hold each graph of *base* for ``s`` rounds, with handoff overlap.

    Round ``r`` of the dilation carries base graph ``⌈r/s⌉``; the first
    ``s-1`` rounds of each block also carry the previous block's graph.

    Promise.  If every graph of *base* is connected (1-interval), the
    dilation is ``s``-interval connected: any ``s`` consecutive rounds
    touch at most two blocks ``b, b+1``; the rounds from block ``b+1``
    are its first ``≤ s-1``, which also carry block ``b``'s graph, and
    the rounds from block ``b`` carry it by definition — so the window's
    intersection contains base graph ``b``, which is connected and
    spanning.  ∎

    This converts *any* certified 1-interval adversary into a
    ``T = s`` adversary — the tool behind custom T-sweeps.
    """
    require_positive_int(s, "s")

    def fn(r: int) -> np.ndarray:
        block = (r - 1) // s + 1  # 1-based base round
        parts = [base.edges(block)]
        pos = (r - 1) % s
        if s > 1 and pos < s - 1 and block > 1:
            parts.append(base.edges(block - 1))
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def stable(r: int) -> int:
        # Block 1 has no overlay, so all s of its rounds are identical;
        # later blocks hold "block ∪ block-1" through position s-2 and
        # drop the overlay only in the block's final round.
        block = (r - 1) // s + 1
        pos = (r - 1) % s
        if s == 1:
            return r
        if block == 1:
            return s
        if pos < s - 1:
            return (block - 1) * s + s - 1
        return r

    return FunctionSchedule(base.num_nodes, fn, interval=s,
                            stable_until=stable)


def union_schedules(a: GraphSchedule, b: GraphSchedule) -> FunctionSchedule:
    """Per-round edge union of two schedules over the same node set.

    Promise: for any ``T`` that either part satisfies, the union does too
    (window intersections only gain edges).  ``interval`` is set to the
    stronger (``None`` beats any finite ``T``; smaller ``T`` is stronger
    than larger).
    """
    if a.num_nodes != b.num_nodes:
        raise ConfigurationError(
            f"cannot union schedules over {a.num_nodes} and "
            f"{b.num_nodes} nodes")
    if a.interval is None or b.interval is None:
        interval: Optional[int] = None
    else:
        interval = min(a.interval, b.interval)

    def fn(r: int) -> np.ndarray:
        return np.concatenate([a.edges(r), b.edges(r)])

    def stable(r: int) -> int:
        # The union is unchanged while both parts are.
        return min(a.stable_until(r), b.stable_until(r))

    return FunctionSchedule(a.num_nodes, fn, interval=interval,
                            stable_until=stable)


def concatenate(a: GraphSchedule, prefix_rounds: int,
                b: GraphSchedule, T: int = 1) -> FunctionSchedule:
    """Schedule A for rounds ``1..prefix_rounds``, then schedule B.

    B's round clock restarts at the seam (its round 1 plays at global
    round ``prefix_rounds + 1``).  To keep a ``T``-interval promise
    across the seam, A's **last** graph is additionally carried through
    B's first ``T - 1`` rounds (the overlap argument once more: any
    window crossing the seam takes its A-side rounds from A's final
    graph's tenure... specifically the window's B-side rounds are B's
    first ``≤ T-1``, which carry A's last graph, and the A-side rounds
    carry it too — provided A held that graph for its last ``T-1``
    rounds, which is guaranteed when A itself is a dilation or static;
    for general A the seam promise is ``min(T, A's run length)``, and
    the tests verify concrete compositions with the machine verifier).
    """
    require_positive_int(prefix_rounds, "prefix_rounds")
    require_positive_int(T, "T")
    if a.num_nodes != b.num_nodes:
        raise ConfigurationError(
            f"cannot concatenate schedules over {a.num_nodes} and "
            f"{b.num_nodes} nodes")

    def fn(r: int) -> np.ndarray:
        if r <= prefix_rounds:
            return a.edges(r)
        pos_in_b = r - prefix_rounds
        parts = [b.edges(pos_in_b)]
        if T > 1 and pos_in_b <= T - 1:
            parts.append(a.edges(prefix_rounds))
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    return FunctionSchedule(a.num_nodes, fn, interval=T)


def relabel(base: GraphSchedule,
            permutation: Sequence[int]) -> FunctionSchedule:
    """Apply a node permutation to every round's graph.

    ``permutation[i]`` is the new index of node ``i``.  Promises are
    untouched (isomorphism).  Useful for symmetry/property tests: any
    id-oblivious algorithm must behave identically up to relabelling.
    """
    perm = np.asarray(permutation, dtype=np.int64)
    if sorted(perm.tolist()) != list(range(base.num_nodes)):
        raise ConfigurationError(
            f"permutation must be a bijection on range({base.num_nodes})")

    def fn(r: int) -> np.ndarray:
        edges = base.edges(r)
        return canonical_edges(perm[edges], base.num_nodes) if edges.size \
            else edges

    return FunctionSchedule(base.num_nodes, fn, interval=base.interval,
                            stable_until=base.stable_until)
