"""Schedule base classes.

A schedule maps 1-based round indices to undirected graphs over node
indices ``0 .. num_nodes-1``.  Graphs are represented as *canonical edge
arrays*: ``numpy`` int32 arrays of shape ``(m, 2)`` with ``u < v`` in every
row and rows sorted lexicographically — a unique representation per graph,
which makes window intersection (the heart of T-interval verification)
a sorted-set operation.

Determinism contract
--------------------
``edges(r)`` must be a *pure function* of ``(schedule construction
arguments, r)`` for all oblivious schedules, so that the verifier and the
engine can both replay the same schedule without storing every round.
Adaptive schedules cannot be pure; they derive from
:class:`~repro.dynamics.adaptive.AdaptiveSchedule`, which records its
generated rounds for later verification.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .._validate import require_positive_int
from ..errors import ConfigurationError, ScheduleError

__all__ = [
    "canonical_edges",
    "GraphSchedule",
    "ExplicitSchedule",
    "FunctionSchedule",
    "RecordingSchedule",
]


def canonical_edges(edges: object, num_nodes: int) -> np.ndarray:
    """Normalise *edges* into the canonical edge-array representation.

    Accepts any iterable of ``(u, v)`` pairs or an ``(m, 2)`` array.
    Self-loops are rejected; duplicate edges are merged; endpoints are
    validated against ``num_nodes``.
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                     dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int32)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ScheduleError(f"edge array must have shape (m, 2), got {arr.shape}")
    if (arr < 0).any() or (arr >= num_nodes).any():
        raise ScheduleError(
            f"edge endpoints must be in [0, {num_nodes}), got range "
            f"[{arr.min()}, {arr.max()}]"
        )
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    if (lo == hi).any():
        raise ScheduleError("self-loops are not allowed")
    canon = np.stack([lo, hi], axis=1).astype(np.int32)
    canon = np.unique(canon, axis=0)
    return canon


class GraphSchedule:
    """Abstract base: a dynamic graph, one canonical edge array per round.

    Subclasses implement :meth:`edges`.  The base provides cached
    conversion to per-node neighbour lists (what the engine consumes) and
    NetworkX export for analysis.

    Attributes
    ----------
    num_nodes:
        Number of nodes (indices ``0 .. num_nodes-1``).
    interval:
        The value of ``T`` this schedule *promises* to satisfy
        (``interval=1`` promises only per-round connectivity; a static
        schedule may promise ``interval=None`` meaning "every T").
    """

    #: maximum rounds of neighbour lists kept in the conversion cache
    _NEIGHBOR_CACHE = 8

    def __init__(self, num_nodes: int, interval: Optional[int] = 1) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if interval is not None:
            require_positive_int(interval, "interval")
        self.interval = interval
        self._neighbor_cache: Dict[int, List[np.ndarray]] = {}

    # -- abstract -------------------------------------------------------------

    def edges(self, round_index: int) -> np.ndarray:
        """Canonical edge array of the graph for 1-based *round_index*."""
        raise NotImplementedError

    # -- derived --------------------------------------------------------------

    def neighbors(self, round_index: int) -> List[np.ndarray]:
        """Per-node neighbour index arrays for the round's graph (cached)."""
        cached = self._neighbor_cache.get(round_index)
        if cached is not None:
            return cached
        edge_arr = self.edges(round_index)
        lists: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for u, v in edge_arr:
            lists[u].append(v)
            lists[v].append(u)
        out = [np.asarray(item, dtype=np.int32) for item in lists]
        if len(self._neighbor_cache) >= self._NEIGHBOR_CACHE:
            self._neighbor_cache.pop(next(iter(self._neighbor_cache)))
        self._neighbor_cache[round_index] = out
        return out

    def degrees(self, round_index: int) -> np.ndarray:
        """Degree of every node in the round's graph."""
        edge_arr = self.edges(round_index)
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        if edge_arr.size:
            np.add.at(deg, edge_arr[:, 0], 1)
            np.add.at(deg, edge_arr[:, 1], 1)
        return deg

    def as_networkx(self, round_index: int):
        """The round's graph as a :class:`networkx.Graph` (analysis only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        g.add_edges_from(map(tuple, self.edges(round_index)))
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} n={self.num_nodes} "
                f"T={self.interval}>")


class ExplicitSchedule(GraphSchedule):
    """A schedule stored as an explicit per-round list of edge arrays.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    rounds:
        One edge collection per round, for rounds ``1 .. len(rounds)``.
    cycle:
        If true, round ``r`` beyond the stored horizon wraps around
        (``rounds[(r-1) % len(rounds)]``); if false, querying beyond the
        horizon raises :class:`~repro.errors.ScheduleError`.
    interval:
        The T the schedule claims to satisfy (verified by tests via
        :func:`~repro.dynamics.verifier.verify_t_interval_connectivity`).
    """

    def __init__(self, num_nodes: int, rounds: Sequence[object],
                 cycle: bool = False, interval: Optional[int] = 1) -> None:
        super().__init__(num_nodes, interval)
        if not rounds:
            raise ConfigurationError("rounds must be non-empty")
        self._rounds = [canonical_edges(e, num_nodes) for e in rounds]
        self.cycle = bool(cycle)

    @property
    def horizon(self) -> int:
        """Number of explicitly stored rounds."""
        return len(self._rounds)

    def edges(self, round_index: int) -> np.ndarray:
        require_positive_int(round_index, "round_index")
        idx = round_index - 1
        if idx >= len(self._rounds):
            if not self.cycle:
                raise ScheduleError(
                    f"round {round_index} beyond explicit horizon "
                    f"{len(self._rounds)} (pass cycle=True to wrap)"
                )
            idx %= len(self._rounds)
        return self._rounds[idx]


class FunctionSchedule(GraphSchedule):
    """A schedule computed on demand by a pure function of the round index.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    fn:
        ``fn(round_index) -> edges``; must be deterministic (the engine and
        the verifier may both evaluate it for the same round).
    interval:
        The T the generator guarantees.
    """

    def __init__(self, num_nodes: int, fn: Callable[[int], object],
                 interval: Optional[int] = 1) -> None:
        super().__init__(num_nodes, interval)
        self._fn = fn
        self._edge_cache: Dict[int, np.ndarray] = {}

    _EDGE_CACHE = 8

    def edges(self, round_index: int) -> np.ndarray:
        require_positive_int(round_index, "round_index")
        cached = self._edge_cache.get(round_index)
        if cached is not None:
            return cached
        out = canonical_edges(self._fn(round_index), self.num_nodes)
        if len(self._edge_cache) >= self._EDGE_CACHE:
            self._edge_cache.pop(next(iter(self._edge_cache)))
        self._edge_cache[round_index] = out
        return out


class RecordingSchedule(GraphSchedule):
    """Wrapper that records every round it serves, for later verification.

    Wrap any schedule whose generation is *not* replayable (adaptive
    adversaries, schedules driven by external state) so that after a run
    the exact sequence of graphs that occurred can be certified::

        rec = RecordingSchedule(adaptive)
        Simulator(rec, nodes).run(...)
        verify_t_interval_connectivity(rec.to_explicit(), T=1)
    """

    def __init__(self, inner: GraphSchedule) -> None:
        super().__init__(inner.num_nodes, inner.interval)
        self.inner = inner
        self._recorded: Dict[int, np.ndarray] = {}

    def edges(self, round_index: int) -> np.ndarray:
        cached = self._recorded.get(round_index)
        if cached is None:
            cached = self.inner.edges(round_index)
            self._recorded[round_index] = cached
        return cached

    def bind(self, nodes) -> None:
        """Forward engine binding to an adaptive inner schedule."""
        bind = getattr(self.inner, "bind", None)
        if bind is not None:
            bind(nodes)

    def to_explicit(self) -> ExplicitSchedule:
        """Freeze the recorded prefix into an :class:`ExplicitSchedule`."""
        if not self._recorded:
            raise ScheduleError("nothing recorded yet")
        horizon = max(self._recorded)
        missing = [r for r in range(1, horizon + 1) if r not in self._recorded]
        if missing:
            raise ScheduleError(f"recorded rounds have gaps: {missing[:5]} ...")
        return ExplicitSchedule(
            self.num_nodes,
            [self._recorded[r] for r in range(1, horizon + 1)],
            interval=self.interval,
        )
