"""Schedule base classes.

A schedule maps 1-based round indices to undirected graphs over node
indices ``0 .. num_nodes-1``.  Graphs are represented as *canonical edge
arrays*: ``numpy`` int32 arrays of shape ``(m, 2)`` with ``u < v`` in every
row and rows sorted lexicographically — a unique representation per graph,
which makes window intersection (the heart of T-interval verification)
a sorted-set operation.

Determinism contract
--------------------
``edges(r)`` must be a *pure function* of ``(schedule construction
arguments, r)`` for all oblivious schedules, so that the verifier and the
engine can both replay the same schedule without storing every round.
Adaptive schedules cannot be pure; they derive from
:class:`~repro.dynamics.adaptive.AdaptiveSchedule`, which records its
generated rounds for later verification.

Interval-aware adjacency caching
--------------------------------
The T-interval model's defining property — the graph is *stable across
whole windows of rounds* — is also a performance property: the engine
should not rebuild adjacency for rounds it can prove are identical.  Two
cooperating mechanisms exploit it:

* :meth:`GraphSchedule.stable_until` — a schedule-specific hint, "the
  graph of round ``r`` is unchanged through round ``stable_until(r)``".
  Constructive adversaries override it (a static graph is stable forever;
  an overlap-handoff window is stable to the window's end); adaptive and
  recording schedules keep the conservative default ``r`` so every round
  is still generated and recorded.
* a **content-fingerprint cache** — rounds whose hints cannot prove
  stability (e.g. the odd rounds of an alternating-matchings schedule)
  still share one :class:`CSRAdjacency` per *distinct graph*, because the
  cache is keyed by a hash of the canonical edge bytes, not by the round
  index.

:meth:`GraphSchedule.adjacency` and :meth:`GraphSchedule.neighbors` are
both served from this cache; the engine's fast path consumes the CSR form
directly.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .._validate import require_positive_int
from ..errors import ConfigurationError, ScheduleError

__all__ = [
    "canonical_edges",
    "build_csr",
    "CSRAdjacency",
    "STABLE_FOREVER",
    "GraphSchedule",
    "ExplicitSchedule",
    "FunctionSchedule",
    "RecordingSchedule",
]

#: Sentinel round index meaning "this graph never changes again"; used by
#: :meth:`GraphSchedule.stable_until` overrides of static-flavoured
#: schedules.  Any real round index compares smaller.
STABLE_FOREVER = 2 ** 62


class CSRAdjacency:
    """Compressed-sparse-row adjacency of one round's graph.

    ``indices[indptr[j]:indptr[j+1]]`` are node ``j``'s neighbour indices
    in **ascending order** — exactly the order the legacy per-node
    neighbour lists used, which is what keeps the engine's fast path
    byte-identical to the reference path.

    The object also memoizes the derived forms the hot loops want
    (plain-Python neighbour lists and degree lists, per-node ``ndarray``
    views), so the cost of materialising them is paid once per *distinct
    graph*, not once per round.
    """

    __slots__ = ("indptr", "indices", "num_nodes",
                 "_degrees", "_degree_list", "_neighbor_lists",
                 "_neighbor_arrays", "_indices_list", "_indptr_list")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 num_nodes: int) -> None:
        self.indptr = indptr
        self.indices = indices
        self.num_nodes = num_nodes
        self._degrees: Optional[np.ndarray] = None
        self._degree_list: Optional[List[int]] = None
        self._neighbor_lists: Optional[List[List[int]]] = None
        self._neighbor_arrays: Optional[List[np.ndarray]] = None
        self._indices_list: Optional[List[int]] = None
        self._indptr_list: Optional[List[int]] = None

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def degrees(self) -> np.ndarray:
        """Degree of every node, as an int64 array (memoized)."""
        if self._degrees is None:
            self._degrees = np.diff(self.indptr)
        return self._degrees

    def degree_list(self) -> List[int]:
        """Degrees as a plain Python list (memoized; avoids scalar boxing)."""
        if self._degree_list is None:
            self._degree_list = self.degrees().tolist()
        return self._degree_list

    def neighbors_of(self, node: int) -> np.ndarray:
        """Neighbour indices of *node* (ascending int32 view)."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def neighbor_arrays(self) -> List[np.ndarray]:
        """Per-node neighbour index arrays (views into ``indices``)."""
        if self._neighbor_arrays is None:
            indptr, indices = self.indptr, self.indices
            self._neighbor_arrays = [
                indices[indptr[j]:indptr[j + 1]]
                for j in range(self.num_nodes)
            ]
        return self._neighbor_arrays

    def indices_list(self) -> List[int]:
        """The flat CSR index array as plain Python ints (memoized)."""
        if self._indices_list is None:
            self._indices_list = self.indices.tolist()
        return self._indices_list

    def indptr_list(self) -> List[int]:
        """The CSR row-pointer array as plain Python ints (memoized)."""
        if self._indptr_list is None:
            self._indptr_list = self.indptr.tolist()
        return self._indptr_list

    def neighbor_lists(self) -> List[List[int]]:
        """Per-node neighbour lists of plain Python ints (memoized).

        The engine's delivery loop indexes payload lists with these;
        plain ints avoid the per-element numpy-scalar boxing that
        dominates the reference path at large N.
        """
        if self._neighbor_lists is None:
            flat = self.indices_list()
            bounds = self.indptr_list()
            self._neighbor_lists = [
                flat[bounds[j]:bounds[j + 1]]
                for j in range(self.num_nodes)
            ]
        return self._neighbor_lists

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CSRAdjacency n={self.num_nodes} "
                f"m={self.num_edges}>")


def build_csr(edge_arr: np.ndarray, num_nodes: int) -> CSRAdjacency:
    """Build a :class:`CSRAdjacency` from a canonical edge array.

    Fully vectorized: both directions of every undirected edge are
    sorted with a single :func:`numpy.lexsort` on ``(neighbour, node)``,
    so each node's neighbour run comes out ascending — matching the
    ordering contract documented on :class:`CSRAdjacency`.
    """
    if edge_arr.size == 0:
        return CSRAdjacency(
            np.zeros(num_nodes + 1, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            num_nodes,
        )
    src = np.concatenate([edge_arr[:, 0], edge_arr[:, 1]])
    dst = np.concatenate([edge_arr[:, 1], edge_arr[:, 0]])
    order = np.lexsort((dst, src))
    indices = dst[order].astype(np.int32, copy=False)
    counts = np.bincount(src, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRAdjacency(indptr, indices, num_nodes)


def _graph_fingerprint(edge_arr: np.ndarray) -> Hashable:
    """Content fingerprint of a canonical edge array.

    Canonical arrays are a unique representation per graph, so hashing
    their bytes identifies the graph regardless of which round produced
    it — the key that lets stable T-interval windows (and any other
    repeats) share one adjacency build.
    """
    return (edge_arr.shape[0], hash(edge_arr.tobytes()))


def canonical_edges(edges: object, num_nodes: int) -> np.ndarray:
    """Normalise *edges* into the canonical edge-array representation.

    Accepts any iterable of ``(u, v)`` pairs or an ``(m, 2)`` array.
    Self-loops are rejected; duplicate edges are merged; endpoints are
    validated against ``num_nodes``.
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                     dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int32)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ScheduleError(f"edge array must have shape (m, 2), got {arr.shape}")
    if (arr < 0).any() or (arr >= num_nodes).any():
        raise ScheduleError(
            f"edge endpoints must be in [0, {num_nodes}), got range "
            f"[{arr.min()}, {arr.max()}]"
        )
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    if (lo == hi).any():
        raise ScheduleError("self-loops are not allowed")
    # Dedupe + lex-sort via packed scalar keys: since ``hi < num_nodes``,
    # the numeric order of ``lo * num_nodes + hi`` equals the
    # lexicographic row order, and 1-D unique is far faster than the
    # row-wise ``np.unique(..., axis=0)``.
    key = np.unique(lo * np.int64(num_nodes) + hi)
    canon = np.empty((len(key), 2), dtype=np.int32)
    canon[:, 0] = key // num_nodes
    canon[:, 1] = key % num_nodes
    return canon


class GraphSchedule:
    """Abstract base: a dynamic graph, one canonical edge array per round.

    Subclasses implement :meth:`edges`.  The base provides cached
    conversion to per-node neighbour lists (what the engine consumes) and
    NetworkX export for analysis.

    Attributes
    ----------
    num_nodes:
        Number of nodes (indices ``0 .. num_nodes-1``).
    interval:
        The value of ``T`` this schedule *promises* to satisfy
        (``interval=1`` promises only per-round connectivity; a static
        schedule may promise ``interval=None`` meaning "every T").
    """

    #: maximum number of *distinct graphs* kept in the adjacency cache
    #: (bounded LRU; one CSR per fingerprint, shared by every round that
    #: realises the same graph)
    _ADJACENCY_CACHE = 16

    def __init__(self, num_nodes: int, interval: Optional[int] = 1) -> None:
        self.num_nodes = require_positive_int(num_nodes, "num_nodes")
        if interval is not None:
            require_positive_int(interval, "interval")
        self.interval = interval
        # fingerprint -> CSRAdjacency, insertion-ordered for LRU eviction
        self._adj_cache: Dict[Hashable, CSRAdjacency] = {}
        # (lo, hi, csr): rounds lo..hi are known to share `csr` — set from
        # the stable_until hint so stable windows skip edges() entirely
        self._adj_span: Optional[Tuple[int, int, CSRAdjacency]] = None
        #: Lifetime counters of the interval-aware adjacency cache:
        #: ``span_hits`` (served from a known-stable span without calling
        #: ``edges``), ``fingerprint_hits`` (distinct round, same graph),
        #: ``builds`` (CSR constructed), ``evictions`` (LRU drops).  The
        #: engine's observability layer reports per-run deltas of these
        #: as ``CacheEvent``\ s; at most a few increments per round, so
        #: they stay on unconditionally.
        self.adjacency_stats: Dict[str, int] = {
            "span_hits": 0, "fingerprint_hits": 0,
            "builds": 0, "evictions": 0,
        }

    # -- abstract -------------------------------------------------------------

    def edges(self, round_index: int) -> np.ndarray:
        """Canonical edge array of the graph for 1-based *round_index*."""
        raise NotImplementedError

    # -- stability hints ------------------------------------------------------

    def stable_until(self, round_index: int) -> int:
        """Last round through which the graph of *round_index* is unchanged.

        The interval-aware cache contract: returning ``s >= round_index``
        promises ``edges(r) == edges(round_index)`` for every ``r`` in
        ``[round_index, s]``, letting :meth:`adjacency` serve the whole
        span from one build without re-querying :meth:`edges`.  The
        conservative default is ``round_index`` itself (no promise);
        schedules whose construction guarantees stability — static
        graphs, dwell blocks, the shared portion of overlap-handoff
        windows — override this.  Schedules with side effects on
        :meth:`edges` (adaptive recording) must **not** promise beyond
        ``round_index``.
        """
        return round_index

    # -- derived --------------------------------------------------------------

    def adjacency(self, round_index: int) -> CSRAdjacency:
        """CSR adjacency of the round's graph, interval-aware cached.

        Rounds inside a known-stable span (per :meth:`stable_until`)
        return the same :class:`CSRAdjacency` object without touching
        :meth:`edges`; other rounds are deduplicated by content
        fingerprint, so T identical rounds cost one build, not T.
        """
        stats = self.adjacency_stats
        span = self._adj_span
        if span is not None and span[0] <= round_index <= span[1]:
            stats["span_hits"] += 1
            return span[2]
        edge_arr = self.edges(round_index)
        key = _graph_fingerprint(edge_arr)
        cache = self._adj_cache
        csr = cache.pop(key, None)
        if csr is None:
            stats["builds"] += 1
            csr = build_csr(edge_arr, self.num_nodes)
            if len(cache) >= self._ADJACENCY_CACHE:
                stats["evictions"] += 1
                cache.pop(next(iter(cache)))
        else:
            stats["fingerprint_hits"] += 1
        cache[key] = csr
        self._adj_span = (
            round_index, max(round_index, self.stable_until(round_index)), csr)
        return csr

    def neighbors(self, round_index: int) -> List[np.ndarray]:
        """Per-node neighbour index arrays for the round's graph (cached).

        Served from the same graph-identity cache as :meth:`adjacency`:
        identical rounds of a stable T-interval window share one set of
        arrays instead of storing per-round duplicates.
        """
        return self.adjacency(round_index).neighbor_arrays()

    def degrees(self, round_index: int) -> np.ndarray:
        """Degree of every node in the round's graph."""
        edge_arr = self.edges(round_index)
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        if edge_arr.size:
            np.add.at(deg, edge_arr[:, 0], 1)
            np.add.at(deg, edge_arr[:, 1], 1)
        return deg

    def as_networkx(self, round_index: int):
        """The round's graph as a :class:`networkx.Graph` (analysis only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        g.add_edges_from(map(tuple, self.edges(round_index)))
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} n={self.num_nodes} "
                f"T={self.interval}>")


class ExplicitSchedule(GraphSchedule):
    """A schedule stored as an explicit per-round list of edge arrays.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    rounds:
        One edge collection per round, for rounds ``1 .. len(rounds)``.
    cycle:
        If true, round ``r`` beyond the stored horizon wraps around
        (``rounds[(r-1) % len(rounds)]``); if false, querying beyond the
        horizon raises :class:`~repro.errors.ScheduleError`.
    interval:
        The T the schedule claims to satisfy (verified by tests via
        :func:`~repro.dynamics.verifier.verify_t_interval_connectivity`).
    """

    def __init__(self, num_nodes: int, rounds: Sequence[object],
                 cycle: bool = False, interval: Optional[int] = 1) -> None:
        super().__init__(num_nodes, interval)
        if not rounds:
            raise ConfigurationError("rounds must be non-empty")
        self._rounds = [canonical_edges(e, num_nodes) for e in rounds]
        self.cycle = bool(cycle)
        self._run_end: Optional[List[int]] = None  # lazily computed

    @property
    def horizon(self) -> int:
        """Number of explicitly stored rounds."""
        return len(self._rounds)

    def stable_until(self, round_index: int) -> int:
        """End of the run of byte-identical stored rounds containing *r*.

        Computed once by fingerprinting each stored round and merging
        adjacent equal ones; conservative across the cycle wrap (a run
        never extends past the stored horizon).
        """
        if len(self._rounds) == 1:
            return STABLE_FOREVER if self.cycle else round_index
        if self._run_end is None:
            prints = [_graph_fingerprint(arr) for arr in self._rounds]
            run_end = [0] * len(prints)
            end = len(prints) - 1
            for idx in range(len(prints) - 1, -1, -1):
                if idx < len(prints) - 1 and prints[idx] != prints[idx + 1]:
                    end = idx
                run_end[idx] = end
            self._run_end = run_end
        idx = round_index - 1
        if idx >= len(self._rounds):
            if not self.cycle:
                return round_index
            idx %= len(self._rounds)
        return round_index + (self._run_end[idx] - idx)

    def edges(self, round_index: int) -> np.ndarray:
        require_positive_int(round_index, "round_index")
        idx = round_index - 1
        if idx >= len(self._rounds):
            if not self.cycle:
                raise ScheduleError(
                    f"round {round_index} beyond explicit horizon "
                    f"{len(self._rounds)} (pass cycle=True to wrap)"
                )
            idx %= len(self._rounds)
        return self._rounds[idx]


class FunctionSchedule(GraphSchedule):
    """A schedule computed on demand by a pure function of the round index.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    fn:
        ``fn(round_index) -> edges``; must be deterministic (the engine and
        the verifier may both evaluate it for the same round).
    interval:
        The T the generator guarantees.
    stable_until:
        Optional stability hint ``fn(round_index) -> last_stable_round``
        (see :meth:`GraphSchedule.stable_until`); combinators use this to
        propagate the hints of the schedules they wrap.  Subclasses may
        equivalently override the method.
    canonical:
        Promise that *fn* already returns arrays in the exact form
        :func:`canonical_edges` would produce (sorted unique ``u < v``
        int32 rows), letting :meth:`edges` skip the re-canonicalisation
        sort.  Safe because :func:`canonical_edges` is idempotent — a
        wrong promise changes performance characteristics only if the
        promise is *kept*; adversaries set it only for code paths that
        return memoized canonical arrays verbatim.
    """

    def __init__(self, num_nodes: int, fn: Callable[[int], object],
                 interval: Optional[int] = 1,
                 stable_until: Optional[Callable[[int], int]] = None,
                 canonical: bool = False) -> None:
        super().__init__(num_nodes, interval)
        self._fn = fn
        self._stable_until_fn = stable_until
        self._fn_canonical = bool(canonical)
        self._edge_cache: Dict[int, np.ndarray] = {}

    _EDGE_CACHE = 8

    def stable_until(self, round_index: int) -> int:
        if self._stable_until_fn is not None:
            return self._stable_until_fn(round_index)
        return round_index

    def edges(self, round_index: int) -> np.ndarray:
        require_positive_int(round_index, "round_index")
        cached = self._edge_cache.get(round_index)
        if cached is not None:
            return cached
        if self._fn_canonical:
            out = self._fn(round_index)
        else:
            out = canonical_edges(self._fn(round_index), self.num_nodes)
        if len(self._edge_cache) >= self._EDGE_CACHE:
            self._edge_cache.pop(next(iter(self._edge_cache)))
        self._edge_cache[round_index] = out
        return out


class RecordingSchedule(GraphSchedule):
    """Wrapper that records every round it serves, for later verification.

    Wrap any schedule whose generation is *not* replayable (adaptive
    adversaries, schedules driven by external state) so that after a run
    the exact sequence of graphs that occurred can be certified::

        rec = RecordingSchedule(adaptive)
        Simulator(rec, nodes).run(...)
        verify_t_interval_connectivity(rec.to_explicit(), T=1)
    """

    def __init__(self, inner: GraphSchedule) -> None:
        super().__init__(inner.num_nodes, inner.interval)
        self.inner = inner
        self._recorded: Dict[int, np.ndarray] = {}

    def edges(self, round_index: int) -> np.ndarray:
        cached = self._recorded.get(round_index)
        if cached is None:
            cached = self.inner.edges(round_index)
            self._recorded[round_index] = cached
        return cached

    def stable_until(self, round_index: int) -> int:
        """No stability promise: every round must hit :meth:`edges`.

        Forwarding the inner schedule's hint would let the adjacency
        cache skip ``edges`` for stable rounds, leaving gaps in the
        recording (and :meth:`to_explicit` rejects gapped recordings).
        """
        return round_index

    def bind(self, nodes) -> None:
        """Forward engine binding to an adaptive inner schedule."""
        bind = getattr(self.inner, "bind", None)
        if bind is not None:
            bind(nodes)

    def to_explicit(self) -> ExplicitSchedule:
        """Freeze the recorded prefix into an :class:`ExplicitSchedule`."""
        if not self._recorded:
            raise ScheduleError("nothing recorded yet")
        horizon = max(self._recorded)
        missing = [r for r in range(1, horizon + 1) if r not in self._recorded]
        if missing:
            raise ScheduleError(f"recorded rounds have gaps: {missing[:5]} ...")
        return ExplicitSchedule(
            self.num_nodes,
            [self._recorded[r] for r in range(1, horizon + 1)],
            interval=self.interval,
        )
