"""repro — reproduction of "Achieving Sublinear Complexity under Constant T
in T-interval Dynamic Networks" (Hou, Jahja, Sun, Wu, Yu; SPAA 2022).

The package is organised as (see DESIGN.md for the full inventory):

* :mod:`repro.simnet` — the lock-step dynamic-network simulator;
* :mod:`repro.dynamics` — topologies, T-interval adversaries, promise
  verification, dynamic-diameter computation;
* :mod:`repro.baselines` — prior-work algorithms (flooding,
  Kuhn–Lynch–Oshman counting, token dissemination);
* :mod:`repro.core` — the paper's (reconstructed) sublinear Count / Max /
  Consensus algorithms for constant T;
* :mod:`repro.analysis` — complexity predictors, fits, tables, plots;
* :mod:`repro.harness` — experiment runner regenerating every table and
  figure of the (reconstructed) evaluation;
* :mod:`repro.exec` — parallel experiment executor: declarative
  :class:`TrialSpec` trials, a content-addressed result cache, and
  crash-safe resumable sweeps across worker processes;
* :mod:`repro.obs` — structured observability: versioned JSONL event
  streams from any run (decisions, engine-tier dispatch, cache
  counters), free when disabled;
* :mod:`repro.report` — renders ``results/`` into ``docs/RESULTS.md``
  (claim verdicts, scaling fits, row tables), drift-checked in CI.

Quickstart::

    from repro import Simulator, RngRegistry
    from repro.dynamics import OverlapHandoffAdversary
    from repro.core import SublinearMax

    n, T = 64, 2
    sched = OverlapHandoffAdversary(n, T, seed=1)
    nodes = [SublinearMax(i, value=i * 7 % 101) for i in range(n)]
    result = Simulator(sched, nodes, rng=RngRegistry(1)).run(
        max_rounds=10_000, until="quiescent", quiescence_window=32)
    print(result.unanimous_output(), result.rounds)
"""

from .errors import (
    ReproError,
    ConfigurationError,
    ScheduleError,
    IntervalConnectivityError,
    SimulationError,
    BandwidthExceededError,
    NotTerminatedError,
    IncorrectOutputError,
)
from .simnet import (
    Simulator,
    RunResult,
    Algorithm,
    RoundContext,
    RngRegistry,
    TraceRecorder,
)
from .api import solve, SolveResult
from .exec import ParallelExecutor, ResultCache, TrialSpec

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ScheduleError",
    "IntervalConnectivityError",
    "SimulationError",
    "BandwidthExceededError",
    "NotTerminatedError",
    "IncorrectOutputError",
    "Simulator",
    "RunResult",
    "Algorithm",
    "RoundContext",
    "RngRegistry",
    "TraceRecorder",
    "solve",
    "SolveResult",
    "TrialSpec",
    "ParallelExecutor",
    "ResultCache",
    "__version__",
]
