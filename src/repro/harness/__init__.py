"""S7 — experiment harness.

* :mod:`~repro.harness.runner` — generic run-one-trial machinery:
  build schedule + nodes, execute, certify the schedule's T-interval
  promise, check output correctness, extract the measured quantities;
* :mod:`~repro.harness.experiments` — one function per experiment id
  (T1–T3, F1–F6 from DESIGN.md §3), each returning an
  :class:`~repro.harness.experiments.ExperimentResult` with raw rows and
  rendered tables/figures;
* :mod:`~repro.harness.io` — persistence of results (CSV + JSON + the
  rendered text) under a results directory;
* :mod:`~repro.harness.cli` — ``repro-experiments`` entry point that runs
  any subset of experiments and writes everything to disk.

The grid-shaped experiments (T1, F3, F6, X1) describe their trials as
declarative :class:`repro.exec.TrialSpec` cells and route them through
the :mod:`repro.exec` executor, which adds worker processes, a
content-addressed result cache, and crash-safe resume on top of the
same measurement semantics (``--workers/--cache-dir/--resume`` on the
CLI).
"""

from .runner import TrialConfig, TrialResult, run_trial, run_replicates
from .experiments import (
    ExperimentResult,
    EXPERIMENTS,
    run_experiment,
)
from .io import save_experiment, load_rows
from .sweeps import grid_points, sweep, sweep_with_report, aggregate_rows
from .claims import Claim, CLAIMS, check_claims, render_claims

__all__ = [
    "TrialConfig",
    "TrialResult",
    "run_trial",
    "run_replicates",
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "save_experiment",
    "load_rows",
    "grid_points",
    "sweep",
    "sweep_with_report",
    "aggregate_rows",
    "Claim",
    "CLAIMS",
    "check_claims",
    "render_claims",
]
