"""``repro-experiments`` — regenerate the evaluation from the command line.

Examples::

    repro-experiments --quick t1 f1          # fast smoke of two experiments
    repro-experiments --all --out results/   # the full reconstructed eval
    repro-experiments f3 --workers 4 --cache-dir .repro-cache --resume
    repro-experiments --list

``--workers/--cache-dir/--resume`` configure the :mod:`repro.exec`
executor for the grid-shaped experiments (T1, F1, F3, F5, F6, X1): the
measurement cells fan out across worker processes, completed rows are
content-addressed on disk, and an interrupted run re-executes only the
missing cells.  Parallel rows are byte-identical to serial rows.

``--profile`` turns on the engine's per-phase timing (see
``docs/PERFORMANCE.md``): every freshly executed trial contributes
``compose`` / ``reveal`` / ``deliver`` / ``drain`` wall-clock totals to
a process-wide accumulator and an aggregate is printed after each
experiment.  The timings never enter the content-addressed result cache
(they are not deterministic row data).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..exec.executor import ExecOptions
from ..simnet.backends import available_engines, registered_backends
from .experiments import EXPERIMENTS, run_experiment, run_f1, run_f5, run_t1
from .io import save_experiment

__all__ = ["main", "render_engine_list"]


def render_engine_list() -> str:
    """The registered engine backends, one line each (``--list-engines``).

    Lists the selection aliases first, then every registered backend
    with its negotiation priority and the capability flags it declares
    (see ``docs/ENGINES.md``); third-party backends added through
    :func:`repro.simnet.backends.register_backend` appear automatically.
    """
    lines = ["engines: " + " ".join(available_engines())]
    for backend in registered_backends():
        info = backend.describe()
        supports = list(info["supports"])
        tags = []
        if info["auto"]:
            tags.append("auto")
        if info["overlay"]:
            tags.append("overlay")
        tag_text = f" [{', '.join(tags)}]" if tags else ""
        lines.append(
            f"  {info['name']:<12} priority={info['priority']:<3}{tag_text} "
            f"supports: {', '.join(supports) if supports else '(none)'}")
    return "\n".join(lines)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=("Regenerate the tables and figures of the "
                     "reconstructed HJSWY SPAA'22 evaluation."))
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (t1 f1 f2 f3 f4 t2 f5 f6 t3)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--quick", action="store_true",
                        help="shrunken sizes (smoke test)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also save artefacts under DIR")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--claims", action="store_true",
                        help="certify the reproduction claims against "
                             "saved results (use with --out DIR or the "
                             "default results/)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for the experiment grids "
                             "(default 1 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache; reruns "
                             "execute only missing cells")
    parser.add_argument("--resume", action="store_true",
                        help="resume interrupted runs from the journal "
                             "kept under CACHE_DIR")
    parser.add_argument("--profile", action="store_true",
                        help="collect per-phase engine timings "
                             "(compose/reveal/deliver/drain) plus the "
                             "per-tier dispatch counts (batch kernels / "
                             "fast / reference) and print an aggregate "
                             "after each experiment")
    parser.add_argument("--engine", default=None,
                        choices=available_engines(),
                        help="engine for every simulator the experiments "
                             "construct (default: fast, with batch-kernel "
                             "dispatch; all choices produce identical "
                             "results; registered backends appear "
                             "automatically — see --list-engines)")
    parser.add_argument("--list-engines", action="store_true",
                        help="list the registered engine backends with "
                             "their priorities and capability flags, "
                             "then exit")
    parser.add_argument("--events", default=None, metavar="DIR",
                        help="record schema-validated JSONL event streams "
                             "(one trial-*.jsonl per trial) under DIR and "
                             "merge them into DIR/events.jsonl afterwards; "
                             "see docs/OBSERVABILITY.md")
    return parser


def _render_profile() -> str:
    """One-line summary of the process-wide per-phase timing totals."""
    from .runner import engine_totals, phase_totals

    totals, trials = phase_totals()
    if trials == 0:
        return ("[profile] no trials executed (cached/resumed rows carry "
                "no timings; rerun against a cold cache to measure)")
    grand = sum(totals.values()) or 1.0
    parts = ", ".join(
        f"{name} {value:.3f}s ({100 * value / grand:.0f}%)"
        for name, value in sorted(totals.items()))
    line = f"[profile] {trials} trials: {parts}"
    tiers = engine_totals()
    if tiers:
        tier_parts = ", ".join(
            f"{tier} {rounds}" for tier, rounds in sorted(tiers.items()))
        line += f"\n[profile] engine rounds by tier: {tier_parts}"
    return line


def _exec_options(args: argparse.Namespace) -> Optional[ExecOptions]:
    if args.workers <= 1 and not args.cache_dir and not args.resume:
        return None
    if args.resume and not args.cache_dir:
        raise SystemExit("--resume needs --cache-dir (the journal lives "
                         "under the cache directory)")
    journal_dir = None
    if args.cache_dir:
        import os

        journal_dir = os.path.join(args.cache_dir, "journals")
    return ExecOptions(
        workers=args.workers,
        cache_dir=args.cache_dir,
        journal_dir=journal_dir,
        resume=args.resume,
        progress=args.workers > 1,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parser().parse_args(argv)
    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0
    if args.list_engines:
        print(render_engine_list())
        return 0
    if args.claims:
        from .claims import check_claims, render_claims

        results_dir = args.out or "results"
        claims = check_claims(results_dir)
        print(render_claims(claims))
        return 0 if all(c.verdict != "FAILS" for c in claims) else 1
    ids = list(EXPERIMENTS) if args.all else [e.lower() for e in args.experiments]
    if not ids:
        _parser().print_help()
        return 2
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    if args.profile:
        from ..simnet.engine import set_profile_default

        set_profile_default(True)
    if args.engine:
        from ..simnet.engine import set_engine_default

        set_engine_default(args.engine)
    if args.events:
        import os

        from ..obs.recorder import set_events_dir

        os.makedirs(args.events, exist_ok=True)
        set_events_dir(args.events)
    exec_opts = _exec_options(args)

    # T1 feeds F1 and F5; share its rows when several are requested.
    t1_cache = None
    if "t1" in ids or ("f1" in ids and "f5" in ids):
        t1_cache = run_t1(quick=args.quick, exec_opts=exec_opts)

    for exp_id in ids:
        started = time.time()
        if exp_id == "t1" and t1_cache is not None:
            result = t1_cache
        elif exp_id == "f1" and t1_cache is not None:
            result = run_f1(quick=args.quick, t1=t1_cache,
                            exec_opts=exec_opts)
        elif exp_id == "f5" and t1_cache is not None:
            result = run_f5(quick=args.quick, t1=t1_cache,
                            exec_opts=exec_opts)
        else:
            result = run_experiment(exp_id, quick=args.quick,
                                    exec_opts=exec_opts)
        elapsed = time.time() - started
        print(result.render())
        print(f"[{exp_id} finished in {elapsed:.1f}s]\n")
        if args.profile:
            print(_render_profile())
            print()
        if args.out:
            path = save_experiment(result, args.out)
            print(f"[saved to {path}]\n")
    if args.events:
        from ..obs.merge import merge_event_streams

        merged, summary = merge_event_streams(args.events)
        print(f"[events merged to {merged}: {summary.render()}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
