"""``repro-experiments`` — regenerate the evaluation from the command line.

Examples::

    repro-experiments --quick t1 f1          # fast smoke of two experiments
    repro-experiments --all --out results/   # the full reconstructed eval
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS, run_experiment, run_f1, run_f5, run_t1
from .io import save_experiment

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=("Regenerate the tables and figures of the "
                     "reconstructed HJSWY SPAA'22 evaluation."))
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (t1 f1 f2 f3 f4 t2 f5 f6 t3)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--quick", action="store_true",
                        help="shrunken sizes (smoke test)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also save artefacts under DIR")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--claims", action="store_true",
                        help="certify the reproduction claims against "
                             "saved results (use with --out DIR or the "
                             "default results/)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parser().parse_args(argv)
    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0
    if args.claims:
        from .claims import check_claims, render_claims

        results_dir = args.out or "results"
        claims = check_claims(results_dir)
        print(render_claims(claims))
        return 0 if all(c.verdict != "FAILS" for c in claims) else 1
    ids = list(EXPERIMENTS) if args.all else [e.lower() for e in args.experiments]
    if not ids:
        _parser().print_help()
        return 2
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}",
              file=sys.stderr)
        return 2

    # T1 feeds F1 and F5; share its rows when several are requested.
    t1_cache = None
    if "t1" in ids or ("f1" in ids and "f5" in ids):
        t1_cache = run_t1(quick=args.quick)

    for exp_id in ids:
        started = time.time()
        if exp_id == "t1" and t1_cache is not None:
            result = t1_cache
        elif exp_id == "f1" and t1_cache is not None:
            result = run_f1(quick=args.quick, t1=t1_cache)
        elif exp_id == "f5" and t1_cache is not None:
            result = run_f5(quick=args.quick, t1=t1_cache)
        else:
            result = run_experiment(exp_id, quick=args.quick)
        elapsed = time.time() - started
        print(result.render())
        print(f"[{exp_id} finished in {elapsed:.1f}s]\n")
        if args.out:
            path = save_experiment(result, args.out)
            print(f"[saved to {path}]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
