"""Automated claim certification.

The reproduction's headline statements are encoded here as *checkable
claims* over the saved experiment artefacts: ``check_claims(results_dir)``
re-reads the measured rows and verdicts each claim, so "the reproduction
succeeds" is itself a machine-checked statement rather than prose.

Claims (each maps to the abstract or to a lemma in docs/MODEL.md):

=====  ======================================================================
id     statement
=====  ======================================================================
C1     Core Count has no Ω(N) term: fitted exponent < 0.5 on low-d dynamics
       (abstract's headline, from F1)
C2     The KLO baseline pays Θ(N²): fitted exponent in [1.7, 2.3] (F1)
C3     Known-N token dissemination pays ≳ Θ(N): exponent > 0.8 (F1)
C4     Constant T suffices: core Count rounds vary by < 3x across
       T ∈ {1..16} at fixed N (F2)
C5     Core rounds track d: within the proved (1+g)·d + O(1) bound for
       every measured d (F3)
C6     Sketch coverage matches the analytic Gamma tail within 5 points (F4)
C7     Correct under every adversary in the zoo (T2)
C8     Crossover vs KLO at N ≤ 64 (F5)
C9     Sketch messages are N-independent: max message bits constant in N
       while exact-count messages grow (F6)
=====  ======================================================================

A claim whose experiment has not been run is reported ``UNKNOWN`` rather
than failed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .io import load_rows

__all__ = ["Claim", "CLAIMS", "check_claims", "render_claims"]


@dataclass(frozen=True)
class Claim:
    """One certified statement and its verdict."""

    claim_id: str
    statement: str
    verdict: str       # "HOLDS" | "FAILS" | "UNKNOWN"
    evidence: str

    def as_row(self) -> Dict[str, Any]:
        return {
            "claim": self.claim_id,
            "verdict": self.verdict,
            "statement": self.statement,
            "evidence": self.evidence,
        }


def _rows(results_dir: str, exp_id: str) -> Optional[List[Dict[str, Any]]]:
    try:
        return load_rows(results_dir, exp_id)
    except (FileNotFoundError, KeyError):
        return None


def _slope(rows, algorithm) -> Optional[float]:
    for row in rows:
        if row["algorithm"] == algorithm:
            return float(row["exponent_b"])
    return None


def _check_c1(results_dir: str) -> Claim:
    statement = "core Count has no Omega(N) term (F1 exponent < 0.5)"
    rows = _rows(results_dir, "f1")
    if rows is None:
        return Claim("C1", statement, "UNKNOWN", "f1 not run")
    exact = _slope(rows, "exact_count_ours")
    approx = _slope(rows, "approx_count_ours")
    ok = (exact is not None and approx is not None
          and exact < 0.5 and approx < 0.5)
    return Claim("C1", statement, "HOLDS" if ok else "FAILS",
                 f"exponents: exact={exact}, approx={approx}")


def _check_c2(results_dir: str) -> Claim:
    statement = "KLO baseline pays Theta(N^2) (F1 exponent in [1.7, 2.3])"
    rows = _rows(results_dir, "f1")
    if rows is None:
        return Claim("C2", statement, "UNKNOWN", "f1 not run")
    slope = _slope(rows, "klo_count")
    ok = slope is not None and 1.7 <= slope <= 2.3
    return Claim("C2", statement, "HOLDS" if ok else "FAILS",
                 f"exponent={slope}")


def _check_c3(results_dir: str) -> Claim:
    statement = "known-N token dissemination pays >= ~Theta(N) (exponent > 0.8)"
    rows = _rows(results_dir, "f1")
    if rows is None:
        return Claim("C3", statement, "UNKNOWN", "f1 not run")
    slope = _slope(rows, "token_dissemination_knownN")
    ok = slope is not None and slope > 0.8
    return Claim("C3", statement, "HOLDS" if ok else "FAILS",
                 f"exponent={slope}")


def _check_c4(results_dir: str) -> Claim:
    statement = "constant T suffices: core rounds within 3x across T (F2)"
    rows = _rows(results_dir, "f2")
    if rows is None:
        return Claim("C4", statement, "UNKNOWN", "f2 not run")
    ours = [float(r["rounds"]) for r in rows
            if r["algorithm"] == "exact_count_ours"]
    if not ours:
        return Claim("C4", statement, "UNKNOWN", "no core rows in f2")
    ok = max(ours) <= 3 * min(ours)
    return Claim("C4", statement, "HOLDS" if ok else "FAILS",
                 f"rounds across T: min={min(ours):.1f}, max={max(ours):.1f}")


def _check_c5(results_dir: str) -> Claim:
    statement = "core rounds <= (1+growth)*d + O(1) for every measured d (F3)"
    rows = _rows(results_dir, "f3")
    if rows is None:
        return Claim("C5", statement, "UNKNOWN", "f3 not run")
    violations = []
    for row in rows:
        if row["algorithm"] in ("exact_count_ours", "sublinear_max_ours"):
            if float(row["rounds"]) > 3 * float(row["d"]) + 8:
                violations.append((row["algorithm"], row["d"],
                                   row["rounds"]))
    ok = not violations
    return Claim("C5", statement, "HOLDS" if ok else "FAILS",
                 "no violations" if ok else f"violations: {violations[:3]}")


def _check_c6(results_dir: str) -> Claim:
    statement = "sketch coverage matches the exact Gamma tail within 0.05 (F4)"
    rows = _rows(results_dir, "f4")
    if rows is None:
        return Claim("C6", statement, "UNKNOWN", "f4 not run")
    worst = max(abs(float(r["coverage_mc"]) - float(r["coverage_analytic"]))
                for r in rows)
    ok = worst <= 0.05
    return Claim("C6", statement, "HOLDS" if ok else "FAILS",
                 f"worst |measured - analytic| = {worst:.4f}")


def _check_c7(results_dir: str) -> Claim:
    statement = "correct outputs under every adversary in the zoo (T2)"
    rows = _rows(results_dir, "t2")
    if rows is None:
        return Claim("C7", statement, "UNKNOWN", "t2 not run")
    bad = [(r["adversary"], r["problem"]) for r in rows if not r["correct"]]
    ok = not bad
    return Claim("C7", statement, "HOLDS" if ok else "FAILS",
                 f"{len(rows)} adversary×problem cells all correct"
                 if ok else f"incorrect cells: {bad}")


def _check_c8(results_dir: str) -> Claim:
    statement = "crossover vs KLO at N <= 64 (F5)"
    rows = _rows(results_dir, "f5")
    if rows is None:
        return Claim("C8", statement, "UNKNOWN", "f5 not run")
    for row in rows:
        if row["baseline"] == "klo_count":
            x = row["crossover_N_predicted"]
            ok = x is not None and int(x) <= 64
            return Claim("C8", statement, "HOLDS" if ok else "FAILS",
                         f"predicted crossover N = {x}")
    return Claim("C8", statement, "UNKNOWN", "no klo row in f5")


def _check_c9(results_dir: str) -> Claim:
    statement = ("sketch messages N-independent, exact messages grow (F6 "
                 "max_message_bits)")
    rows = _rows(results_dir, "f6")
    if rows is None:
        return Claim("C9", statement, "UNKNOWN", "f6 not run")
    approx = {int(r["n"]): float(r["max_message_bits"]) for r in rows
              if r["algorithm"] == "approx_count_ours"}
    exact = {int(r["n"]): float(r["max_message_bits"]) for r in rows
             if r["algorithm"] == "exact_count_ours"}
    if len(approx) < 2 or len(exact) < 2:
        return Claim("C9", statement, "UNKNOWN", "not enough F6 rows")
    ns = sorted(approx)
    approx_flat = max(approx.values()) <= min(approx.values()) * 1.05
    exact_grows = exact[ns[-1]] > exact[ns[0]] * 1.5
    ok = approx_flat and exact_grows
    return Claim("C9", statement, "HOLDS" if ok else "FAILS",
                 f"approx bits {sorted(approx.values())}, "
                 f"exact bits {sorted(exact.values())}")


#: claim id -> checker over a results directory
CLAIMS: Dict[str, Callable[[str], Claim]] = {
    "C1": _check_c1,
    "C2": _check_c2,
    "C3": _check_c3,
    "C4": _check_c4,
    "C5": _check_c5,
    "C6": _check_c6,
    "C7": _check_c7,
    "C8": _check_c8,
    "C9": _check_c9,
}


def check_claims(results_dir: str) -> List[Claim]:
    """Evaluate every registered claim against saved results."""
    return [checker(results_dir) for checker in CLAIMS.values()]


def render_claims(claims: List[Claim]) -> str:
    """Human-readable claims report."""
    from ..analysis.tables import render_table

    return render_table(
        [c.as_row() for c in claims],
        columns=["claim", "verdict", "statement", "evidence"],
        title="Reproduction claims certification")
