"""Result persistence.

Each experiment's artefacts land under a results directory as::

    results/<exp_id>/rows.csv      raw measured rows
    results/<exp_id>/rows.json     same rows, JSON (types preserved)
    results/<exp_id>/report.txt    rendered tables + ASCII figures

so that EXPERIMENTS.md can reference stable paths and reruns diff cleanly.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from ..analysis.tables import rows_to_csv
from .experiments import ExperimentResult
from .runner import durable_row

__all__ = ["save_experiment", "load_rows"]


def save_experiment(result: ExperimentResult, results_dir: str) -> str:
    """Write the experiment's artefacts; returns the experiment directory.

    Telemetry columns (``phase.*`` timings, ``engine.*`` tier splits,
    ``obs.*`` / ``cache.*`` counters — see
    :data:`repro.harness.runner.NONDURABLE_ROW_PREFIXES`) are stripped
    before persisting, so artefacts — and the generated documents
    checked by ``harness.report --check`` — are identical whether the
    rows came from a fresh profiled/recorded run or a cache hit.
    """
    exp_dir = os.path.join(results_dir, result.exp_id.lower())
    os.makedirs(exp_dir, exist_ok=True)
    rows = [durable_row(row) for row in result.rows]
    with open(os.path.join(exp_dir, "rows.csv"), "w") as fh:
        fh.write(rows_to_csv(rows))
    with open(os.path.join(exp_dir, "rows.json"), "w") as fh:
        json.dump({"exp_id": result.exp_id, "title": result.title,
                   "rows": rows}, fh, indent=2, default=str)
    with open(os.path.join(exp_dir, "report.txt"), "w") as fh:
        fh.write(result.render() + "\n")
    return exp_dir


def load_rows(results_dir: str, exp_id: str) -> List[Dict[str, Any]]:
    """Load a previously saved experiment's rows (JSON, types preserved)."""
    path = os.path.join(results_dir, exp_id.lower(), "rows.json")
    with open(path) as fh:
        return json.load(fh)["rows"]
