"""Experiment definitions T1–T3 / F1–F6 (the reconstructed evaluation).

Each ``run_*`` function regenerates one table or figure from DESIGN.md §3
and returns an :class:`ExperimentResult` holding the raw rows plus
rendered ASCII tables/figures.  ``quick=True`` shrinks sizes for tests
and smoke runs; the benches and the CLI use the full sizes.

Conventions
-----------
* the measured "rounds" of a *stabilizing* algorithm is the round of the
  last final (never-retracted) decision; for halting algorithms it is the
  total rounds executed — both are "time until every node knows the
  answer for good";
* every trial's schedule satisfies a machine-checked T-interval promise
  (the generators are verified in the test suite; adaptive schedules are
  certified post-hoc on their realised prefix);
* inputs are deterministic functions of node ids so oracles are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..analysis.complexity import (
    crossover_n,
    flood_rounds,
    klo_rounds,
    quiescence_rounds_bound,
)
from ..analysis.fitting import power_law_fit
from ..analysis.plotting import ascii_plot
from ..analysis.stats import summarize
from ..analysis.tables import render_table
from ..baselines.klo import KCommitteeCount
from ..baselines.token import RandomTokenDissemination, dissemination_complete
from ..core.approx_count import ApproxCount, ApproxCountKnownBound
from ..core.consensus import SublinearConsensus
from ..core.exact_count import ExactCount
from ..core.max_compute import SublinearMax
from ..core.pipelining import PipelinedApproxCount
from ..core.sketches import (
    ExponentialCountSketch,
    GeometricCountSketch,
    failure_probability,
    required_width,
)
from ..dynamics import (
    AlternatingMatchingsAdversary,
    CutThrottleAdversary,
    EdgeChurnAdversary,
    FreshSpanningAdversary,
    OverlapHandoffAdversary,
    RepairedMobilityAdversary,
    StaticAdversary,
    WindowedThrottleAdversary,
    build_topology,
    dynamic_diameter,
    line_graph,
    random_tree_graph,
    ring_of_cliques,
)
from ..exec.executor import ExecOptions
from ..exec.specs import TrialSpec
from ..simnet.rng import RngRegistry
from .runner import TrialConfig, run_trial

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment"]


@dataclass
class ExperimentResult:
    """Rows + rendered artefacts of one experiment."""

    exp_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    tables: Dict[str, str] = field(default_factory=dict)
    figures: Dict[str, str] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """Everything as one text blob (what the CLI prints)."""
        parts = [f"=== {self.exp_id}: {self.title} ==="]
        if self.notes:
            parts.append(self.notes.strip())
        for name, text in self.tables.items():
            parts.append(f"--- table: {name} ---\n{text}")
        for name, text in self.figures.items():
            parts.append(f"--- figure: {name} ---\n{text}")
        return "\n\n".join(parts)


# --------------------------------------------------------------------------
# shared building blocks
# --------------------------------------------------------------------------

def _value(i: int) -> int:
    """Deterministic node input for Max experiments."""
    return (i * 37) % 1009


def _lowdiam_schedule(n: int, T: int, seed: int) -> OverlapHandoffAdversary:
    """The evaluation's default low-``d`` T-interval adversary."""
    return OverlapHandoffAdversary(n, T, noise_edges=max(1, n // 8), seed=seed)


def _count_oracle(outputs: Dict[int, Any], schedule) -> bool:
    n = schedule.num_nodes
    return len(outputs) == n and all(v == n for v in outputs.values())


def _approx_oracle(eps: float):
    def oracle(outputs: Dict[int, Any], schedule) -> bool:
        n = schedule.num_nodes
        return (len(outputs) == n
                and all(abs(v / n - 1.0) <= eps for v in outputs.values()))
    return oracle


def _max_oracle(outputs: Dict[int, Any], schedule) -> bool:
    n = schedule.num_nodes
    true = max(_value(i) for i in range(n))
    return len(outputs) == n and all(v == true for v in outputs.values())


def _consensus_oracle(outputs: Dict[int, Any], schedule) -> bool:
    n = schedule.num_nodes
    values = set(outputs.values())
    proposals = {f"p{i}" for i in range(n)}
    return (len(outputs) == n and len(values) == 1
            and next(iter(values)) in proposals)


def _measured_rounds(result) -> int:
    """Decision-completion time (see module docstring)."""
    if result.last_decision_round is not None:
        return int(result.last_decision_round)
    return int(result.rounds)


def _row_rounds(row: Dict[str, Any]) -> int:
    """Decision-completion time from a flattened executor row."""
    if row.get("last_decision_round") is not None:
        return int(row["last_decision_round"])
    return int(row["rounds"])


def _execute_cells(cells: List[Tuple[TrialSpec, int]],
                   exec_opts: Optional[ExecOptions],
                   label: str) -> List[Dict[str, Any]]:
    """Run spec cells through the executor (serial when no options).

    ``exec_opts`` carries workers / cache / journal / resume settings
    from the CLI; ``None`` preserves the historical serial behaviour
    (``workers=1``, no cache) with byte-identical rows.
    """
    opts = exec_opts or ExecOptions()
    return opts.make_executor(label).run(cells).rows


def _group_rows(rows: List[Dict[str, Any]],
                *keys: str) -> Dict[tuple, List[Dict[str, Any]]]:
    grouped: Dict[tuple, List[Dict[str, Any]]] = {}
    for row in rows:
        grouped.setdefault(tuple(row[k] for k in keys), []).append(row)
    return grouped


# Count-algorithm registry used by T1/F1/F6/X1.  Each entry builds a
# declarative TrialSpec for a given (n, T) — picklable, so the executor
# can fan the grid across worker processes and content-address the rows.
def _count_specs(T: int) -> Dict[str, Callable[[int], TrialSpec]]:
    def klo(n: int) -> TrialSpec:
        return TrialSpec(
            schedule="lowdiam_handoff", schedule_params={"n": n, "T": T},
            nodes="klo_count", node_params={"n": n},
            max_rounds=2 * klo_rounds(n) + 200,
            until="halted",
            oracle="count_exact",
        )

    def token(n: int) -> TrialSpec:
        return TrialSpec(
            schedule="lowdiam_handoff", schedule_params={"n": n, "T": T},
            nodes="token_dissemination",
            node_params={"n": n, "known_count": True},
            max_rounds=40 * n + 400,
            until="decided",
            oracle="count_exact",
        )

    def exact(n: int) -> TrialSpec:
        return TrialSpec(
            schedule="lowdiam_handoff", schedule_params={"n": n, "T": T},
            nodes="exact_count", node_params={"n": n},
            max_rounds=20 * n + 2000,
            until="quiescent",
            quiescence_window=64,
            oracle="count_exact",
        )

    def approx(n: int) -> TrialSpec:
        return TrialSpec(
            schedule="lowdiam_handoff", schedule_params={"n": n, "T": T},
            nodes="approx_count",
            node_params={"n": n, "eps": 0.25, "delta": 0.05},
            max_rounds=20 * n + 2000,
            until="quiescent",
            quiescence_window=64,
            oracle="count_approx",
            oracle_params={"eps": 0.25},
        )

    return {
        "klo_count": klo,
        "token_dissemination_knownN": token,
        "exact_count_ours": exact,
        "approx_count_ours": approx,
    }


# --------------------------------------------------------------------------
# T1 — headline Count scaling table
# --------------------------------------------------------------------------

def run_t1(quick: bool = False, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """T1: rounds for Count vs ``N`` at constant ``T = 2``, low-``d`` dynamics.

    The measurement grid (algorithm × N × seed) routes through the
    :mod:`repro.exec` executor — *exec_opts* selects worker processes,
    the result cache, and resume; ``None`` runs serially.
    """
    T = 2
    # Top N raised from 256 once the batch-kernel tier made the N=512
    # cells affordable (see docs/PERFORMANCE.md, "Batch kernels").
    ns = [8, 16, 32] if quick else [16, 32, 64, 128, 256, 512]
    klo_cap = 16 if quick else 64
    seeds = [1] if quick else [1, 2, 3]
    algos = _count_specs(T)

    result = ExperimentResult(
        "T1", "Count: rounds vs N at constant T=2 (low-d dynamics)")
    result.notes = (
        "Measured decision-completion rounds; d is the schedule's exact "
        f"dynamic diameter.  KLO is simulated up to N={klo_cap} and "
        "extended by its exact closed-form prediction beyond (the "
        "algorithm is deterministic; predictions equal simulation, "
        "verified by tests).")

    cells = [
        (make(n).with_tags(algorithm=name, n=n), seed)
        for n in ns
        for name, make in algos.items()
        if not (name == "klo_count" and n > klo_cap)
        for seed in seeds
    ]
    grouped = _group_rows(_execute_cells(cells, exec_opts, "t1"),
                          "algorithm", "n")

    for n in ns:
        d_values = []
        for seed in seeds:
            d_values.append(dynamic_diameter(_lowdiam_schedule(n, T, seed)))
        d_mean = float(np.mean(d_values))
        for name in algos:
            if name == "klo_count" and n > klo_cap:
                result.rows.append({
                    "algorithm": name, "n": n, "T": T, "d": d_mean,
                    "rounds": klo_rounds(n), "correct": True,
                    "source": "predicted",
                })
                continue
            measured = grouped[(name, n)]
            rounds = [_row_rounds(r) for r in measured]
            correct = [r["correct"] for r in measured]
            result.rows.append({
                "algorithm": name, "n": n, "T": T, "d": d_mean,
                "rounds": summarize(rounds).mean,
                "correct": all(c for c in correct if c is not None),
                "source": "measured",
            })

    result.tables["t1"] = render_table(
        result.rows,
        columns=["algorithm", "n", "T", "d", "rounds", "correct", "source"],
        title="T1 — Count scaling (rounds to unanimous decision)")
    return result


# --------------------------------------------------------------------------
# F1 — log-log slopes
# --------------------------------------------------------------------------

def run_f1(quick: bool = False,
           t1: Optional[ExperimentResult] = None, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """F1: power-law exponents of the T1 curves (slope in log-log space)."""
    t1 = t1 or run_t1(quick=quick, exec_opts=exec_opts)
    result = ExperimentResult(
        "F1", "Count: log-log scaling exponents (rounds ~ a * N^b)")
    by_algo: Dict[str, Tuple[List[float], List[float]]] = {}
    for row in t1.rows:
        xs, ys = by_algo.setdefault(row["algorithm"], ([], []))
        xs.append(float(row["n"]))
        ys.append(float(row["rounds"]))
    fit_rows = []
    for name, (xs, ys) in by_algo.items():
        fit = power_law_fit(xs, ys)
        fit_rows.append({
            "algorithm": name, "exponent_b": fit.exponent,
            "coefficient_a": fit.coefficient, "r_squared": fit.r_squared,
        })
    result.rows = fit_rows
    result.tables["f1_slopes"] = render_table(
        fit_rows, title="F1 — fitted exponents (KLO ≈ 2, token ≈ 1, ours ≈ o(1))")
    result.figures["f1_loglog"] = ascii_plot(
        {name: series for name, series in by_algo.items()},
        logx=True, logy=True, xlabel="N", ylabel="rounds",
        title="F1 — Count rounds vs N (log-log)")
    result.notes = (
        "Reproduction criterion: the baselines' exponents are >= ~1 "
        "(they carry an Omega(N) term) while the core algorithms' "
        "exponents are near 0 (polylog growth via d = O(log N) on these "
        "dynamics).")
    return result


# --------------------------------------------------------------------------
# F2 — rounds vs T
# --------------------------------------------------------------------------

def run_f2(quick: bool = False, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """F2: rounds vs ``T`` at fixed ``N``.

    Runs serially regardless of *exec_opts*: the throttled-token series
    attaches a ``stop_when`` closure, which cannot cross process
    boundaries (accepted for CLI uniformity).
    """
    n = 24 if quick else 64
    Ts = [1, 2, 4] if quick else [1, 2, 4, 8, 16]
    seeds = [1] if quick else [1, 2, 3, 4, 5]
    result = ExperimentResult("F2", f"Rounds vs T at N={n}")
    series: Dict[str, Tuple[List[float], List[float]]] = {
        "exact_count_ours": ([], []),
        "token_dissem_throttled": ([], []),
        "klo_count": ([], []),
    }
    for T in Ts:
        # Core algorithm on the oblivious handoff adversary: flat in T.
        config = TrialConfig(
            schedule_factory=lambda seed, T=T: _lowdiam_schedule(n, T, seed),
            node_factory=lambda sched, seed: [ExactCount(i) for i in range(n)],
            max_rounds=20 * n + 2000, until="quiescent",
            quiescence_window=64, oracle=_count_oracle)
        ours = [
            _measured_rounds(run_trial(config, seed)) for seed in seeds]
        # KLO: oblivious to T by construction (deterministic prediction).
        klo = klo_rounds(n)
        # Token dissemination against the windowed adaptive throttle:
        # decreasing in T (the N^2/T-flavoured prior-work trade-off).
        token = []
        for seed in seeds:
            config_tok = TrialConfig(
                schedule_factory=lambda s, T=T: WindowedThrottleAdversary(n, T),
                node_factory=lambda sched, seed: [
                    RandomTokenDissemination(i) for i in range(n)],
                max_rounds=200 * n * n, until="halted",
                allow_timeout=True)
            # stop when dissemination completes (oracle stop).
            config_tok.stop_when = (
                lambda sim: dissemination_complete(sim.nodes, n))
            token.append(run_trial(config_tok, seed).rounds)
        for T_, name, values in [
            (T, "exact_count_ours", ours),
            (T, "token_dissem_throttled", token),
            (T, "klo_count", [klo]),
        ]:
            s = summarize([float(v) for v in values])
            result.rows.append({
                "algorithm": name, "T": T_, "n": n, "rounds": s.mean,
                "rounds_std": s.std,
            })
            xs, ys = series[name]
            xs.append(float(T_))
            ys.append(s.mean)
    result.tables["f2"] = render_table(
        result.rows, title=f"F2 — rounds vs T (N={n}, mean of {len(seeds)} seeds)")
    result.figures["f2"] = ascii_plot(
        series, logx=True, logy=True, xlabel="T", ylabel="rounds",
        title="F2 — rounds vs T")
    result.notes = (
        "Ours is flat in T (already sublinear at T=1..2, the abstract's "
        "'constant T' claim); KLO cannot exploit T.  The throttled "
        "token-dissemination series probes the prior-work N^2/T "
        "trade-off with a simple windowed adaptive adversary; its "
        "T-dependence is weak and noisy — the true Omega(N*k/T) lower "
        "bound (Dutta et al., SODA'13) needs a charging-argument "
        "adversary this simulation does not implement — so only the "
        "direction, not the 1/T shape, should be read from that series.")
    return result


# --------------------------------------------------------------------------
# F3 — rounds vs dynamic diameter d
# --------------------------------------------------------------------------

def run_f3(quick: bool = False, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """F3: rounds vs ``d`` at fixed ``N`` (ring-of-cliques sweep).

    The largest grid of the evaluation (11 clique counts × 2 algorithms
    × 3 seeds + predictions = 45 full-size rows); *exec_opts* fans the
    measured cells across worker processes — see ``docs/EXECUTOR.md``.
    """
    n = 48 if quick else 192
    cliques = [2, 4, 8] if quick else [2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 96]
    seeds = [1] if quick else [1, 2, 3]
    result = ExperimentResult("F3", f"Rounds vs dynamic diameter d at N={n}")
    series: Dict[str, Tuple[List[float], List[float]]] = {
        "exact_count_ours": ([], []),
        "sublinear_max_ours": ([], []),
        "flood_max_knownN": ([], []),
        "bound_3d+2": ([], []),
    }

    def count_spec(m: int) -> TrialSpec:
        return TrialSpec(
            schedule="static_ring_of_cliques",
            schedule_params={"n": n, "num_cliques": m},
            nodes="exact_count", node_params={"n": n},
            max_rounds=40 * n + 4000, until="quiescent",
            quiescence_window=64, oracle="count_exact",
            tags={"algorithm": "exact_count_ours", "num_cliques": m})

    def max_spec(m: int) -> TrialSpec:
        return TrialSpec(
            schedule="static_ring_of_cliques",
            schedule_params={"n": n, "num_cliques": m},
            nodes="sublinear_max_modvalue", node_params={"n": n},
            max_rounds=40 * n + 4000, until="quiescent",
            quiescence_window=64, oracle="max_modvalue",
            tags={"algorithm": "sublinear_max_ours", "num_cliques": m})

    cells = [
        (spec, seed)
        for m in cliques
        for spec in (count_spec(m), max_spec(m))
        for seed in seeds
    ]
    grouped = _group_rows(_execute_cells(cells, exec_opts, "f3"),
                          "algorithm", "num_cliques")

    for m in cliques:
        d = dynamic_diameter(StaticAdversary(n, ring_of_cliques(n, m)))
        count_rounds = [
            _row_rounds(r) for r in grouped[("exact_count_ours", m)]]
        max_rounds_ = [
            _row_rounds(r) for r in grouped[("sublinear_max_ours", m)]]

        rows_local = [
            ("exact_count_ours", summarize([float(v) for v in count_rounds]).mean),
            ("sublinear_max_ours", summarize([float(v) for v in max_rounds_]).mean),
            ("flood_max_knownN", float(flood_rounds(n))),
            ("bound_3d+2", float(quiescence_rounds_bound(d))),
        ]
        for name, rounds in rows_local:
            result.rows.append({
                "algorithm": name, "n": n, "num_cliques": m, "d": d,
                "rounds": rounds,
            })
            xs, ys = series[name]
            xs.append(float(d))
            ys.append(rounds)
    result.tables["f3"] = render_table(
        result.rows, title=f"F3 — rounds vs d (N={n} fixed)")
    result.figures["f3"] = ascii_plot(
        series, xlabel="d", ylabel="rounds",
        title="F3 — rounds vs dynamic diameter")
    result.notes = (
        "Core algorithms scale linearly in d and stay below the proved "
        "(1+growth)d+O(1) bound; the known-N flooding baseline pays N-1 "
        "regardless of d.  At d close to N the curves meet — exactly the "
        "Omega(N)-when-d=Theta(N) lower-bound regime (static line).")
    return result


# --------------------------------------------------------------------------
# F4 — approximate-count accuracy
# --------------------------------------------------------------------------

def run_f4(quick: bool = False, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """F4: sketch accuracy/coverage vs ε (full-sim + direct Monte Carlo).

    Runs serially regardless of *exec_opts*: trials share pre-built
    schedule objects and the Monte Carlo pass dominates anyway.
    """
    n = 32 if quick else 64
    T = 2
    eps_list = [0.5, 0.25] if quick else [0.5, 0.25, 0.1]
    sim_trials = 4 if quick else 30
    mc_trials = 2000 if quick else 20000
    delta = 0.1
    rng = np.random.default_rng(2026)
    result = ExperimentResult(
        "F4", "Approximate Count: relative error and coverage vs epsilon")
    for eps in eps_list:
        width = required_width(eps, delta)
        # Full network simulations (halting variant for speed): the
        # believed-global minima equal the true minima, so sim and MC
        # agree; the sim trials certify the protocol plumbing.
        sim_errors = []
        for t in range(sim_trials):
            sched = _lowdiam_schedule(n, T, 100 + t)
            d = dynamic_diameter(sched)
            config = TrialConfig(
                schedule_factory=lambda seed, sched=sched: sched,
                node_factory=lambda s, seed, width=width: [
                    ApproxCountKnownBound(i, rounds_bound=d + 2, width=width)
                    for i in range(n)],
                max_rounds=d + 3, until="halted")
            tr = run_trial(config, 500 + t)
            sim_errors.append(abs(tr.outputs_sample / n - 1.0))
        # Direct Monte Carlo of the estimator (no network needed).
        draws = rng.exponential(1.0, size=(mc_trials, n, width))
        estimates = (width - 1) / draws.min(axis=1).sum(axis=1)
        mc_err = np.abs(estimates / n - 1.0)
        result.rows.append({
            "eps": eps, "delta": delta, "width": width,
            "mean_rel_err_sim": float(np.mean(sim_errors)),
            "mean_rel_err_mc": float(mc_err.mean()),
            "p95_rel_err_mc": float(np.quantile(mc_err, 0.95)),
            "coverage_mc": float((mc_err <= eps).mean()),
            "coverage_analytic": 1.0 - failure_probability(width, eps),
            "sim_trials": sim_trials, "mc_trials": mc_trials,
        })
    result.tables["f4"] = render_table(
        result.rows, title=f"F4 — accuracy at N={n} (target coverage {1-delta})")
    result.notes = (
        "Coverage (fraction of trials within (1±eps)N) matches the exact "
        "Gamma-tail analytic prediction; in-network minima equal direct "
        "minima, so the large-trial Monte Carlo extends the full "
        "simulations faithfully.")
    return result


# --------------------------------------------------------------------------
# T2 — adversary robustness for Max & Consensus
# --------------------------------------------------------------------------

def _t2_adversaries(n: int) -> Dict[str, Callable[[int], object]]:
    tree_rng = np.random.default_rng(7)
    tree = random_tree_graph(n, tree_rng)
    return {
        "static_line": lambda seed: StaticAdversary(n, line_graph(n)),
        "static_expander": lambda seed: StaticAdversary(
            n, build_topology("expander", n, np.random.default_rng(seed))),
        "fresh_random": lambda seed: FreshSpanningAdversary(n, seed=seed),
        "handoff_T2": lambda seed: OverlapHandoffAdversary(n, 2, seed=seed),
        "alternating": lambda seed: AlternatingMatchingsAdversary(n),
        "churn": lambda seed: EdgeChurnAdversary(n, tree, seed=seed),
        "mobility_T2": lambda seed: RepairedMobilityAdversary(
            n, T=2, seed=seed),
        "adaptive_throttle": lambda seed: CutThrottleAdversary(
            n, key=lambda node: float(getattr(node, "progress", 0.0))),
    }


def run_t2(quick: bool = False, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """T2: Max / Consensus / Count across the adversary zoo.

    Runs serially regardless of *exec_opts*: the adaptive adversaries
    carry lambda keys that cannot be pickled into worker processes.
    """
    n = 24 if quick else 96
    seeds = [1] if quick else [1, 2, 3]
    result = ExperimentResult("T2", f"Adversary robustness at N={n}")
    problems: Dict[str, Tuple[Callable, Callable, Callable]] = {
        # name -> (node_factory, oracle, baseline_rounds)
        "max_ours": (
            lambda sched, seed: [SublinearMax(i, _value(i))
                                 for i in range(n)],
            _max_oracle, lambda: flood_rounds(n)),
        "consensus_ours": (
            lambda sched, seed: [SublinearConsensus(i, f"p{i}")
                                 for i in range(n)],
            _consensus_oracle, lambda: flood_rounds(n)),
        "count_ours": (
            lambda sched, seed: [ExactCount(i) for i in range(n)],
            _count_oracle, lambda: klo_rounds(n)),
    }
    for adv_name, factory in _t2_adversaries(n).items():
        for prob_name, (node_factory, oracle, baseline) in problems.items():
            rounds, correct, d_obs = [], [], []
            for seed in seeds:
                config = TrialConfig(
                    schedule_factory=factory,
                    node_factory=node_factory,
                    max_rounds=60 * n + 4000, until="quiescent",
                    quiescence_window=max(64, n // 2), oracle=oracle)
                tr = run_trial(config, seed)
                rounds.append(_measured_rounds(tr))
                correct.append(tr.correct)
                sched = factory(seed)
                if hasattr(sched, "_recorded") or hasattr(sched, "decide_edges"):
                    d_obs.append(None)  # adaptive: d defined post-hoc
                else:
                    d_obs.append(dynamic_diameter(sched))
            ds = [x for x in d_obs if x is not None]
            result.rows.append({
                "adversary": adv_name, "problem": prob_name,
                "d": (float(np.mean(ds)) if ds else None),
                "rounds": summarize([float(v) for v in rounds]).mean,
                "baseline_rounds": float(baseline()),
                "correct": all(correct),
            })
    result.tables["t2"] = render_table(
        result.rows, title=f"T2 — rounds across adversaries (N={n})")
    result.notes = (
        "All runs correct under every adversary.  Low-d schedules finish "
        "in ~3d rounds, far below the known-N baselines; the static line "
        "and the adaptive throttle realise d = Theta(N), where ours "
        "degrades to Theta(N) — matching the information-propagation "
        "lower bound, not a deficiency of the algorithm.")
    return result


# --------------------------------------------------------------------------
# F5 — crossover points
# --------------------------------------------------------------------------

def run_f5(quick: bool = False,
           t1: Optional[ExperimentResult] = None, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """F5: smallest N at which the core Count beats each baseline."""
    t1 = t1 or run_t1(quick=quick, exec_opts=exec_opts)
    result = ExperimentResult(
        "F5", "Crossover: smallest N where ours beats each baseline")
    ours_rows = [r for r in t1.rows if r["algorithm"] == "exact_count_ours"]
    ns = [r["n"] for r in ours_rows]
    ds = [r["d"] for r in ours_rows]
    rounds = [r["rounds"] for r in ours_rows]
    # Calibrate ours: rounds ≈ alpha * d, d ≈ beta * log2(N) on these dynamics.
    alpha = float(np.mean([rd / d for rd, d in zip(rounds, ds)]))
    beta = float(np.mean([d / math.log2(n_) for d, n_ in zip(ds, ns)]))

    def ours_model(n_: int) -> float:
        return alpha * beta * math.log2(max(2, n_))

    baselines: Dict[str, Callable[[int], float]] = {
        "klo_count": lambda n_: float(klo_rounds(n_)),
        "flooding_knownN": lambda n_: float(flood_rounds(n_)),
    }
    for name, model in baselines.items():
        predicted = crossover_n(ours_model, model, n_min=2)
        # Measured crossover from the T1 rows, when visible in range.
        measured = None
        for r_ours in ours_rows:
            base_row = next(
                (r for r in t1.rows
                 if r["algorithm"] == ("klo_count" if name == "klo_count"
                                       else "token_dissemination_knownN")
                 and r["n"] == r_ours["n"]), None)
            if base_row and r_ours["rounds"] < base_row["rounds"]:
                measured = r_ours["n"]
                break
        result.rows.append({
            "baseline": name,
            "ours_model": f"{alpha:.2f} * {beta:.2f} * log2(N)",
            "crossover_N_predicted": predicted,
            "crossover_N_measured_at_most": measured,
        })
    result.tables["f5"] = render_table(
        result.rows, title="F5 — crossover points")
    result.notes = (
        "The calibrated ours-model alpha*beta*log2(N) crosses below the "
        "Theta(N^2) KLO curve at single-digit N and below the Theta(N) "
        "flooding curve shortly after — consistent with the measured "
        "rows, where ours already wins at the smallest simulated sizes.")
    return result


# --------------------------------------------------------------------------
# F6 — bit complexity
# --------------------------------------------------------------------------

def run_f6(quick: bool = False, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """F6: total transmitted bits and max message size per algorithm."""
    T = 2
    ns = [16, 32] if quick else [32, 64, 128]
    seeds = [1] if quick else [1, 2]
    result = ExperimentResult(
        "F6", "Bit complexity: total broadcast bits and max message size")

    def pipelined(n: int) -> TrialSpec:
        return TrialSpec(
            schedule="lowdiam_handoff", schedule_params={"n": n, "T": T},
            nodes="pipelined_approx_count",
            node_params={"n": n, "words_per_message": 4, "width": 40,
                         "strategy": "greedy"},
            max_rounds=40 * n + 4000, until="quiescent",
            quiescence_window=64)

    def pipelined_exact(n: int) -> TrialSpec:
        return TrialSpec(
            schedule="lowdiam_handoff", schedule_params={"n": n, "T": T},
            nodes="pipelined_exact_count",
            node_params={"n": n, "ids_per_message": 4},
            max_rounds=80 * n + 8000, until="quiescent",
            quiescence_window=96, oracle="count_exact")

    algos = dict(_count_specs(T))
    algos["pipelined_approx_w4"] = pipelined
    algos["pipelined_exact_w4"] = pipelined_exact
    klo_cap = 16 if quick else 32
    cells = [
        (make(n).with_tags(algorithm=name, n=n), seed)
        for n in ns
        for name, make in algos.items()
        if not (name == "klo_count" and n > klo_cap)
        for seed in seeds
    ]
    grouped = _group_rows(_execute_cells(cells, exec_opts, "f6"),
                          "algorithm", "n")
    for n in ns:
        for name in algos:
            if name == "klo_count" and n > klo_cap:
                continue
            measured = grouped[(name, n)]
            bits = [r["broadcast_bits"] for r in measured]
            maxbits = [r["max_message_bits"] for r in measured]
            rounds = [_row_rounds(r) for r in measured]
            result.rows.append({
                "algorithm": name, "n": n,
                "rounds": summarize([float(v) for v in rounds]).mean,
                "total_broadcast_bits": summarize(
                    [float(v) for v in bits]).mean,
                "max_message_bits": max(maxbits),
            })
    result.tables["f6"] = render_table(
        result.rows, title="F6 — bit complexity (T=2, low-d dynamics)")
    result.notes = (
        "Exact variants (ours and KLO) ship Theta(N log N)-bit sets; the "
        "sketch variants cap messages at O(eps^-2) words independent of "
        "N, and the pipelined variant respects a hard 4-words-per-message "
        "budget — the bandwidth/rounds trade-off of ablation T3(d).")
    return result


# --------------------------------------------------------------------------
# T3 — ablations
# --------------------------------------------------------------------------

def run_t3(quick: bool = False, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """T3: ablations of the reconstruction's design choices.

    Runs serially regardless of *exec_opts* (mixed simulation /
    closed-form / Monte Carlo rows).
    """
    n = 24 if quick else 96
    T = 2
    seeds = [1] if quick else [1, 2, 3]
    result = ExperimentResult("T3", f"Ablations at N={n}, T={T}")

    # (a)+(b) controller knobs: growth and initial window.
    for growth in [2, 4, 8]:
        for init in [1, 8]:
            rounds, retr = [], []
            for seed in seeds:
                config = TrialConfig(
                    schedule_factory=lambda s: _lowdiam_schedule(n, T, s),
                    node_factory=lambda sched, s, g=growth, iw=init: [
                        ExactCount(i, initial_window=iw, window_growth=g)
                        for i in range(n)],
                    max_rounds=40 * n + 4000, until="quiescent",
                    quiescence_window=64, oracle=_count_oracle)
                tr = run_trial(config, seed)
                rounds.append(_measured_rounds(tr))
                retr.append(tr.counters.get("retractions", 0))
            result.rows.append({
                "ablation": "controller", "variant":
                    f"growth={growth},init_window={init}",
                "rounds": summarize([float(v) for v in rounds]).mean,
                "retractions": summarize([float(v) for v in retr]).mean,
                "metric": "decision rounds / total retractions",
            })

    # (c) sketch family at equal width.
    width = 64
    rng = np.random.default_rng(11)
    for family, sk in [("exponential", ExponentialCountSketch(width)),
                       ("geometric", GeometricCountSketch(width))]:
        errs = []
        trials = 200 if quick else 2000
        for _ in range(trials):
            draws = np.stack([sk.draw(rng) for _ in range(n)])
            est = sk.estimate(draws.min(axis=0))
            errs.append(abs(est / n - 1.0))
        result.rows.append({
            "ablation": "sketch_family", "variant": family,
            "rounds": None,
            "retractions": None,
            "metric": f"mean rel err={float(np.mean(errs)):.3f} "
                      f"(width {width}, {sk.message_bits()} bits/msg)",
        })

    # (c2) KLO guess-growth: the baseline has the same knob; its exact
    # closed form lets us ablate it without simulation.
    from ..baselines.klo import total_rounds_prediction

    n_klo = 64 if quick else 256
    for growth in [2, 3, 4, 8]:
        result.rows.append({
            "ablation": "klo_guess_growth", "variant": f"growth={growth}",
            "rounds": float(total_rounds_prediction(n_klo,
                                                    guess_growth=growth)),
            "retractions": None,
            "metric": f"exact closed-form rounds at N={n_klo}",
        })

    # (d) pipelining strategy under a 4-word budget.
    for strategy in ["tdm", "greedy"]:
        rounds = []
        for seed in seeds:
            config = TrialConfig(
                schedule_factory=lambda s: _lowdiam_schedule(n, T, s),
                node_factory=lambda sched, s, strat=strategy: [
                    PipelinedApproxCount(i, words_per_message=4, width=40,
                                         strategy=strat)
                    for i in range(n)],
                max_rounds=100 * n + 8000, until="quiescent",
                quiescence_window=80)
            rounds.append(_measured_rounds(run_trial(config, seed)))
        result.rows.append({
            "ablation": "pipelining", "variant": strategy,
            "rounds": summarize([float(v) for v in rounds]).mean,
            "retractions": None,
            "metric": "decision rounds under 4-word budget",
        })

    result.tables["t3"] = render_table(
        result.rows,
        columns=["ablation", "variant", "rounds", "retractions", "metric"],
        title="T3 — ablations")
    result.notes = (
        "Larger controller growth trades retractions for a longer final "
        "wait; the exponential sketch dominates the geometric one at "
        "equal width; greedy pipelining beats TDM by keeping fresh "
        "improvements on the wire.")
    return result


# --------------------------------------------------------------------------
# X1 — the cost of halting (extension, DESIGN.md S8)
# --------------------------------------------------------------------------

def run_x1(quick: bool = False, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """X1: halting-guarantee ladder for zero-knowledge exact Count.

    Three algorithms, all knowing nothing, all outputting exact counts:
    stabilizing ``O(d)`` (ExactCount), halting-w.h.p. ``O(N)``
    (HybridCount), halting-deterministic ``Θ(N²)`` (KLO) — each step up
    in termination strength costs roughly a factor of the next scale
    parameter.
    """
    T = 2
    ns = [8, 16, 32] if quick else [16, 32, 64, 128]
    klo_cap = 16 if quick else 64
    seeds = [1] if quick else [1, 2, 3]
    result = ExperimentResult(
        "X1", "The cost of halting: exact Count with zero knowledge")

    def hybrid(n: int) -> TrialSpec:
        return TrialSpec(
            schedule="lowdiam_handoff", schedule_params={"n": n, "T": T},
            nodes="hybrid_count", node_params={"n": n},
            max_rounds=10 * n + 400, until="halted",
            oracle="count_exact")

    algos = {
        "exact_count_stabilizing": _count_specs(T)["exact_count_ours"],
        "hybrid_count_halting_whp": hybrid,
        "klo_halting_deterministic": _count_specs(T)["klo_count"],
    }
    guarantee = {
        "exact_count_stabilizing": "stabilizing, O(d)",
        "hybrid_count_halting_whp": "halting w.h.p., O(N)",
        "klo_halting_deterministic": "halting deterministic, Theta(N^2)",
    }
    cells = [
        (make(n).with_tags(algorithm=name, n=n), seed)
        for n in ns
        for name, make in algos.items()
        if not (name == "klo_halting_deterministic" and n > klo_cap)
        for seed in seeds
    ]
    grouped = _group_rows(_execute_cells(cells, exec_opts, "x1"),
                          "algorithm", "n")
    for n in ns:
        for name in algos:
            if name == "klo_halting_deterministic" and n > klo_cap:
                result.rows.append({
                    "algorithm": name, "n": n,
                    "guarantee": guarantee[name],
                    "rounds": klo_rounds(n), "correct": True,
                    "source": "predicted"})
                continue
            measured = grouped[(name, n)]
            rounds = [_row_rounds(r) for r in measured]
            correct = [r["correct"] for r in measured]
            result.rows.append({
                "algorithm": name, "n": n,
                "guarantee": guarantee[name],
                "rounds": summarize([float(v) for v in rounds]).mean,
                "correct": all(c for c in correct if c is not None),
                "source": "measured"})
    result.tables["x1"] = render_table(
        result.rows,
        columns=["algorithm", "n", "guarantee", "rounds", "correct",
                 "source"],
        title="X1 — termination-strength ladder (T=2, low-d dynamics)")
    result.notes = (
        "Extension beyond the abstract's scope (DESIGN.md S8): the "
        "sketch machinery yields a halting, zero-knowledge, w.h.p.-exact "
        "Count in ~1.5N rounds — a factor-N improvement over the "
        "deterministic-halting KLO baseline — while the stabilizing "
        "variant stays at O(d).  Each step up in termination strength "
        "costs about one scale factor.")
    return result


# --------------------------------------------------------------------------
# X2 — robustness under message loss (extension, DESIGN.md S8)
# --------------------------------------------------------------------------

def run_x2(quick: bool = False, *,
           exec_opts: Optional[ExecOptions] = None) -> ExperimentResult:
    """X2: behaviour beyond the promise — random message loss.

    Loss silently weakens the adversary's promise (the effective graph
    is a random subgraph of the promised one).  Measured: the stabilizing
    core stays exact and merely slows down smoothly with the loss rate;
    the halting known-bound variant, whose correctness *was* the promise,
    collapses.
    """
    from ..simnet.engine import Simulator as _Sim

    n = 24 if quick else 64
    T = 2
    losses = [0.0, 0.3, 0.6] if quick else [0.0, 0.2, 0.4, 0.6, 0.8]
    seeds = [1] if quick else [1, 2, 3]
    result = ExperimentResult(
        "X2", f"Robustness under message loss at N={n}")
    for loss in losses:
        stab_rounds, stab_ok = [], []
        kb_ok = []
        tier_rounds = {"batch": 0, "fast": 0, "reference": 0}
        for seed in seeds:
            sched = _lowdiam_schedule(n, T, seed)
            d = dynamic_diameter(sched)
            nodes = [ExactCount(i) for i in range(n)]
            sim = _Sim(sched, nodes, rng=RngRegistry(seed + 10),
                       loss_rate=loss)
            res = sim.run(
                max_rounds=200 * n + 8000, until="quiescent",
                quiescence_window=max(96, n))
            stab_rounds.append(res.metrics.last_decision_round)
            stab_ok.append(all(v == n for v in res.outputs.values()))
            for tier, count in sim._tier_rounds.items():
                tier_rounds[tier] = tier_rounds.get(tier, 0) + count

            from ..core.exact_count import ExactCountKnownBound
            nodes_kb = [ExactCountKnownBound(i, rounds_bound=2 * d)
                        for i in range(n)]
            sim_kb = _Sim(sched, nodes_kb, rng=RngRegistry(seed + 10),
                          loss_rate=loss)
            kb_ok.append(all(
                v == n
                for v in sim_kb.run(max_rounds=2 * d + 1).outputs.values()))
            for tier, count in sim_kb._tier_rounds.items():
                tier_rounds[tier] = tier_rounds.get(tier, 0) + count
        result.rows.append({
            "loss_rate": loss,
            "stabilizing_rounds": summarize(
                [float(v) for v in stab_rounds]).mean,
            "stabilizing_correct": all(stab_ok),
            "known_bound_2d_correct": all(kb_ok),
            # Which dispatch tier executed the rounds behind this row —
            # the loss-capable batch kernels should carry the lossy load
            # (summed over both algorithm variants and all seeds).
            "batch_rounds": tier_rounds["batch"],
            "fast_rounds": tier_rounds["fast"],
            "reference_rounds": tier_rounds["reference"],
        })
    result.tables["x2"] = render_table(
        result.rows, title=f"X2 — message loss (N={n}, T={T})")
    result.notes = (
        "Extension beyond the paper's fault-free model (engine "
        "loss_rate): the stabilizing algorithms' correctness never "
        "depended on the promise holding exactly — only on information "
        "eventually flowing — so they stay exact and degrade smoothly in "
        "rounds; the halting known-bound variant silently returns wrong "
        "counts once the promise its bound encoded is violated.")
    return result


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "t1": run_t1,
    "f1": run_f1,
    "f2": run_f2,
    "f3": run_f3,
    "f4": run_f4,
    "t2": run_t2,
    "f5": run_f5,
    "f6": run_f6,
    "t3": run_t3,
    "x1": run_x1,
    "x2": run_x2,
}


def run_experiment(exp_id: str, quick: bool = False,
                   exec_opts: Optional[ExecOptions] = None
                   ) -> ExperimentResult:
    """Run the experiment with the given id (case-insensitive).

    *exec_opts* configures the :mod:`repro.exec` executor (workers,
    result cache, resume) for the experiments whose grids route through
    it; ``None`` preserves the historical serial behaviour.
    """
    key = exp_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key](quick=quick, exec_opts=exec_opts)
