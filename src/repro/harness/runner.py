"""Generic trial execution.

A *trial* is one simulation: a schedule factory, a node factory, stop
configuration, and an optional correctness oracle.  :func:`run_trial`
executes it and returns a :class:`TrialResult` with the standard measured
quantities (rounds, last-final-decision round, bits, correctness);
:func:`run_replicates` repeats over seeds.

The measured quantity of record for stabilizing algorithms is
``last_decision_round`` — the round in which the last node fixed the
decision it never retracted (see :mod:`repro.core.termination`); for
halting algorithms it coincides with the total rounds executed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Mapping,
                    Optional, Sequence, Tuple, Union)

from ..obs import events as obs_events
from ..obs.recorder import Recorder, events_dir
from ..simnet.engine import RunResult, Simulator
from ..simnet.node import Algorithm
from ..simnet.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..exec.specs import TrialSpec

__all__ = ["TrialConfig", "TrialResult", "run_trial", "run_replicates",
           "record_phase_seconds", "phase_totals", "reset_phase_totals",
           "record_engine_stats", "engine_totals", "reset_engine_totals",
           "NONDURABLE_ROW_PREFIXES", "durable_row"]

#: Row-column prefixes that are run-mode telemetry, not measured data:
#: wall-clock ``phase.*`` timings, ``engine.*`` dispatch-tier round
#: splits, ``obs.*`` event-stream counters, and ``cache.*`` hit/miss
#: counters.  The executor strips them before a row enters the journal
#: or the content-addressed result cache, and ``save_experiment``
#: strips them from persisted artefacts, so a cache-hit rerun and a
#: fresh (profiled or recorded) run produce byte-identical artefacts —
#: the equality ``harness.report --check`` relies on.
NONDURABLE_ROW_PREFIXES = ("phase.", "engine.", "obs.", "cache.")


def durable_row(row: Mapping[str, Any]) -> Dict[str, Any]:
    """*row* without telemetry columns (the same object when clean).

    Strips every :data:`NONDURABLE_ROW_PREFIXES` column; rows that carry
    none are returned as-is (no copy) so the common unprofiled,
    unrecorded path stays allocation-free.
    """
    if any(key.startswith(NONDURABLE_ROW_PREFIXES) for key in row):
        return {key: value for key, value in row.items()
                if not key.startswith(NONDURABLE_ROW_PREFIXES)}
    return row if isinstance(row, dict) else dict(row)

# Process-wide accumulation of per-phase engine timings (profiled runs
# only).  Every profiled trial executed in this process feeds it via
# run_trial; the executor additionally feeds it with rows returned from
# worker processes.  The CLI's --profile flag renders the totals after
# each experiment — per-trial timings never enter the content-addressed
# result cache (wall-clock values are not deterministic row data).
_PHASE_TOTALS: Dict[str, float] = {}
_PHASE_TRIALS = 0


def record_phase_seconds(
        phase_seconds: Optional[Mapping[str, float]]) -> None:
    """Add one profiled trial's per-phase timings to the process totals."""
    global _PHASE_TRIALS
    if not phase_seconds:
        return
    _PHASE_TRIALS += 1
    for name, seconds in phase_seconds.items():
        _PHASE_TOTALS[name] = _PHASE_TOTALS.get(name, 0.0) + float(seconds)


def phase_totals() -> Tuple[Dict[str, float], int]:
    """``(accumulated per-phase seconds, number of profiled trials)``."""
    return dict(_PHASE_TOTALS), _PHASE_TRIALS


def reset_phase_totals() -> None:
    """Clear the process-wide phase-timing accumulator."""
    global _PHASE_TRIALS
    _PHASE_TOTALS.clear()
    _PHASE_TRIALS = 0


# Same pattern for the engine's per-tier round counts (batch kernels /
# per-node fast path / reference loops): profiled trials report them via
# RunMetrics.engine_stats, the CLI renders the dispatch split so a
# "kernels are engaging" sanity check is one --profile run away.
_ENGINE_TOTALS: Dict[str, int] = {}


def record_engine_stats(engine_stats: Optional[Mapping[str, int]]) -> None:
    """Add one profiled trial's per-tier round counts to process totals."""
    if not engine_stats:
        return
    for tier, rounds in engine_stats.items():
        _ENGINE_TOTALS[tier] = _ENGINE_TOTALS.get(tier, 0) + int(rounds)


def engine_totals() -> Dict[str, int]:
    """Accumulated rounds executed per engine dispatch tier."""
    return dict(_ENGINE_TOTALS)


def reset_engine_totals() -> None:
    """Clear the process-wide engine-tier accumulator."""
    _ENGINE_TOTALS.clear()


ScheduleFactory = Callable[[int], object]         # seed -> schedule
NodeFactory = Callable[[object, int], Sequence[Algorithm]]  # (schedule, seed) -> nodes
Oracle = Callable[[Dict[int, Any], object], bool]  # (outputs, schedule) -> ok

#: Anything :func:`run_trial` accepts: a lambda-based config or a
#: declarative, picklable spec (see :mod:`repro.exec.specs`).
TrialLike = Union["TrialConfig", "TrialSpec"]


@dataclass
class TrialConfig:
    """Everything needed to run one simulation trial.

    Attributes
    ----------
    schedule_factory:
        ``seed -> schedule``; called once per trial.
    node_factory:
        ``(schedule, seed) -> [Algorithm, ...]``.
    max_rounds:
        Round budget.
    until / quiescence_window:
        Stop condition, as in :meth:`repro.simnet.engine.Simulator.run`.
    stop_when:
        Optional oracle stop predicate over the simulator.
    oracle:
        Optional output-correctness check ``(outputs, schedule) -> bool``.
    bandwidth_bits:
        Optional CONGEST budget (overflows counted, not fatal).
    allow_timeout:
        Forward to the engine; timeouts then yield ``stop_reason ==
        "max_rounds"`` instead of raising.
    engine:
        Engine selection forwarded to :class:`Simulator` (``"fast"``,
        ``"fast-nobatch"``, or ``"reference"``; all produce identical
        results).  ``None`` defers to the process-wide default (set by
        the CLI's ``--engine`` flag or ``REPRO_ENGINE``).
    batch_kernels:
        Forwarded to :class:`Simulator`; ``None`` keeps batch-kernel
        dispatch on under ``engine="fast"``.
    profile:
        Per-phase wall-clock profiling; ``None`` defers to the
        process-wide default (set by the CLI's ``--profile`` flag).
    """

    schedule_factory: ScheduleFactory
    node_factory: NodeFactory
    max_rounds: int
    until: str = "halted"
    quiescence_window: int = 1
    stop_when: Optional[Callable[[Simulator], bool]] = None
    oracle: Optional[Oracle] = None
    bandwidth_bits: Optional[int] = None
    allow_timeout: bool = False
    engine: Optional[str] = None
    batch_kernels: Optional[bool] = None
    profile: Optional[bool] = None


@dataclass(frozen=True)
class TrialResult:
    """Measured quantities of one trial (flattened into result rows)."""

    seed: int
    rounds: int
    last_decision_round: Optional[int]
    first_decision_round: Optional[int]
    broadcast_bits: int
    delivered_messages: int
    max_message_bits: int
    correct: Optional[bool]
    stop_reason: str
    outputs_sample: Any
    counters: Dict[str, int]
    phase_seconds: Optional[Dict[str, float]] = None
    engine_stats: Optional[Dict[str, int]] = None
    obs_counters: Optional[Dict[str, int]] = None
    cache_counters: Optional[Dict[str, int]] = None

    def as_row(self, **extra: Any) -> Dict[str, Any]:
        """Flatten to a results row, merging experiment parameters."""
        row = {
            "seed": self.seed,
            "rounds": self.rounds,
            "last_decision_round": self.last_decision_round,
            "broadcast_bits": self.broadcast_bits,
            "delivered_messages": self.delivered_messages,
            "max_message_bits": self.max_message_bits,
            "correct": self.correct,
            "stop_reason": self.stop_reason,
        }
        if self.phase_seconds is not None:
            for name, seconds in sorted(self.phase_seconds.items()):
                row[f"phase.{name}_s"] = seconds
        if self.engine_stats is not None:
            for tier, rounds in sorted(self.engine_stats.items()):
                row[f"engine.{tier}_rounds"] = rounds
        if self.obs_counters is not None:
            for kind, count in sorted(self.obs_counters.items()):
                row[f"obs.{kind}"] = count
        if self.cache_counters is not None:
            for name, count in sorted(self.cache_counters.items()):
                row[f"cache.{name}"] = count
        row.update(extra)
        return row


# Per-process counter distinguishing trial event streams that share a
# seed (e.g. replicates of different grid points); combined with the PID
# it keeps every worker's stream files collision-free without locks.
_STREAM_SEQ = 0


def _open_trial_recorder(label: str, spec_key: str, seed: int,
                         config: "TrialConfig") -> Optional[Recorder]:
    """A JSONL recorder for this trial, or None when events are off."""
    global _STREAM_SEQ
    out_dir = events_dir()
    if out_dir is None:
        return None
    _STREAM_SEQ += 1
    path = os.path.join(
        out_dir, f"trial-{os.getpid()}-{_STREAM_SEQ:04d}-seed{seed}.jsonl")
    recorder = Recorder.to_jsonl(path)
    recorder.emit(obs_events.TrialEvent(
        seed=seed, label=label, spec=spec_key,
        engine=config.engine if config.engine is not None else "default",
        until=config.until, max_rounds=config.max_rounds))
    return recorder


def run_trial(config: TrialLike, seed: int) -> TrialResult:
    """Execute one trial with the given seed.

    Accepts either a :class:`TrialConfig` or a declarative
    :class:`repro.exec.TrialSpec` (resolved via its ``to_config``); all
    randomness derives from ``RngRegistry(seed)``, never ambient state,
    so equal inputs reproduce byte-identical results in any process.

    When a process-wide events directory is configured (the CLI's
    ``--events DIR`` flag or ``REPRO_EVENTS_DIR``; see
    :mod:`repro.obs`), the trial additionally writes a schema-validated
    ``trial-*.jsonl`` event stream there, headed by a provenance
    record.  Recording never changes the measured results — the engine
    guarantees recorded and unrecorded runs are bit-identical.  Recorded
    results additionally carry ``obs.*`` event counters and ``cache.*``
    hit/miss counters; like ``phase.*`` / ``engine.*`` these are
    telemetry, stripped wherever rows are persisted (see
    :func:`durable_row`).
    """
    label = spec_key = ""
    if not isinstance(config, TrialConfig):
        label = config.label()
        spec_key = config.key(seed)
        config = config.to_config()
    schedule = config.schedule_factory(seed)
    nodes = list(config.node_factory(schedule, seed))
    recorder = _open_trial_recorder(label, spec_key, seed, config)
    sim = Simulator(
        schedule, nodes, rng=RngRegistry(seed),
        bandwidth_bits=config.bandwidth_bits,
        engine=config.engine,
        profile=config.profile,
        batch_kernels=config.batch_kernels,
        recorder=recorder,
    )
    try:
        result: RunResult = sim.run(
            max_rounds=config.max_rounds,
            until=config.until,
            quiescence_window=config.quiescence_window,
            stop_when=config.stop_when,
            allow_timeout=config.allow_timeout,
        )
    finally:
        if recorder is not None:
            recorder.close()
    obs_counters = recorder.summary() if recorder is not None else None
    cache_counters = sim.cache_stats() if recorder is not None else None
    correct: Optional[bool] = None
    if config.oracle is not None:
        correct = bool(config.oracle(result.outputs, schedule))
    sample = next(iter(result.outputs.values()), None)
    record_phase_seconds(result.metrics.phase_seconds)
    record_engine_stats(result.metrics.engine_stats)
    return TrialResult(
        seed=seed,
        rounds=result.rounds,
        last_decision_round=result.metrics.last_decision_round,
        first_decision_round=result.metrics.first_decision_round,
        broadcast_bits=result.metrics.broadcast_bits,
        delivered_messages=result.metrics.delivered_messages,
        max_message_bits=sim.metrics.max_broadcast_bits,
        correct=correct,
        stop_reason=result.stop_reason,
        outputs_sample=sample,
        counters=dict(result.metrics.counters),
        phase_seconds=(dict(result.metrics.phase_seconds)
                       if result.metrics.phase_seconds is not None else None),
        engine_stats=(dict(result.metrics.engine_stats)
                      if result.metrics.engine_stats is not None else None),
        obs_counters=obs_counters,
        cache_counters=cache_counters,
    )


def run_replicates(config: TrialLike,
                   seeds: Sequence[int]) -> List[TrialResult]:
    """Run the trial once per seed, collecting all results."""
    return [run_trial(config, seed) for seed in seeds]
