"""Parameter sweeps: cartesian grids of trials, flattened to result rows.

The experiment functions in :mod:`repro.harness.experiments` hand-roll
their loops for readability; this module offers the same machinery as a
reusable utility for users running their own studies.  ``build`` may
return either a classic lambda-based
:class:`~repro.harness.runner.TrialConfig` (serial execution only) or a
declarative :class:`~repro.exec.TrialSpec`, which unlocks the full
executor: worker processes, the content-addressed result cache, and
crash-safe resume::

    from repro.exec import TrialSpec
    from repro.harness.sweeps import sweep

    rows = sweep(
        grid={"n": [32, 64], "T": [1, 2, 4]},
        build=lambda p: TrialSpec(
            schedule="lowdiam_handoff",
            schedule_params={"n": p["n"], "T": p["T"]},
            nodes="exact_count", node_params={"n": p["n"]},
            max_rounds=10_000, until="quiescent", quiescence_window=64,
            oracle="count_exact"),
        seeds=[1, 2, 3],
        workers=4, cache_dir=".repro-cache")

Each row carries the grid point, the seed, and the standard measured
quantities (see :meth:`repro.harness.runner.TrialResult.as_row`);
:func:`aggregate_rows` collapses replicates into mean/std per grid point.
Parallel rows are byte-identical to serial rows for the same seeds — all
randomness derives from the per-trial seed via
:class:`repro.simnet.rng.RngRegistry`.
"""

from __future__ import annotations

import itertools
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..errors import ConfigurationError
from ..exec.executor import ExecutionReport, ParallelExecutor
from ..exec.specs import TrialSpec
from .._validate import require_choice
from ..analysis.stats import summarize
from .runner import TrialConfig, run_trial

__all__ = ["grid_points", "sweep", "sweep_with_report", "aggregate_rows"]

ProgressFn = Callable[[Dict[str, Any], int], None]
BuildFn = Callable[[Dict[str, Any]], Union[TrialConfig, TrialSpec]]


def grid_points(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of a parameter grid, as a list of dicts.

    Keys iterate in insertion order, the last key varying fastest.
    """
    if not grid:
        return [{}]
    keys = list(grid)
    for key, values in grid.items():
        if not isinstance(values, (list, tuple)):
            raise TypeError(
                f"grid[{key!r}] must be a list/tuple of values, got "
                f"{type(values).__name__}")
        if not values:
            raise ValueError(f"grid[{key!r}] is empty")
    return [dict(zip(keys, combo))
            for combo in itertools.product(*(grid[k] for k in keys))]


def sweep_with_report(grid: Mapping[str, Sequence[Any]],
                      build: BuildFn,
                      seeds: Sequence[int] = (1,),
                      progress: Optional[ProgressFn] = None,
                      *,
                      workers: int = 1,
                      cache_dir: Optional[str] = None,
                      journal: Optional[str] = None,
                      resume: bool = False,
                      on_error: str = "raise",
                      ) -> Tuple[List[Dict[str, Any]], ExecutionReport]:
    """Like :func:`sweep`, but also return the execution accounting.

    The :class:`~repro.exec.ExecutionReport` carries the executed /
    cache-hit / resumed / error counters — e.g. a fully warm rerun shows
    ``executed == 0``.
    """
    require_choice(on_error, "on_error", ("raise", "record"))
    points = grid_points(grid)
    built = [(point, build(point)) for point in points]
    kinds = {isinstance(work, TrialSpec) for _, work in built}
    if kinds == {True}:
        cells = [
            (work.with_tags(**point), seed)
            for point, work in built for seed in seeds
        ]
        executor = ParallelExecutor(
            workers=workers, cache=cache_dir, journal=journal,
            resume=resume, on_error=on_error)
        if progress is not None:
            # The historical per-cell callback fires at dispatch; with
            # the executor the whole grid dispatches up front.
            for point, _work in built:
                for seed in seeds:
                    progress(point, seed)
        report = executor.run(cells)
        return report.rows, report
    if kinds != {False}:
        raise ConfigurationError(
            "build must return TrialSpec for every point or TrialConfig "
            "for every point, not a mixture")
    # Legacy lambda-based configs: serial in-process only — they cannot
    # cross process boundaries or be content-addressed.
    if workers > 1 or cache_dir or resume or journal:
        raise ConfigurationError(
            "workers>1 / cache_dir / journal / resume require build to "
            "return repro.exec.TrialSpec (lambda-based TrialConfig "
            "cannot be pickled or hashed); see docs/EXECUTOR.md")
    report = ExecutionReport(total=len(built) * len(seeds))
    rows: List[Dict[str, Any]] = []
    for point, config in built:
        for seed in seeds:
            if progress is not None:
                progress(point, seed)
            try:
                result = run_trial(config, seed)
            except Exception as exc:  # noqa: BLE001 - opt-in capture
                report.executed += 1
                if on_error == "raise":
                    raise
                report.errors += 1
                rows.append({"seed": seed,
                             "error": f"{type(exc).__name__}: {exc}",
                             **point})
                continue
            report.executed += 1
            rows.append(result.as_row(**point))
    report.rows = rows
    return rows, report


def sweep(grid: Mapping[str, Sequence[Any]],
          build: BuildFn,
          seeds: Sequence[int] = (1,),
          progress: Optional[ProgressFn] = None,
          *,
          workers: int = 1,
          cache_dir: Optional[str] = None,
          journal: Optional[str] = None,
          resume: bool = False,
          on_error: str = "raise",
          ) -> List[Dict[str, Any]]:
    """Run ``build(point)`` for every grid point × seed; return flat rows.

    Parameters
    ----------
    grid / build / seeds:
        The study: cartesian grid, a builder mapping one point to a
        :class:`TrialSpec` (preferred) or :class:`TrialConfig`, and the
        replicate seeds.
    progress:
        Optional ``(point, seed) -> None`` callback, invoked once per
        cell as it is dispatched.
    workers:
        Process count (spec-built sweeps only); ``1`` is the historical
        serial path with identical output.
    cache_dir / journal / resume:
        Content-addressed cache directory, JSONL checkpoint path, and
        journal replay — see :mod:`repro.exec`.
    on_error:
        ``"raise"`` (default) propagates the first trial failure;
        ``"record"`` captures it as an ``error`` column in the row so a
        single bad grid cell does not torch a long sweep.
    """
    rows, _report = sweep_with_report(
        grid, build, seeds, progress, workers=workers, cache_dir=cache_dir,
        journal=journal, resume=resume, on_error=on_error)
    return rows


def aggregate_rows(rows: Sequence[Dict[str, Any]],
                   group_by: Sequence[str],
                   value: str = "rounds") -> List[Dict[str, Any]]:
    """Collapse replicate rows into mean/std/min/max per group.

    Groups by the given keys (e.g. the grid keys), summarising the
    *value* column; non-numeric or missing values raise.
    """
    groups: Dict[tuple, List[float]] = {}
    order: List[tuple] = []
    for row in rows:
        key = tuple(row[k] for k in group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(float(row[value]))
    out = []
    for key in order:
        summary = summarize(groups[key])
        entry: Dict[str, Any] = dict(zip(group_by, key))
        entry.update({
            f"{value}_mean": summary.mean,
            f"{value}_std": summary.std,
            f"{value}_min": summary.minimum,
            f"{value}_max": summary.maximum,
            "replicates": summary.n,
        })
        out.append(entry)
    return out
