"""Parameter sweeps: cartesian grids of trials, flattened to result rows.

The experiment functions in :mod:`repro.harness.experiments` hand-roll
their loops for readability; this module offers the same machinery as a
reusable utility for users running their own studies::

    from repro.harness.sweeps import sweep

    rows = sweep(
        grid={"n": [32, 64], "T": [1, 2, 4]},
        build=lambda p: TrialConfig(
            schedule_factory=lambda seed: OverlapHandoffAdversary(
                p["n"], p["T"], seed=seed),
            node_factory=lambda sched, seed: [
                ExactCount(i) for i in range(p["n"])],
            max_rounds=10_000, until="quiescent", quiescence_window=64),
        seeds=[1, 2, 3],
    )

Each row carries the grid point, the seed, and the standard measured
quantities (see :meth:`repro.harness.runner.TrialResult.as_row`);
:func:`aggregate_rows` collapses replicates into mean/std per grid point.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Mapping, Sequence

from ..analysis.stats import summarize
from .runner import TrialConfig, run_trial

__all__ = ["grid_points", "sweep", "aggregate_rows"]


def grid_points(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of a parameter grid, as a list of dicts.

    Keys iterate in insertion order, the last key varying fastest.
    """
    if not grid:
        return [{}]
    keys = list(grid)
    for key, values in grid.items():
        if not isinstance(values, (list, tuple)):
            raise TypeError(
                f"grid[{key!r}] must be a list/tuple of values, got "
                f"{type(values).__name__}")
        if not values:
            raise ValueError(f"grid[{key!r}] is empty")
    return [dict(zip(keys, combo))
            for combo in itertools.product(*(grid[k] for k in keys))]


def sweep(grid: Mapping[str, Sequence[Any]],
          build: Callable[[Dict[str, Any]], TrialConfig],
          seeds: Sequence[int] = (1,),
          progress: Callable[[Dict[str, Any], int], None] = None,
          ) -> List[Dict[str, Any]]:
    """Run ``build(point)`` for every grid point × seed; return flat rows."""
    rows: List[Dict[str, Any]] = []
    for point in grid_points(grid):
        config = build(point)
        for seed in seeds:
            if progress is not None:
                progress(point, seed)
            result = run_trial(config, seed)
            rows.append(result.as_row(**point))
    return rows


def aggregate_rows(rows: Sequence[Dict[str, Any]],
                   group_by: Sequence[str],
                   value: str = "rounds") -> List[Dict[str, Any]]:
    """Collapse replicate rows into mean/std/min/max per group.

    Groups by the given keys (e.g. the grid keys), summarising the
    *value* column; non-numeric or missing values raise.
    """
    groups: Dict[tuple, List[float]] = {}
    order: List[tuple] = []
    for row in rows:
        key = tuple(row[k] for k in group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(float(row[value]))
    out = []
    for key in order:
        summary = summarize(groups[key])
        entry: Dict[str, Any] = dict(zip(group_by, key))
        entry.update({
            f"{value}_mean": summary.mean,
            f"{value}_std": summary.std,
            f"{value}_min": summary.minimum,
            f"{value}_max": summary.maximum,
            "replicates": summary.n,
        })
        out.append(entry)
    return out
