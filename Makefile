# Convenience targets for the reproduction.

PY ?= python

.PHONY: install test test-fast lint bench bench-quick bench-smoke experiments sweep-parallel report docs docs-check examples clean

install:
	pip install -e .

test:
	$(PY) -m pytest tests/

test-fast:
	$(PY) -m pytest tests/ -m "not slow" -x -q

# Lint + strict type-check the engine-backend package (the pluggable
# registry in src/repro/simnet/backends/ is held to the strictest bar;
# config in pyproject.toml).  Each tool is skipped with a notice when
# not installed, so the target is usable from the bare runtime
# environment; CI installs both and enforces them.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
	    ruff check src/repro/simnet/backends; \
	else echo "[lint] ruff not installed; skipping (pip install ruff)"; fi
	@if command -v mypy >/dev/null 2>&1; then \
	    mypy --strict src/repro/simnet/backends; \
	else echo "[lint] mypy not installed; skipping (pip install mypy)"; fi

bench:           ## full-size: regenerates every table/figure into results/
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_QUICK=1 $(PY) -m pytest benchmarks/ --benchmark-only

bench-smoke:     ## CI gate: fast-path + batch-kernel speedups vs baselines
	$(PY) benchmarks/bench_micro_substrate.py --smoke
	$(PY) benchmarks/bench_kernels.py --smoke

experiments:     ## same data via the CLI
	$(PY) -m repro.harness.cli --all --out results/

# Grid experiments on $(WORKERS) workers with a warm content-addressed
# cache; rerun after an interrupt to resume only the missing cells.
WORKERS ?= 4
sweep-parallel:
	$(PY) -m repro.harness.cli t1 f3 f6 x1 --workers $(WORKERS) \
	    --cache-dir .repro-cache --resume --out results/

report:          ## rebuild EXPERIMENTS.md from results/
	$(PY) -m repro.harness.report results EXPERIMENTS.md

docs:            ## regenerate every generated document from results/
	$(PY) -m repro.harness.report results EXPERIMENTS.md
	$(PY) -m repro.report --results results --out docs/RESULTS.md

docs-check:      ## CI gate: fail when committed docs drift from results/
	$(PY) -m repro.harness.report --check results EXPERIMENTS.md
	$(PY) -m repro.report --check --results results --out docs/RESULTS.md
	$(PY) tools/check_links.py

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/sensor_swarm_census.py
	$(PY) examples/adversary_gallery.py
	$(PY) examples/bandwidth_budget.py
	$(PY) examples/consensus_under_churn.py

clean:
	rm -rf build *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
