"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks a
bundled ``wheel`` (legacy editable installs go through ``setup.py develop``,
which needs no wheel building).
"""

from setuptools import setup

setup()
