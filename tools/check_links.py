#!/usr/bin/env python
"""Verify every relative Markdown link in the repo's docs resolves.

Scans ``README.md``, ``EXPERIMENTS.md``, and ``docs/*.md`` for inline
links (``[text](target)``), skips external schemes (``http``,
``https``, ``mailto``) and pure in-page anchors (``#...``), and fails
with a per-link report when a target file does not exist.  Part of
``make docs-check``: generated documents cross-link each other, so a
renamed or deleted doc breaks CI instead of shipping a dead link.

Usage: ``python tools/check_links.py [repo_root]``
"""

from __future__ import annotations

import glob
import os
import re
import sys
from typing import List, Tuple

# Inline links only; reference-style links are not used in this repo.
# Deliberately does not match ``](...)`` spanning newlines.
_LINK = re.compile(r"\[[^\]\n]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_paths(root: str) -> List[str]:
    """Every Markdown document the checker covers, sorted."""
    paths = [p for p in (os.path.join(root, "README.md"),
                         os.path.join(root, "EXPERIMENTS.md"))
             if os.path.exists(p)]
    paths.extend(sorted(glob.glob(os.path.join(root, "docs", "*.md"))))
    return paths


def broken_links(root: str) -> List[Tuple[str, int, str]]:
    """``(doc, line number, target)`` for every dangling relative link."""
    broken: List[Tuple[str, int, str]] = []
    for doc in doc_paths(root):
        base = os.path.dirname(doc)
        with open(doc, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                for target in _LINK.findall(line):
                    if target.startswith(_SKIP_PREFIXES):
                        continue
                    path = target.split("#", 1)[0]  # strip the anchor
                    if not path:
                        continue
                    if not os.path.exists(os.path.join(base, path)):
                        broken.append(
                            (os.path.relpath(doc, root), lineno, target))
    return broken


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    bad = broken_links(root)
    docs = doc_paths(root)
    if bad:
        for doc, lineno, target in bad:
            print(f"{doc}:{lineno}: broken link -> {target}",
                  file=sys.stderr)
        print(f"{len(bad)} broken links across {len(docs)} documents",
              file=sys.stderr)
        return 1
    print(f"all relative links resolve across {len(docs)} documents")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
